package centralized

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/simnet"
)

func scaledEnsembleSettings() EnsembleSettings {
	s := DefaultEnsembleSettings()
	s.ConsensusFallbackBase = 200 * time.Millisecond
	s.ProposalBatchWindow = 20 * time.Millisecond
	return s
}

func scaledMemberSettings() MemberSettings {
	s := DefaultMemberSettings()
	s.PollInterval = 30 * time.Millisecond
	s.ProbeInterval = 15 * time.Millisecond
	s.ProbeTimeout = 10 * time.Millisecond
	s.JoinTimeout = 10 * time.Second
	return s
}

func ensembleAddrs() []node.Addr {
	return []node.Addr{"ens-a:1", "ens-b:1", "ens-c:1"}
}

func memberAddr(i int) node.Addr { return node.Addr(fmt.Sprintf("member-%02d:1", i)) }

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestEnsembleBootAndJoin(t *testing.T) {
	node.SeedIDGenerator(101)
	net := simnet.New(simnet.Options{Seed: 1})
	ensemble, err := StartEnsemble(ensembleAddrs(), scaledEnsembleSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range ensemble {
			e.Stop()
		}
	}()

	const n = 6
	var members []*Member
	for i := 0; i < n; i++ {
		m, err := JoinViaEnsemble(memberAddr(i), ensembleAddrs(), scaledMemberSettings(), net)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		members = append(members, m)
	}
	defer func() {
		for _, m := range members {
			m.Stop()
		}
	}()

	if !waitUntil(t, 20*time.Second, func() bool {
		for _, e := range ensemble {
			if e.ClusterSize() != n {
				return false
			}
		}
		for _, m := range members {
			if m.Size() != n {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("ensemble/members did not converge: ensemble=%d members[0]=%d",
			ensemble[0].ClusterSize(), members[0].Size())
	}

	// All ensemble members agree on the configuration.
	cfg := ensemble[0].ConfigurationID()
	for _, e := range ensemble {
		if e.ConfigurationID() != cfg {
			t.Fatal("ensemble members disagree on the configuration")
		}
	}
	for _, m := range members {
		if m.ConfigurationID() != cfg {
			t.Fatal("a member holds a configuration different from the ensemble's")
		}
	}
}

func TestEnsembleRemovesCrashedMember(t *testing.T) {
	node.SeedIDGenerator(102)
	net := simnet.New(simnet.Options{Seed: 2})
	ensemble, err := StartEnsemble(ensembleAddrs(), scaledEnsembleSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range ensemble {
			e.Stop()
		}
	}()
	const n = 8
	var members []*Member
	for i := 0; i < n; i++ {
		m, err := JoinViaEnsemble(memberAddr(i), ensembleAddrs(), scaledMemberSettings(), net)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		members = append(members, m)
	}
	defer func() {
		for _, m := range members {
			m.Stop()
		}
	}()
	if !waitUntil(t, 20*time.Second, func() bool { return ensemble[0].ClusterSize() == n }) {
		t.Fatal("cluster did not form")
	}

	victim := members[3]
	net.Crash(victim.Addr())

	if !waitUntil(t, 30*time.Second, func() bool {
		for _, e := range ensemble {
			if e.ClusterSize() != n-1 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("ensemble did not remove the crashed member: size=%d", ensemble[0].ClusterSize())
	}
	// Other members learn the new view through polling.
	if !waitUntil(t, 10*time.Second, func() bool {
		for i, m := range members {
			if i == 3 {
				continue
			}
			if m.Size() != n-1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("surviving members did not learn the new configuration")
	}
}

func TestEnsembleGracefulLeave(t *testing.T) {
	node.SeedIDGenerator(103)
	net := simnet.New(simnet.Options{Seed: 3})
	ensemble, err := StartEnsemble(ensembleAddrs(), scaledEnsembleSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range ensemble {
			e.Stop()
		}
	}()
	const n = 4
	var members []*Member
	for i := 0; i < n; i++ {
		m, err := JoinViaEnsemble(memberAddr(i), ensembleAddrs(), scaledMemberSettings(), net)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, m)
	}
	defer func() {
		for _, m := range members {
			m.Stop()
		}
	}()
	if !waitUntil(t, 20*time.Second, func() bool { return ensemble[0].ClusterSize() == n }) {
		t.Fatal("cluster did not form")
	}
	members[n-1].Leave()
	if !waitUntil(t, 20*time.Second, func() bool { return ensemble[0].ClusterSize() == n-1 }) {
		t.Fatal("graceful leave was not applied by the ensemble")
	}
}

func TestMemberSubscriberNotified(t *testing.T) {
	node.SeedIDGenerator(104)
	net := simnet.New(simnet.Options{Seed: 4})
	ensemble, err := StartEnsemble(ensembleAddrs(), scaledEnsembleSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range ensemble {
			e.Stop()
		}
	}()
	first, err := JoinViaEnsemble(memberAddr(0), ensembleAddrs(), scaledMemberSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Stop()

	notified := make(chan int, 16)
	first.Subscribe(func(_ uint64, members []node.Endpoint) {
		notified <- len(members)
	})
	second, err := JoinViaEnsemble(memberAddr(1), ensembleAddrs(), scaledMemberSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Stop()

	deadline := time.After(20 * time.Second)
	for {
		select {
		case n := <-notified:
			if n == 2 {
				return
			}
		case <-deadline:
			t.Fatal("first member was never notified of the second member joining")
		}
	}
}
