// Package centralized implements Rapid's logically centralized mode (§5,
// "Rapid-C"): a small auxiliary ensemble S is the ground truth for the
// membership of a managed cluster C, the way systems commonly use ZooKeeper.
//
// Exactly as in the paper, only three things change relative to the
// decentralized protocol:
//
//  1. Members of C still monitor each other over the K-ring topology, but
//     report REMOVE alerts only to the ensemble members instead of
//     broadcasting them to all of C.
//  2. The ensemble members run the cut-detection protocol on the incoming
//     alerts and run the view-change consensus only among themselves.
//  3. Members of C learn about configuration changes by polling the ensemble
//     (GetView) periodically.
//
// The resulting service inherits Rapid's stability and agreement properties,
// with resiliency bounded by the ensemble (majority of S must be reachable).
package centralized

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/cutdetect"
	"repro/internal/edgefd"
	"repro/internal/fastpaxos"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
	"repro/internal/view"
)

// ErrJoinFailed indicates the member could not join within its join timeout.
var ErrJoinFailed = errors.New("centralized: join via ensemble failed")

// EnsembleSettings tune an ensemble node.
type EnsembleSettings struct {
	// K, H, L are the cut-detection parameters for the managed cluster.
	K, H, L int
	// ConsensusFallbackBase is the delay before classical Paxos recovery.
	ConsensusFallbackBase time.Duration
	// ProposalBatchWindow is how long a ready proposal waits for more
	// subjects before the ensemble runs consensus on it. A join alert
	// carries all K rings at once and so satisfies H by itself; without a
	// window a mass bootstrap degenerates to one view change per joiner.
	ProposalBatchWindow time.Duration
	// Clock supplies time.
	Clock simclock.Clock
}

// DefaultEnsembleSettings mirrors the decentralized defaults.
func DefaultEnsembleSettings() EnsembleSettings {
	return EnsembleSettings{
		K: 10, H: 9, L: 3,
		ConsensusFallbackBase: 4 * time.Second,
		ProposalBatchWindow:   time.Second,
		Clock:                 simclock.NewReal(),
	}
}

// EnsembleNode is one member of the auxiliary service S. A typical deployment
// runs three of them.
type EnsembleNode struct {
	settings EnsembleSettings
	addr     node.Addr
	peers    []node.Addr // all ensemble members, including self
	net      transport.Network
	client   transport.Client
	clock    simclock.Clock

	mu          sync.Mutex
	clusterView *view.View
	cd          *cutdetect.Detector
	consensus   *fastpaxos.FastPaxos
	broadcaster *broadcast.UnicastToAll
	viewChanges int
	stopped     bool
	// joinAlerted records joiners whose JOIN alert this node already
	// broadcast in the current configuration, so the retry storm of a mass
	// bootstrap (thousands of joiners re-requesting every poll interval)
	// costs one alert per joiner per view change instead of three ensemble
	// messages per retry. Cleared on every decide.
	joinAlerted map[node.Addr]bool
	// pendingProposal accumulates proposal subjects during the batching
	// window; windowGen invalidates an in-flight window when a decide
	// lands first. Guarded by mu.
	pendingProposal []node.Endpoint
	pendingSet      map[node.Addr]bool
	windowOpen      bool
	windowGen       uint64
}

// StartEnsemble boots the given ensemble addresses on the supplied network and
// returns a handle per member. The managed cluster starts empty.
func StartEnsemble(addrs []node.Addr, settings EnsembleSettings, net transport.Network) ([]*EnsembleNode, error) {
	if settings.Clock == nil {
		settings.Clock = simclock.NewReal()
	}
	if settings.K <= 0 {
		settings.K = 10
	}
	if settings.H <= 0 {
		settings.H = 9
	}
	if settings.L <= 0 {
		settings.L = 3
	}
	if settings.ConsensusFallbackBase <= 0 {
		settings.ConsensusFallbackBase = 4 * time.Second
	}
	if settings.ProposalBatchWindow <= 0 {
		settings.ProposalBatchWindow = time.Second
	}
	sorted := append([]node.Addr(nil), addrs...)
	node.SortAddrs(sorted)
	var nodes []*EnsembleNode
	for _, a := range sorted {
		n := &EnsembleNode{
			settings:    settings,
			addr:        a,
			peers:       sorted,
			net:         net,
			client:      net.Client(a),
			clock:       settings.Clock,
			clusterView: view.New(settings.K),
			cd:          cutdetect.New(settings.K, settings.H, settings.L),
			broadcaster: broadcast.NewUnicastToAll(net.Client(a)),
		}
		n.broadcaster.SetMembership(sorted)
		n.consensus = n.newConsensusLocked()
		if err := net.Register(a, n); err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// Stop deregisters the ensemble node.
func (e *EnsembleNode) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	e.net.Deregister(e.addr)
}

// Addr returns the ensemble node's address.
func (e *EnsembleNode) Addr() node.Addr { return e.addr }

// ClusterSize returns the size of the managed cluster's current configuration.
func (e *EnsembleNode) ClusterSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clusterView.Size()
}

// ClusterMembers returns the managed cluster's membership.
func (e *EnsembleNode) ClusterMembers() []node.Endpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clusterView.Members()
}

// ConfigurationID returns the managed cluster's configuration identifier.
func (e *EnsembleNode) ConfigurationID() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clusterView.ConfigurationID()
}

// ViewChangeCount returns how many configuration changes have been applied.
func (e *EnsembleNode) ViewChangeCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.viewChanges
}

// newConsensusLocked builds the intra-ensemble consensus instance keyed by the
// managed cluster's configuration.
func (e *EnsembleNode) newConsensusLocked() *fastpaxos.FastPaxos {
	myIndex := sort.Search(len(e.peers), func(i int) bool { return e.peers[i] >= e.addr })
	return fastpaxos.New(fastpaxos.Config{
		MyAddr:          e.addr,
		MyIndex:         myIndex,
		MembershipSize:  len(e.peers),
		ConfigurationID: e.clusterView.ConfigurationID(),
		Client:          e.client,
		Broadcaster:     e.broadcaster,
		OnDecide:        e.onDecide,
	})
}

// HandleRequest implements transport.Handler for ensemble nodes.
func (e *EnsembleNode) HandleRequest(_ context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
	switch {
	case req == nil:
		return remoting.AckResponse(), nil
	case req.Probe != nil:
		return &remoting.Response{Probe: &remoting.ProbeResponse{Sender: e.addr, Status: remoting.NodeOK}}, nil
	case req.GetView != nil:
		return e.handleGetView(req.GetView), nil
	case req.Join != nil:
		return e.handleJoin(req.Join), nil
	case req.Leave != nil:
		e.handleLeave(req.Leave)
		return remoting.AckResponse(), nil
	case req.Alerts != nil:
		e.handleAlerts(req.Alerts)
		return remoting.AckResponse(), nil
	case req.FastRound != nil:
		if cons := e.currentConsensus(); cons != nil {
			cons.HandleFastRoundVote(req.FastRound)
		}
		return remoting.AckResponse(), nil
	case req.P1a != nil:
		if cons := e.currentConsensus(); cons != nil {
			cons.HandlePhase1a(req.P1a)
		}
		return remoting.AckResponse(), nil
	case req.P1b != nil:
		if cons := e.currentConsensus(); cons != nil {
			cons.HandlePhase1b(req.P1b)
		}
		return remoting.AckResponse(), nil
	case req.P2a != nil:
		if cons := e.currentConsensus(); cons != nil {
			cons.HandlePhase2a(req.P2a)
		}
		return remoting.AckResponse(), nil
	case req.P2b != nil:
		if cons := e.currentConsensus(); cons != nil {
			cons.HandlePhase2b(req.P2b)
		}
		return remoting.AckResponse(), nil
	default:
		return remoting.AckResponse(), nil
	}
}

func (e *EnsembleNode) currentConsensus() *fastpaxos.FastPaxos {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return nil
	}
	return e.consensus
}

// handleGetView answers a member's poll for the current configuration.
func (e *EnsembleNode) handleGetView(msg *remoting.GetViewRequest) *remoting.Response {
	e.mu.Lock()
	defer e.mu.Unlock()
	cfg := e.clusterView.ConfigurationID()
	resp := &remoting.GetViewResponse{Sender: e.addr, ConfigurationID: cfg}
	if msg.KnownConfigurationID == cfg && cfg != 0 {
		resp.Unchanged = true
	} else {
		resp.Members = e.clusterView.Members()
	}
	return &remoting.Response{View: resp}
}

// handleJoin treats a join request as a JOIN alert on all rings, originating
// from this ensemble member, and forwards it to the whole ensemble so every
// member's cut detector observes it.
func (e *EnsembleNode) handleJoin(msg *remoting.JoinRequest) *remoting.Response {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return &remoting.Response{Join: &remoting.JoinResponse{Sender: e.addr, Status: remoting.JoinViewChangeInProgress}}
	}
	status := e.clusterView.IsSafeToJoin(msg.Sender, msg.JoinerID)
	cfg := e.clusterView.ConfigurationID()
	members := e.clusterView.Members()
	alreadyAlerted := false
	if status == remoting.JoinSafeToJoin {
		if e.joinAlerted == nil {
			e.joinAlerted = make(map[node.Addr]bool)
		}
		alreadyAlerted = e.joinAlerted[msg.Sender]
		e.joinAlerted[msg.Sender] = true
	}
	e.mu.Unlock()

	if status == remoting.JoinHostAlreadyInRing {
		// Already admitted (e.g. a retry): report success with the view.
		return &remoting.Response{Join: &remoting.JoinResponse{
			Sender: e.addr, Status: remoting.JoinSafeToJoin, ConfigurationID: cfg, Members: members,
		}}
	}
	if status != remoting.JoinSafeToJoin {
		return &remoting.Response{Join: &remoting.JoinResponse{Sender: e.addr, Status: status, ConfigurationID: cfg}}
	}
	if alreadyAlerted {
		// This joiner's alert is already in flight for this configuration;
		// acknowledge the retry without re-flooding the ensemble.
		return &remoting.Response{Join: &remoting.JoinResponse{Sender: e.addr, Status: remoting.JoinSafeToJoin, ConfigurationID: cfg}}
	}
	rings := make([]int, e.settings.K)
	for i := range rings {
		rings[i] = i
	}
	alert := remoting.AlertMessage{
		EdgeSrc:         e.addr,
		EdgeDst:         msg.Sender,
		Status:          remoting.EdgeUp,
		ConfigurationID: cfg,
		RingNumbers:     rings,
		JoinerID:        msg.JoinerID,
		Metadata:        msg.Metadata,
	}
	e.broadcaster.Broadcast(&remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: e.addr, Alerts: []remoting.AlertMessage{alert}}})
	return &remoting.Response{Join: &remoting.JoinResponse{Sender: e.addr, Status: remoting.JoinSafeToJoin, ConfigurationID: cfg}}
}

// handleLeave converts a leave announcement into a REMOVE alert on all rings.
func (e *EnsembleNode) handleLeave(msg *remoting.LeaveMessage) {
	e.mu.Lock()
	if e.stopped || !e.clusterView.Contains(msg.Sender) {
		e.mu.Unlock()
		return
	}
	cfg := e.clusterView.ConfigurationID()
	e.mu.Unlock()
	rings := make([]int, e.settings.K)
	for i := range rings {
		rings[i] = i
	}
	alert := remoting.AlertMessage{
		EdgeSrc:         e.addr,
		EdgeDst:         msg.Sender,
		Status:          remoting.EdgeDown,
		ConfigurationID: cfg,
		RingNumbers:     rings,
	}
	e.broadcaster.Broadcast(&remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: e.addr, Alerts: []remoting.AlertMessage{alert}}})
}

// handleAlerts runs the cut detector over alerts reported by cluster members
// (or forwarded by ensemble peers) and votes when a proposal forms.
func (e *EnsembleNode) handleAlerts(batch *remoting.BatchedAlertMessage) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	now := e.clock.Now()
	cfg := e.clusterView.ConfigurationID()
	var proposal []node.Endpoint
	for _, alert := range batch.Alerts {
		if alert.ConfigurationID != cfg {
			continue
		}
		var subject node.Endpoint
		if alert.Status == remoting.EdgeDown {
			ep, ok := e.clusterView.Member(alert.EdgeDst)
			if !ok {
				continue
			}
			subject = ep
		} else {
			if e.clusterView.Contains(alert.EdgeDst) {
				continue
			}
			subject = node.Endpoint{Addr: alert.EdgeDst, ID: alert.JoinerID, Metadata: alert.Metadata}
		}
		proposal = append(proposal, e.cd.AggregateForProposal(alert, subject, now)...)
	}
	proposal = append(proposal, e.cd.InvalidateFailingEdges(e.clusterView, now)...)
	if len(proposal) == 0 {
		e.mu.Unlock()
		return
	}
	// Merge into the pending proposal and (re)arm the batching window: a
	// single join alert satisfies H on its own, so proposing immediately
	// would run one consensus round per joiner during a mass bootstrap.
	// The window collects every subject that becomes proposable within it
	// into one view change, like the decentralized engine's alert batching.
	if e.pendingSet == nil {
		e.pendingSet = make(map[node.Addr]bool)
	}
	for _, ep := range proposal {
		if !e.pendingSet[ep.Addr] {
			e.pendingSet[ep.Addr] = true
			e.pendingProposal = append(e.pendingProposal, ep)
		}
	}
	if e.windowOpen || e.consensus.HasProposed() {
		e.mu.Unlock()
		return
	}
	e.windowOpen = true
	gen := e.windowGen
	window := e.settings.ProposalBatchWindow
	e.mu.Unlock()

	go func() {
		e.clock.Sleep(window)
		e.mu.Lock()
		if e.stopped || gen != e.windowGen {
			e.mu.Unlock()
			return
		}
		e.windowOpen = false
		deduped := e.pendingProposal
		e.pendingProposal, e.pendingSet = nil, nil
		cons := e.consensus
		alreadyProposed := cons.HasProposed()
		base := e.settings.ConsensusFallbackBase
		e.mu.Unlock()

		if alreadyProposed || len(deduped) == 0 {
			return
		}
		sort.Slice(deduped, func(i, j int) bool { return deduped[i].Addr < deduped[j].Addr })
		cons.Propose(deduped)
		go func() {
			e.clock.Sleep(base)
			if !cons.Decided() {
				cons.StartClassicalRound()
			}
		}()
	}()
}

// onDecide installs the next configuration of the managed cluster.
func (e *EnsembleNode) onDecide(proposal []node.Endpoint) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return
	}
	for _, ep := range proposal {
		if e.clusterView.Contains(ep.Addr) {
			_ = e.clusterView.RemoveMember(ep.Addr)
		} else {
			_ = e.clusterView.AddMember(ep)
		}
	}
	e.viewChanges++
	e.cd.Clear()
	e.joinAlerted = nil
	// Invalidate any open batching window: its subjects were aggregated
	// against the configuration that just changed, and their alerts will
	// re-arrive (and re-aggregate) under the new one if still relevant.
	e.pendingProposal, e.pendingSet = nil, nil
	e.windowOpen = false
	e.windowGen++
	e.consensus = e.newConsensusLocked()
}

var _ transport.Handler = (*EnsembleNode)(nil)

// MemberSettings tune a managed-cluster member agent.
type MemberSettings struct {
	// K must match the ensemble's K.
	K int
	// PollInterval is how often the member polls the ensemble for view
	// changes (the paper uses 5 seconds).
	PollInterval time.Duration
	// ProbeInterval / ProbeTimeout configure edge monitoring.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailureDetector builds per-edge monitors.
	FailureDetector edgefd.Factory
	// JoinTimeout bounds the initial join.
	JoinTimeout time.Duration
	// Clock supplies time.
	Clock simclock.Clock
	// Metadata is attached to this member.
	Metadata map[string]string
}

// DefaultMemberSettings mirrors the paper's Rapid-C configuration.
func DefaultMemberSettings() MemberSettings {
	return MemberSettings{
		K:               10,
		PollInterval:    5 * time.Second,
		ProbeInterval:   time.Second,
		ProbeTimeout:    500 * time.Millisecond,
		FailureDetector: edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions()),
		JoinTimeout:     30 * time.Second,
		Clock:           simclock.NewReal(),
	}
}

// Member is a managed-cluster process: it monitors its k-ring subjects,
// reports alerts to the ensemble, and polls the ensemble for view changes.
type Member struct {
	settings MemberSettings
	me       node.Endpoint
	ensemble []node.Addr
	net      transport.Network
	client   transport.Client
	clock    simclock.Clock

	mu          sync.Mutex
	view        *view.View
	configID    uint64
	monitors    []edgefd.Monitor
	subscribers []func(configID uint64, members []node.Endpoint)
	alerted     map[node.Addr]bool
	stopped     bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// JoinViaEnsemble registers the member with the ensemble and starts its
// monitoring and polling loops once admitted.
func JoinViaEnsemble(addr node.Addr, ensemble []node.Addr, settings MemberSettings, net transport.Network) (*Member, error) {
	if settings.Clock == nil {
		settings.Clock = simclock.NewReal()
	}
	if settings.K <= 0 {
		settings.K = 10
	}
	if settings.PollInterval <= 0 {
		settings.PollInterval = 5 * time.Second
	}
	if settings.ProbeInterval <= 0 {
		settings.ProbeInterval = time.Second
	}
	if settings.ProbeTimeout <= 0 {
		settings.ProbeTimeout = settings.ProbeInterval / 2
	}
	if settings.FailureDetector == nil {
		settings.FailureDetector = edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions())
	}
	if settings.JoinTimeout <= 0 {
		settings.JoinTimeout = 30 * time.Second
	}
	m := &Member{
		settings: settings,
		me:       node.Endpoint{Addr: addr, ID: node.NewID(), Metadata: settings.Metadata},
		ensemble: append([]node.Addr(nil), ensemble...),
		net:      net,
		client:   net.Client(addr),
		clock:    settings.Clock,
		view:     view.New(settings.K),
		alerted:  make(map[node.Addr]bool),
		stopCh:   make(chan struct{}),
	}
	if err := net.Register(addr, m); err != nil {
		return nil, err
	}
	if err := m.join(); err != nil {
		net.Deregister(addr)
		return nil, err
	}
	m.wg.Add(1)
	go m.pollLoop()
	return m, nil
}

// join sends the join request to ensemble members and waits (by polling)
// until this member appears in the configuration.
func (m *Member) join() error {
	deadline := m.clock.Now().Add(m.settings.JoinTimeout)
	for m.clock.Now().Before(deadline) {
		for _, ens := range m.ensemble {
			// Bound each attempt like a probe, not by the whole join budget:
			// under a join storm an ensemble endpoint can back up for
			// seconds, and one blocked Send must not consume the deadline
			// that the retry loop exists to spend.
			ctx, cancel := context.WithTimeout(context.Background(), m.settings.ProbeTimeout*4)
			_, _ = m.client.Send(ctx, ens, &remoting.Request{Join: &remoting.JoinRequest{
				Sender:   m.me.Addr,
				JoinerID: m.me.ID,
				Metadata: m.me.Metadata,
			}})
			cancel()
			if m.refreshView() && m.viewContainsSelf() {
				return nil
			}
		}
		m.clock.Sleep(m.settings.PollInterval / 2)
		if m.refreshView() && m.viewContainsSelf() {
			return nil
		}
	}
	return ErrJoinFailed
}

func (m *Member) viewContainsSelf() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Contains(m.me.Addr)
}

// refreshView polls one ensemble member and installs a new configuration if
// one exists. It reports whether a poll succeeded.
func (m *Member) refreshView() bool {
	m.mu.Lock()
	known := m.configID
	m.mu.Unlock()
	for _, ens := range m.ensemble {
		ctx, cancel := context.WithTimeout(context.Background(), m.settings.ProbeTimeout*4)
		resp, err := m.client.Send(ctx, ens, &remoting.Request{GetView: &remoting.GetViewRequest{
			Sender:               m.me.Addr,
			KnownConfigurationID: known,
		}})
		cancel()
		if err != nil || resp.View == nil {
			continue
		}
		if resp.View.Unchanged {
			return true
		}
		m.installView(resp.View.ConfigurationID, resp.View.Members)
		return true
	}
	return false
}

// installView replaces the local view and restarts monitors if it changed.
func (m *Member) installView(configID uint64, members []node.Endpoint) {
	m.mu.Lock()
	if m.configID == configID {
		m.mu.Unlock()
		return
	}
	m.view = view.NewWithMembers(m.settings.K, members)
	m.configID = configID
	m.alerted = make(map[node.Addr]bool)
	subs := make([]func(uint64, []node.Endpoint), len(m.subscribers))
	copy(subs, m.subscribers)
	old := m.monitors
	m.monitors = nil
	var subjects []node.Addr
	if m.view.Contains(m.me.Addr) && !m.stopped {
		subjects, _ = m.view.UniqueSubjectsOf(m.me.Addr)
	}
	var fresh []edgefd.Monitor
	for _, s := range subjects {
		fresh = append(fresh, m.settings.FailureDetector(edgefd.Params{
			Observer:  m.me.Addr,
			Subject:   s,
			Client:    m.client,
			Clock:     m.clock,
			Interval:  m.settings.ProbeInterval,
			Timeout:   m.settings.ProbeTimeout,
			OnFailure: m.onSubjectFailed,
		}))
	}
	m.monitors = fresh
	m.mu.Unlock()

	for _, mon := range old {
		mon.Stop()
	}
	for _, mon := range fresh {
		mon.Start()
	}
	for _, sub := range subs {
		sub(configID, members)
	}
}

// onSubjectFailed reports a REMOVE alert about the subject to every ensemble
// member (instead of broadcasting to the whole cluster).
func (m *Member) onSubjectFailed(subject node.Addr) {
	m.mu.Lock()
	if m.stopped || !m.view.Contains(subject) || m.alerted[subject] {
		m.mu.Unlock()
		return
	}
	m.alerted[subject] = true
	rings := m.view.RingNumbers(m.me.Addr, subject)
	cfg := m.configID
	m.mu.Unlock()
	if len(rings) == 0 {
		return
	}
	alert := remoting.AlertMessage{
		EdgeSrc:         m.me.Addr,
		EdgeDst:         subject,
		Status:          remoting.EdgeDown,
		ConfigurationID: cfg,
		RingNumbers:     rings,
	}
	req := &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: m.me.Addr, Alerts: []remoting.AlertMessage{alert}}}
	for _, ens := range m.ensemble {
		m.client.SendBestEffort(ens, req)
	}
}

// pollLoop periodically refreshes the configuration from the ensemble.
func (m *Member) pollLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stopCh:
			return
		case <-m.clock.After(m.settings.PollInterval):
		}
		m.refreshView()
	}
}

// HandleRequest implements transport.Handler for member agents: they only
// answer probes (and ignore everything else, which belongs to the ensemble).
func (m *Member) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	if req != nil && req.Probe != nil {
		return &remoting.Response{Probe: &remoting.ProbeResponse{Sender: m.me.Addr, Status: remoting.NodeOK}}, nil
	}
	return remoting.AckResponse(), nil
}

// Subscribe registers a callback invoked with every installed configuration.
func (m *Member) Subscribe(cb func(configID uint64, members []node.Endpoint)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subscribers = append(m.subscribers, cb)
}

// Addr returns the member's address.
func (m *Member) Addr() node.Addr { return m.me.Addr }

// Size returns the member's current count of cluster members.
func (m *Member) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Size()
}

// ConfigurationID returns the member's current configuration identifier.
func (m *Member) ConfigurationID() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.configID
}

// Leave announces a graceful departure to the ensemble.
func (m *Member) Leave() {
	for _, ens := range m.ensemble {
		m.client.SendBestEffort(ens, &remoting.Request{Leave: &remoting.LeaveMessage{Sender: m.me.Addr}})
	}
}

// Stop halts polling and monitoring and deregisters the member.
func (m *Member) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	monitors := m.monitors
	m.monitors = nil
	m.mu.Unlock()
	close(m.stopCh)
	for _, mon := range monitors {
		mon.Stop()
	}
	m.wg.Wait()
	m.net.Deregister(m.me.Addr)
}

var _ transport.Handler = (*Member)(nil)
