// The adversarial scenario matrix: one declarative grid of
// (fault kind x system x cluster size) cells, every cell running the same
// protocol-independent script — form the cluster, inject the fault, measure
// detection, clear the fault, require the live members to agree on one
// membership again — against Rapid, the SWIM/Memberlist baseline, and the
// centralized designs. The grid extends the paper's Table 2 and Figures
// 8/9/10 with the gray-failure modes simnet's composable fault layer can now
// express (slow-but-alive nodes, one-way links, flapping, asymmetric
// partitions, WAN latency classes, duplicate/reorder delivery) and runs them
// at paper scale (N=1000). cmd/rapid-bench wires the matrix to
// `-exp scenarios` with machine-readable `-bench-json` output.
package experiments

import (
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/harness"
	"repro/internal/node"
	"repro/internal/simnet"
)

// ScenarioKind names one fault kind of the adversarial matrix.
type ScenarioKind string

// The matrix's fault kinds. Each is injected at 1% of members (at least one)
// unless it is a whole-network condition (wan-zones, dup-reorder).
const (
	// ScenarioCrash: victims fail abruptly (Figure 8's workload, here as the
	// matrix baseline every gray failure is compared against).
	ScenarioCrash ScenarioKind = "crash"
	// ScenarioSlow: victims stay perfectly reachable but every message they
	// send or receive pays an 800 paper-ms one-way delay, pushing their probe
	// round trips far past the 500 paper-ms timeout — the classic gray
	// failure: alive to TCP, dead to the failure detector.
	ScenarioSlow ScenarioKind = "slow"
	// ScenarioOneWay: each victim's links *to* half the cluster fail while
	// the reverse directions keep working, so half the victim's observers see
	// it dead and the other half see it alive. Run with N >> K (N >= 60):
	// like the flip-flop fault, at N close to K the victim's own noise
	// alerts occupy enough observer slots to evict a healthy member.
	ScenarioOneWay ScenarioKind = "oneway-links"
	// ScenarioFlap: victims drop all ingress traffic for 20 paper-seconds,
	// recover for 20, and repeat (Figure 9's flip-flop, driven by simnet's
	// schedule-toggled flap rules instead of an experiment goroutine).
	ScenarioFlap ScenarioKind = "flap"
	// ScenarioAsym: victims turn deaf — they hear only each other while their
	// own alerts, probes and gossip still reach everyone (the group
	// generalization of a one-way link).
	ScenarioAsym ScenarioKind = "asym-partition"
	// ScenarioWAN: no victims — the whole network gets zone latency classes
	// (3 zones, 50 paper-ms intra, 150 paper-ms inter). Round trips stay
	// under the probe timeout, so a stable system must evict nobody.
	ScenarioWAN ScenarioKind = "wan-zones"
	// ScenarioChaos: no victims — best-effort traffic is duplicated (10%)
	// and reordered (30%, up to 100 paper-ms of jitter) network-wide. A
	// robust protocol must neither evict anyone nor double-count anything.
	ScenarioChaos ScenarioKind = "dup-reorder"
	// ScenarioEgressLoss: victims drop 80% of their outgoing packets
	// (Figure 10's fault, the matrix's lossy-gray-failure representative).
	ScenarioEgressLoss ScenarioKind = "egress-loss-80"
)

// AllScenarioKinds returns the matrix's fault kinds in reporting order.
func AllScenarioKinds() []ScenarioKind {
	return []ScenarioKind{
		ScenarioCrash, ScenarioSlow, ScenarioOneWay, ScenarioFlap,
		ScenarioAsym, ScenarioWAN, ScenarioChaos, ScenarioEgressLoss,
	}
}

// removalExpected reports whether the kind's victims should end up evicted.
// For whole-network conditions (and for kinds with no victims at all) the
// stable outcome is the opposite: nobody may be evicted.
func (k ScenarioKind) removalExpected() bool {
	switch k {
	case ScenarioWAN, ScenarioChaos:
		return false
	}
	return true
}

// global reports whether the kind applies to the whole network (no victims).
func (k ScenarioKind) global() bool {
	return k == ScenarioWAN || k == ScenarioChaos
}

// ScenarioOptions tune a matrix run.
type ScenarioOptions struct {
	// Systems to compare; nil means Rapid, Memberlist and Rapid-C (the
	// centralized design that still forms at N=1000; pass SystemZooKeeper
	// explicitly for the watch-herd registry).
	Systems []harness.System
	// Kinds to run; nil means AllScenarioKinds.
	Kinds []ScenarioKind
	// Sizes are the cluster sizes; nil means {1000}.
	Sizes []int
	// Shards overrides the simnet delivery shard count (0 = default).
	Shards int
	// JoinConcurrency bounds simultaneous joins during formation (0 = storm).
	JoinConcurrency int
	// FormationTimeout bounds the pre-fault bootstrap wait (wall clock;
	// 0 = 300s).
	FormationTimeout time.Duration
	// DetectTimeout bounds the wait for victims to be evicted (wall clock;
	// 0 = 90s).
	DetectTimeout time.Duration
	// AgreeTimeout bounds the post-clear agreement wait (wall clock;
	// 0 = 120s).
	AgreeTimeout time.Duration
	// FaultWindow is how long whole-network faults stay installed, in paper
	// time (0 = 30 paper-seconds).
	FaultWindow time.Duration
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if len(o.Systems) == 0 {
		o.Systems = []harness.System{harness.SystemRapid, harness.SystemMemberlist, harness.SystemRapidC}
	}
	if len(o.Kinds) == 0 {
		o.Kinds = AllScenarioKinds()
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1000}
	}
	if o.FormationTimeout <= 0 {
		o.FormationTimeout = 300 * time.Second
	}
	if o.DetectTimeout <= 0 {
		o.DetectTimeout = 90 * time.Second
	}
	if o.AgreeTimeout <= 0 {
		o.AgreeTimeout = 120 * time.Second
	}
	if o.FaultWindow <= 0 {
		o.FaultWindow = 30 * time.Second
	}
	return o
}

// ScenarioCell is the measured outcome of one (kind, system, N) cell.
type ScenarioCell struct {
	Kind    ScenarioKind
	System  harness.System
	N       int
	Victims int

	// FormationOK: the fleet reached full size before the fault. The other
	// fields are only meaningful when it did.
	FormationOK bool

	// RemovalExpected mirrors the kind: whether the stable outcome evicts
	// the victims (true) or keeps everyone (false).
	RemovalExpected bool
	// Detected: every healthy member converged to N-victims while the fault
	// was active; DetectTime is how long that took from injection.
	Detected   bool
	DetectTime time.Duration

	// Agreed: after the fault cleared, all live non-victim members reported
	// one identical stable size (AgreedSize) within AgreeTime.
	Agreed     bool
	AgreeTime  time.Duration
	AgreedSize int
	// MinReported/MaxReported are the post-clear size spread (equal when
	// Agreed).
	MinReported, MaxReported int

	// UnnecessaryEvictions counts healthy members missing from the final
	// membership: max(0, N - Victims - observed size). The paper's stability
	// metric — zero for Rapid in every cell is the claim under test.
	UnnecessaryEvictions int
	// UniqueSizes is the number of distinct sizes healthy members reported
	// over the run (Table 1's instability proxy).
	UniqueSizes int

	// Messages counts send attempts during the fault phase only; MsgsPerNode
	// divides by N.
	Messages    int64
	MsgsPerNode float64
	// Duplicates counts chaos-layer duplicated deliveries (dup-reorder only).
	Duplicates int64
}

// scenarioVictims picks the victim set: 1% of members (at least one), taken
// from the tail of the launch order like the Figure 9/10 runners.
func scenarioVictims(fleet *harness.Fleet, n int) ([]node.Addr, map[node.Addr]bool) {
	count := n / 100
	if count < 1 {
		count = 1
	}
	agents := fleet.Agents()
	if count > len(agents) {
		count = len(agents)
	}
	victims := make([]node.Addr, 0, count)
	excluded := make(map[node.Addr]bool, count)
	for i := 0; i < count; i++ {
		a := agents[len(agents)-1-i].Addr()
		victims = append(victims, a)
		excluded[a] = true
	}
	return victims, excluded
}

// inject installs the cell's fault kind on the fleet.
func inject(fleet *harness.Fleet, kind ScenarioKind, scale float64, victims []node.Addr) error {
	switch kind {
	case ScenarioCrash:
		fleet.Crash(victims...)
	case ScenarioSlow:
		fleet.SlowNodes(harness.Scale(800*time.Millisecond, scale), victims...)
	case ScenarioOneWay:
		// Fail each victim's links to every even-indexed member; the reverse
		// directions keep working.
		for _, v := range victims {
			var dsts []node.Addr
			for _, a := range fleet.Agents() {
				if a.Addr() != v && addrIndexEven(a.Addr()) {
					dsts = append(dsts, a.Addr())
				}
			}
			fleet.BlockOneWay(v, dsts...)
		}
	case ScenarioFlap:
		w := harness.Scale(20*time.Second, scale)
		fleet.Flap(simnet.FlapSpec{Loss: 1.0, Ingress: true, On: w, Off: w}, victims...)
	case ScenarioAsym:
		fleet.PartitionDeaf(victims...)
	case ScenarioWAN:
		fleet.WAN(3, harness.Scale(50*time.Millisecond, scale), harness.Scale(150*time.Millisecond, scale))
	case ScenarioChaos:
		fleet.Chaos(simnet.ChaosSpec{
			Duplicate: 0.10,
			Reorder:   0.30,
			MaxJitter: harness.Scale(100*time.Millisecond, scale),
		})
	case ScenarioEgressLoss:
		for _, v := range victims {
			fleet.Net.SetEgressLoss(v, 0.8)
		}
	default:
		return fmt.Errorf("unknown scenario kind %q", kind)
	}
	return nil
}

// addrIndexEven reports whether a member address has an even launch index
// (the "m0042:9000" naming scheme of harness.MemberAddr); non-member
// addresses (the seed) count as odd so they stay reachable.
func addrIndexEven(a node.Addr) bool {
	s := string(a)
	if len(s) < 2 || s[0] != 'm' {
		return false
	}
	var idx int
	if _, err := fmt.Sscanf(s, "m%d:", &idx); err != nil {
		return false
	}
	return idx%2 == 0
}

// RunScenarioCell runs one cell of the matrix. Failures to form or to detect
// are recorded in the cell, not returned as errors, so a sweep over systems
// that degrade differently still completes the grid.
func RunScenarioCell(cfg Config, system harness.System, kind ScenarioKind, n int, opts ScenarioOptions) (ScenarioCell, error) {
	opts = opts.withDefaults()
	cell := ScenarioCell{Kind: kind, System: system, N: n, RemovalExpected: kind.removalExpected()}

	// Bootstrap storms at large N admit Rapid joiners in waves; match the
	// paper-scale bootstrap sweep's attempt budget.
	attempts := 10
	if n/25 > attempts {
		attempts = n / 25
	}
	fleet, err := harness.Launch(harness.Options{
		System:          system,
		N:               n,
		TimeScale:       cfg.TimeScale,
		Seed:            cfg.Seed,
		SampleInterval:  50 * time.Millisecond,
		SimnetShards:    opts.Shards,
		JoinConcurrency: opts.JoinConcurrency,
		JoinAttempts:    attempts,
	})
	if err != nil {
		// A failed launch (e.g. a join storm exhausting its budget) is a
		// formation failure of this cell, not a reason to abort the sweep —
		// systems that cannot form at this N are part of the comparison.
		cfg.printf("%s/%s N=%d: launch failed: %v\n", kind, system, n, err)
		return cell, nil
	}
	defer fleet.Stop()

	if _, ok := fleet.WaitForSize(n, opts.FormationTimeout); !ok {
		return cell, nil
	}
	cell.FormationOK = true

	var victims []node.Addr
	excluded := map[node.Addr]bool{}
	if !kind.global() {
		victims, excluded = scenarioVictims(fleet, n)
		cell.Victims = len(victims)
	}

	msgs0 := fleet.Net.TotalMessages()
	dups0 := fleet.Net.Duplicates()
	if err := inject(fleet, kind, cfg.TimeScale, victims); err != nil {
		return cell, err
	}

	if cell.RemovalExpected {
		cell.DetectTime, cell.Detected = fleet.WaitForSizeExcluding(n-cell.Victims, excluded, opts.DetectTimeout)
	} else {
		cfg.clock().Sleep(harness.Scale(opts.FaultWindow, cfg.TimeScale))
	}
	cell.Messages = fleet.Net.TotalMessages() - msgs0
	cell.MsgsPerNode = float64(cell.Messages) / float64(n)
	cell.Duplicates = fleet.Net.Duplicates() - dups0

	// Conformance: clear every fault and require the live members to settle
	// on one agreed membership within the bound. Victims stay excluded for
	// removal kinds — evicted-but-alive processes report their stale view.
	fleet.ClearFaults()
	cell.AgreedSize, cell.AgreeTime, cell.Agreed = fleet.WaitForAgreement(excluded, opts.AgreeTimeout)
	cell.MinReported, cell.MaxReported = fleet.ReportedSizeRange(excluded)
	observed := cell.AgreedSize
	if !cell.Agreed {
		observed = cell.MinReported
	}
	if miss := n - cell.Victims - observed; miss > 0 {
		cell.UnnecessaryEvictions = miss
	}
	cell.UniqueSizes = fleet.UniqueReportedSizes(excluded)
	return cell, nil
}

// RunScenarioMatrix runs the full grid and prints the extended Table 2.
func RunScenarioMatrix(cfg Config, opts ScenarioOptions) ([]ScenarioCell, error) {
	opts = opts.withDefaults()
	var out []ScenarioCell
	for _, n := range opts.Sizes {
		cfg.printf("== Adversarial scenario matrix (extended Table 2, N=%d) ==\n", n)
		cfg.printf("%-15s %-12s %7s %7s %9s %10s %7s %9s %7s %12s %11s %7s\n",
			"fault", "system", "formed", "detect", "detect(s)", "agreed", "size", "agree(s)", "unnec", "msgs/node", "uniq-sizes", "dups")
		for _, kind := range opts.Kinds {
			for _, system := range opts.Systems {
				cell, err := RunScenarioCell(cfg, system, kind, n, opts)
				if err != nil {
					return out, err
				}
				out = append(out, cell)
				// Return the stopped fleet's memory before the next cell
				// boots, for the same reason as the paper-scale bootstrap
				// sweep: fragmented spans from a 1000-member fleet distort
				// the next cell's timing-sensitive dynamics.
				debug.FreeOSMemory()
				detect := "-"
				detectS := "-"
				if cell.RemovalExpected {
					detect = fmt.Sprintf("%v", cell.Detected)
					detectS = fmt.Sprintf("%.1f", cfg.scaledSeconds(cell.DetectTime))
				}
				cfg.printf("%-15s %-12s %7v %7s %9s %10v %7d %9.1f %7d %12.0f %11d %7d\n",
					cell.Kind, cell.System, cell.FormationOK, detect, detectS,
					cell.Agreed, cell.AgreedSize, cfg.scaledSeconds(cell.AgreeTime),
					cell.UnnecessaryEvictions, cell.MsgsPerNode, cell.UniqueSizes, cell.Duplicates)
			}
		}
	}
	return out, nil
}
