package experiments

import (
	"testing"
	"time"

	"repro/internal/harness"
)

func testConfig() Config {
	return Config{TimeScale: 100, Seed: 42}
}

func TestRunBootstrapRapidSmall(t *testing.T) {
	r, err := RunBootstrap(testConfig(), harness.SystemRapid, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("bootstrap did not converge")
	}
	if len(r.PerNodeLatency) != 8 {
		t.Fatalf("per-node latencies = %d, want 8", len(r.PerNodeLatency))
	}
	if r.UniqueSizes < 1 {
		t.Fatal("no sizes recorded")
	}
}

func TestRunBootstrapMemberlistSmall(t *testing.T) {
	r, err := RunBootstrap(testConfig(), harness.SystemMemberlist, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("memberlist bootstrap did not converge")
	}
}

func TestRunCrashRapidSmall(t *testing.T) {
	r, err := RunCrash(testConfig(), harness.SystemRapid, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Recovered {
		t.Fatal("crash experiment did not recover")
	}
}

func TestRunFaultEgressLossRapid(t *testing.T) {
	r, err := RunFault(testConfig(), harness.SystemRapid, FaultEgressLoss80, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FaultyRemoved {
		t.Fatal("rapid did not remove the lossy member")
	}
}

// TestStabilityFlipFlopLargeN reruns the Figure 9 scenario at N=60, where the
// paper's n >> K precondition holds: the flip-flopping victim must be removed
// and — unlike the retired N=20 variant, which flaked ~2/12 runs because the
// victim's own noise alerts could evict a healthy subject (see the
// FaultIngressFlipFlop doc comment) — every healthy member must be retained.
func TestStabilityFlipFlopLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("60-node stability run skipped in -short mode")
	}
	r, err := RunFault(testConfig(), harness.SystemRapid, FaultIngressFlipFlop, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FaultyRemoved {
		t.Fatal("flip-flopping victim was not removed")
	}
	if !r.HealthyRetained {
		t.Fatal("a healthy member was evicted: n >> K stability violated")
	}
}

func TestRunBandwidthRapidSmall(t *testing.T) {
	r, err := RunBandwidth(testConfig(), harness.SystemRapid, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Received.MaxKBps <= 0 || r.Sent.MaxKBps <= 0 {
		t.Fatalf("bandwidth accounting produced zeros: %+v", r)
	}
}

func TestSensitivityConflictRatesBehaveLikeFigure11(t *testing.T) {
	cfg := testConfig()
	// Small-but-meaningful version of the Figure 11 grid.
	points := RunCutDetectionSensitivity(cfg, 10, []int{6, 9}, []int{1, 4}, []int{2, 8}, 10, 3)
	if len(points) == 0 {
		t.Fatal("no sensitivity points produced")
	}
	rate := func(h, l, f int) float64 {
		for _, p := range points {
			if p.H == h && p.L == l && p.F == f {
				return p.ConflictRate
			}
		}
		t.Fatalf("missing point H=%d L=%d F=%d", h, l, f)
		return 0
	}
	// The paper's qualitative findings: the conflict rate is highest when the
	// H-L gap is smallest, and a wide gap (H=9, L=1) essentially eliminates
	// conflicts.
	if rate(9, 1, 2) > rate(6, 4, 2) {
		t.Errorf("wide watermark gap should conflict no more than narrow gap: %v vs %v",
			rate(9, 1, 2), rate(6, 4, 2))
	}
	if rate(9, 1, 2) > 10 {
		t.Errorf("H=9, L=1 should give a near-zero conflict rate, got %v%%", rate(9, 1, 2))
	}
}

func TestRunExpansion(t *testing.T) {
	res := RunExpansion(testConfig(), 10, []int{100}, 3)
	if len(res) != 1 {
		t.Fatal("expected one expansion result")
	}
	if res[0].NormalizedL2 >= 0.6 {
		t.Fatalf("lambda/d = %v, expected an expander", res[0].NormalizedL2)
	}
	if res[0].DetectableBetaL <= 0.1 {
		t.Fatalf("detectable beta = %v, expected a usable detection margin", res[0].DetectableBetaL)
	}
}

func TestTransactionWorkloadShapeMatchesFigure12(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end workload skipped in -short mode")
	}
	cfg := testConfig()
	results, err := RunTransactionWorkload(cfg, 10, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 providers, got %d", len(results))
	}
	baseline, rapid := results[0], results[1]
	if rapid.Failovers != 0 {
		t.Errorf("rapid should not fail over under the blackhole, got %d failovers", rapid.Failovers)
	}
	if baseline.Failovers == 0 {
		t.Errorf("the gossip-FD baseline should fail over at least once")
	}
	if baseline.Transactions >= rapid.Transactions {
		t.Errorf("baseline throughput (%d txns) should be below rapid's (%d txns)",
			baseline.Transactions, rapid.Transactions)
	}
}

func TestServiceDiscoveryShapeMatchesFigure13(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end workload skipped in -short mode")
	}
	cfg := testConfig()
	results, err := RunServiceDiscovery(cfg, 12, 3, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected 2 providers, got %d", len(results))
	}
	memberlist, rapid := results[0], results[1]
	if rapid.Reloads > 2 {
		t.Errorf("rapid should reconfigure the load balancer in a single batch, got %d reloads", rapid.Reloads)
	}
	if memberlist.Reloads < rapid.Reloads {
		t.Errorf("memberlist should cause at least as many reloads as rapid (%d vs %d)",
			memberlist.Reloads, rapid.Reloads)
	}
}

func TestRunBroadcastComparisonSmall(t *testing.T) {
	results, err := RunBroadcastComparison(testConfig(), 10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("expected one result per broadcast mode, got %d", len(results))
	}
	for _, r := range results {
		if !r.Recovered {
			t.Errorf("%s fleet did not recover from the crash", r.Mode)
		}
		if r.TotalMessages == 0 || r.BatchMessages == 0 {
			t.Errorf("%s recorded no message traffic: %+v", r.Mode, r)
		}
	}
}
