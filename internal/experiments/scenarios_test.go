package experiments

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/node"
)

// scenarioTestOptions bounds every scenario-cell test run: small timeouts so
// a cell where detection legitimately fails (part of what the matrix
// measures) cannot stall the suite.
func scenarioTestOptions() ScenarioOptions {
	return ScenarioOptions{
		FormationTimeout: 120 * time.Second,
		DetectTimeout:    30 * time.Second,
		AgreeTimeout:     40 * time.Second,
		FaultWindow:      30 * time.Second,
	}
}

// TestScenarioKindTable pins the matrix's shape: at least the six gray
// fault kinds the acceptance grid requires, with consistent victim/outcome
// classification (global kinds have no victims and expect no evictions).
func TestScenarioKindTable(t *testing.T) {
	kinds := AllScenarioKinds()
	if len(kinds) < 6 {
		t.Fatalf("scenario matrix has %d fault kinds, want >= 6", len(kinds))
	}
	seen := map[ScenarioKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
		if k.global() && k.removalExpected() {
			t.Fatalf("kind %q is whole-network but expects victim removal", k)
		}
	}
	for _, want := range []ScenarioKind{ScenarioSlow, ScenarioOneWay, ScenarioFlap, ScenarioAsym, ScenarioWAN, ScenarioChaos} {
		if !seen[want] {
			t.Fatalf("gray fault kind %q missing from the matrix", want)
		}
	}
}

func TestAddrIndexEven(t *testing.T) {
	cases := []struct {
		addr string
		want bool
	}{
		{"m0000:9000", true}, {"m0001:9000", false}, {"m0042:9000", true},
		{"m0977:9000", false}, {"seed-0:9000", false}, {"zk-registry:2181", false},
	}
	for _, c := range cases {
		if got := addrIndexEven(node.Addr(c.addr)); got != c.want {
			t.Errorf("addrIndexEven(%q) = %v, want %v", c.addr, got, c.want)
		}
	}
}

// TestScenarioConformanceAfterFaultClears is the protocol-conformance suite:
// for every system, after a scenario-matrix fault is injected and then
// cleared, all live members must converge back to one agreed membership
// within the bounded agreement window. Detection is *measured* by the matrix
// but deliberately not asserted here — whether a baseline evicts a gray
// victim is a finding, not a invariant; settling on a single view afterwards
// is the invariant every membership service must keep.
func TestScenarioConformanceAfterFaultClears(t *testing.T) {
	systems := []harness.System{harness.SystemRapid, harness.SystemMemberlist, harness.SystemRapidC}
	kinds := []ScenarioKind{ScenarioCrash, ScenarioSlow, ScenarioAsym, ScenarioEgressLoss, ScenarioWAN, ScenarioChaos}
	if testing.Short() {
		// The short lanes (plain smoke and -race) keep one gray cell per
		// system; the full grid runs in the plain `go test ./...` tier.
		kinds = []ScenarioKind{ScenarioSlow}
	}
	cfg := Config{TimeScale: 100, Seed: 42}
	for _, system := range systems {
		for _, kind := range kinds {
			system, kind := system, kind
			t.Run(string(system)+"/"+string(kind), func(t *testing.T) {
				cell, err := RunScenarioCell(cfg, system, kind, 30, scenarioTestOptions())
				if err != nil {
					t.Fatal(err)
				}
				if !cell.FormationOK {
					t.Fatalf("%s did not form a 30-member cluster before the fault", system)
				}
				if !cell.Agreed {
					t.Fatalf("%s: live members did not agree on one membership after %s cleared (size range [%d, %d])",
						system, kind, cell.MinReported, cell.MaxReported)
				}
				if cell.AgreedSize < cell.N-cell.Victims {
					t.Fatalf("%s: agreed size %d after %s implies %d unnecessary evictions",
						system, cell.AgreedSize, kind, cell.UnnecessaryEvictions)
				}
				t.Logf("%s/%s: detected=%v in %.1f paper-s, agreed on %d in %.1f paper-s, %0.f msgs/node",
					system, kind, cell.Detected, cfg.scaledSeconds(cell.DetectTime),
					cell.AgreedSize, cfg.scaledSeconds(cell.AgreeTime), cell.MsgsPerNode)
			})
		}
	}
}

// TestScenarioMatrixShortSmoke is the CI smoke for the full matrix plumbing:
// one Rapid cell per fault kind at laptop size, -short lane only (CI invokes
// it as a dedicated step), skipped under race (the race lane gets its own
// gray cell below).
func TestScenarioMatrixShortSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("matrix smoke skipped under -race (TestScenarioGrayFailureRaceSmoke covers the gray cell)")
	}
	if !testing.Short() {
		t.Skip("matrix smoke runs in the dedicated -short lane: go test -short -run TestScenarioMatrixShortSmoke ./internal/experiments/")
	}
	cfg := Config{TimeScale: 100, Seed: 42}
	opts := scenarioTestOptions()
	opts.Systems = []harness.System{harness.SystemRapid}
	// N=60, not 30: the one-way, flap and deaf kinds need N >> K so the
	// victim's noise alerts cannot evict a healthy member (see
	// ScenarioOneWay and the Figure 9 note in docs/EXPERIMENTS.md).
	opts.Sizes = []int{60}
	// Even at N=60 that precondition is only marginally satisfied: a victim
	// whose egress still works keeps alerting against healthy members, and
	// under host-scheduler jitter one healthy member is occasionally cut
	// before the victim itself. The committed N=1000 capture shows zero
	// unnecessary evictions for every kind, so the smoke tolerates a single
	// such eviction for the victim-noise kinds only — everything else
	// (formation, post-clear agreement, all other kinds) stays strict.
	victimNoise := map[ScenarioKind]bool{ScenarioOneWay: true, ScenarioFlap: true, ScenarioAsym: true}
	cells, err := RunScenarioMatrix(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(AllScenarioKinds()) {
		t.Fatalf("matrix produced %d cells, want %d", len(cells), len(AllScenarioKinds()))
	}
	for _, c := range cells {
		if !c.FormationOK {
			t.Errorf("%s: formation failed", c.Kind)
			continue
		}
		if !c.Agreed {
			t.Errorf("%s: no post-clear agreement (size range [%d, %d])", c.Kind, c.MinReported, c.MaxReported)
		}
		noiseEviction := victimNoise[c.Kind] && c.UnnecessaryEvictions == 1
		if c.UnnecessaryEvictions > 0 {
			if noiseEviction {
				t.Logf("%s: tolerated one noise-alert eviction at laptop N (zero at N=1000; see docs/EXPERIMENTS.md)", c.Kind)
			} else {
				t.Errorf("%s: Rapid evicted %d healthy members", c.Kind, c.UnnecessaryEvictions)
			}
		}
		if c.RemovalExpected && !c.Detected && !noiseEviction {
			t.Errorf("%s: Rapid did not evict the faulty member within the bound", c.Kind)
		}
	}
}

// TestScenarioGrayFailureRaceSmoke runs one gray-failure cell (slow-but-alive
// victim) under the race detector: the delay pumps, flap evaluation and
// chaos draws added to simnet all sit on the hot delivery path, so one cell
// exercising them end-to-end belongs in the race lane.
func TestScenarioGrayFailureRaceSmoke(t *testing.T) {
	if !raceEnabled {
		t.Skip("gray race cell exists for the -race lane; the plain lane runs the full short smoke")
	}
	if !testing.Short() {
		t.Skip("race smoke runs in the -race -short lane")
	}
	cfg := Config{TimeScale: 100, Seed: 42}
	cell, err := RunScenarioCell(cfg, harness.SystemRapid, ScenarioSlow, 30, scenarioTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !cell.FormationOK || !cell.Agreed {
		t.Fatalf("gray cell unhealthy under -race: formed=%v agreed=%v", cell.FormationOK, cell.Agreed)
	}
	if cell.UnnecessaryEvictions > 0 {
		t.Fatalf("Rapid evicted %d healthy members under a slow-node fault", cell.UnnecessaryEvictions)
	}
}
