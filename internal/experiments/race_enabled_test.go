//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// paper-scale smoke skips under it (instrumented runs are ~10x slower and the
// single-writer property is already race-checked on the 100-node scenarios).
const raceEnabled = true
