// Package experiments contains the runners that regenerate every table and
// figure of the paper's evaluation (§2.1 and §7) on a single machine. The
// cross-system comparisons (BootstrapSweep, CrashSweep, FaultSweep,
// BandwidthSweep) run scaled down — 30–100 members with protocol intervals
// compressed by a configurable time scale — while RunBootstrapConvergence
// reruns the Figure 5 bootstrap workload for Rapid at the paper's true scale
// (1000–2000 members in one process), which the sharded simulated network
// makes affordable. The quantities reported per experiment are the same ones
// the paper plots; docs/EXPERIMENTS.md maps each figure and table to the
// exact command that reproduces it and records a captured run.
//
// Every runner takes a Config (time scale, seed, output writer) and builds
// its fleets through package harness, so experiments stay declarative: pick
// a system, a size, a fault, and read back convergence times, join-latency
// percentiles, message counts, or bandwidth summaries.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cutdetect"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/view"
)

// Config carries the shared experiment parameters.
type Config struct {
	// TimeScale compresses protocol durations (50 = 1 paper-second -> 20 ms).
	TimeScale float64
	// Seed makes runs reproducible.
	Seed int64
	// Out receives the printed tables. If nil, printing is skipped.
	Out io.Writer
	// Clock paces the runners' waits and fault schedules; nil means the wall
	// clock, which is what the sweeps need in practice (they drive real fleets
	// whose protocol timers burn compressed real time).
	Clock simclock.Clock
}

// DefaultConfig returns the configuration used by cmd/rapid-bench.
func DefaultConfig() Config {
	return Config{TimeScale: 50, Seed: 1}
}

func (c Config) printf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// scaledSeconds converts a wall-clock duration measured in a compressed-time
// run back into "paper seconds" for reporting.
func (c Config) scaledSeconds(d time.Duration) float64 {
	return d.Seconds() * c.TimeScale
}

// clock returns the configured clock, defaulting to the wall clock.
func (c Config) clock() simclock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return simclock.NewReal()
}

// --- Figures 5, 6, 7 and Table 1: bootstrap ---------------------------------

// BootstrapResult captures one (system, N) bootstrap run.
type BootstrapResult struct {
	System          harness.System
	N               int
	Converged       bool
	ConvergenceTime time.Duration
	// PerNodeLatency is each member's time-to-full-view (Figure 6's ECDF).
	PerNodeLatency []time.Duration
	// UniqueSizes is the number of distinct cluster sizes reported (Table 1).
	UniqueSizes int
}

// RunBootstrap boots a fleet of the given system and size and measures the
// time for every member to report the full cluster size (Figure 5), the
// per-node latency distribution (Figure 6), and the number of unique sizes
// reported along the way (Table 1, Figure 7).
func RunBootstrap(cfg Config, system harness.System, n int) (BootstrapResult, error) {
	fleet, err := harness.Launch(harness.Options{
		System:         system,
		N:              n,
		TimeScale:      cfg.TimeScale,
		Seed:           cfg.Seed,
		SampleInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return BootstrapResult{}, err
	}
	defer fleet.Stop()
	elapsed, ok := fleet.WaitForSize(n, 120*time.Second)
	// Let the sampler capture the converged state before reading series.
	cfg.clock().Sleep(50 * time.Millisecond)
	res := BootstrapResult{
		System:          system,
		N:               n,
		Converged:       ok,
		ConvergenceTime: elapsed,
		PerNodeLatency:  fleet.PerAgentConvergence(n),
		UniqueSizes:     fleet.UniqueReportedSizes(nil),
	}
	sort.Slice(res.PerNodeLatency, func(i, j int) bool { return res.PerNodeLatency[i] < res.PerNodeLatency[j] })
	return res, nil
}

// BootstrapSweep runs RunBootstrap for every system and size and prints the
// Figure 5 table, the Figure 6 percentiles and the Table 1 unique-size counts.
func BootstrapSweep(cfg Config, systems []harness.System, sizes []int) ([]BootstrapResult, error) {
	var results []BootstrapResult
	cfg.printf("== Figure 5 / Figure 6 / Figure 7 / Table 1: bootstrap convergence ==\n")
	cfg.printf("%-12s %6s %14s %12s %12s %12s %8s\n",
		"system", "N", "converge(s)", "p50(s)", "p90(s)", "p99(s)", "sizes")
	for _, n := range sizes {
		for _, system := range systems {
			r, err := RunBootstrap(cfg, system, n)
			if err != nil {
				return results, fmt.Errorf("bootstrap %s N=%d: %w", system, n, err)
			}
			results = append(results, r)
			lat := make([]float64, len(r.PerNodeLatency))
			for i, d := range r.PerNodeLatency {
				lat[i] = cfg.scaledSeconds(d)
			}
			cfg.printf("%-12s %6d %14.1f %12.1f %12.1f %12.1f %8d\n",
				r.System, r.N, cfg.scaledSeconds(r.ConvergenceTime),
				metrics.Percentile(lat, 50), metrics.Percentile(lat, 90), metrics.Percentile(lat, 99),
				r.UniqueSizes)
		}
	}
	return results, nil
}

// --- Figure 5 at paper scale: 1000+ node bootstrap convergence ---------------

// BootstrapConvergencePoint captures one cluster size of the paper-scale
// Figure 5 sweep.
type BootstrapConvergencePoint struct {
	N               int
	Converged       bool
	ConvergenceTime time.Duration
	// JoinP50/P90/P99 are percentiles of each member's join-call latency
	// (the time from issuing the two-phase join until the admitting view
	// change's response arrived), which is the per-node quantity Figure 5
	// plots.
	JoinP50, JoinP90, JoinP99 time.Duration
	// Messages is the total simnet send count for the run, a proxy for the
	// dissemination cost of the bootstrap storm.
	Messages int64
	// ShedBatches sums overload shedding across the fleet: non-zero means
	// some member's event queue crossed its high-water mark during the run.
	ShedBatches int64
	// QueueFullTime sums the time producers spent blocked on full event
	// queues across the fleet (the backpressure shedding cannot remove).
	QueueFullTime time.Duration
	// MinBatchWindow/MaxBatchWindow bracket the adaptive flush windows the
	// fleet's members ended the run with; both must stay within the
	// configured floor/ceiling.
	MinBatchWindow time.Duration
	MaxBatchWindow time.Duration
}

// ConvergenceOptions tune the paper-scale bootstrap sweep.
type ConvergenceOptions struct {
	// JoinConcurrency bounds simultaneous join calls (0 = all at once, the
	// paper's bootstrap storm).
	JoinConcurrency int
	// Shards overrides the simnet delivery shard count (0 = default).
	Shards int
	// Timeout bounds each run's convergence wait (0 = 300s).
	Timeout time.Duration
	// BatchingWindowMin/Max override the engine's adaptive window range
	// (0 = scaled core default).
	BatchingWindowMin time.Duration
	BatchingWindowMax time.Duration
}

// RunBootstrapConvergence reruns the Figure 5 bootstrap workload at the
// paper's true scale for Rapid fleets: for each N it boots a fleet with every
// member joining through one seed, waits until all members report the full
// size, and reports join-latency percentiles plus the total message cost.
// Unlike BootstrapSweep (which compares systems at laptop scale), this sweep
// exists to exercise N in {100, 500, 1000, 2000} in one process, which the
// sharded simnet makes affordable.
func RunBootstrapConvergence(cfg Config, sizes []int, opts ConvergenceOptions) ([]BootstrapConvergencePoint, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 300 * time.Second
	}
	cfg.printf("== Figure 5 at paper scale: Rapid bootstrap convergence ==\n")
	cfg.printf("%6s %14s %12s %12s %12s %14s %8s %12s\n",
		"N", "converge(s)", "join-p50(s)", "join-p90(s)", "join-p99(s)", "msgs/node", "shed", "max-window")
	var out []BootstrapConvergencePoint
	for _, n := range sizes {
		// Bootstrap storms at large N admit joiners in waves; give joiners
		// enough attempts that the last wave still has budget.
		attempts := 10
		if n/25 > attempts {
			attempts = n / 25
		}
		fleet, err := harness.Launch(harness.Options{
			System:            harness.SystemRapid,
			N:                 n,
			TimeScale:         cfg.TimeScale,
			Seed:              cfg.Seed,
			SampleInterval:    50 * time.Millisecond,
			JoinConcurrency:   opts.JoinConcurrency,
			SimnetShards:      opts.Shards,
			JoinAttempts:      attempts,
			BatchingWindowMin: opts.BatchingWindowMin,
			BatchingWindowMax: opts.BatchingWindowMax,
		})
		if err != nil {
			return out, fmt.Errorf("bootstrap convergence N=%d: %w", n, err)
		}
		elapsed, ok := fleet.WaitForSize(n, timeout)
		point := BootstrapConvergencePoint{
			N:               n,
			Converged:       ok,
			ConvergenceTime: elapsed,
			Messages:        fleet.Net.TotalMessages(),
		}
		for i, st := range fleet.RapidStats() {
			point.ShedBatches += st.ShedBatches
			point.QueueFullTime += st.QueueFullTime
			if st.BatchWindow > point.MaxBatchWindow {
				point.MaxBatchWindow = st.BatchWindow
			}
			if i == 0 || st.BatchWindow < point.MinBatchWindow {
				point.MinBatchWindow = st.BatchWindow
			}
		}
		lats := make([]float64, 0, n)
		for _, d := range fleet.JoinLatencies() {
			lats = append(lats, float64(d))
		}
		point.JoinP50 = time.Duration(metrics.Percentile(lats, 50))
		point.JoinP90 = time.Duration(metrics.Percentile(lats, 90))
		point.JoinP99 = time.Duration(metrics.Percentile(lats, 99))
		fleet.Stop()
		// Return the stopped fleet's memory to the OS before the next
		// (larger) size boots: a paper-scale fleet leaves hundreds of MB of
		// fragmented spans, and allocation slowdown from reusing them is
		// enough to tip the next run's timing-sensitive bootstrap dynamics
		// into churn — the dominant source of run-to-run variance in the
		// one-command sweep (plain runtime.GC was not sufficient).
		debug.FreeOSMemory()
		out = append(out, point)
		cfg.printf("%6d %14.1f %12.1f %12.1f %12.1f %14.0f %8d %12s\n",
			point.N, cfg.scaledSeconds(point.ConvergenceTime),
			cfg.scaledSeconds(point.JoinP50), cfg.scaledSeconds(point.JoinP90),
			cfg.scaledSeconds(point.JoinP99), float64(point.Messages)/float64(n),
			point.ShedBatches, point.MaxBatchWindow)
		if !ok {
			return out, fmt.Errorf("bootstrap convergence N=%d: did not converge within %s", n, timeout)
		}
	}
	return out, nil
}

// --- Figure 8: concurrent crash failures ------------------------------------

// CrashResult captures one crash-failure run.
type CrashResult struct {
	System         harness.System
	N, Failures    int
	Recovered      bool
	RecoveryTime   time.Duration
	UniqueSizes    int
	ViewChangesMax int
}

// RunCrash boots a fleet, waits for it to stabilise, crashes `failures`
// members simultaneously, and measures how long the survivors take to all
// report N-failures, plus how many intermediate sizes were observed.
func RunCrash(cfg Config, system harness.System, n, failures int) (CrashResult, error) {
	fleet, err := harness.Launch(harness.Options{
		System:         system,
		N:              n,
		TimeScale:      cfg.TimeScale,
		Seed:           cfg.Seed,
		SampleInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return CrashResult{}, err
	}
	defer fleet.Stop()
	if _, ok := fleet.WaitForSize(n, 120*time.Second); !ok {
		return CrashResult{System: system, N: n, Failures: failures}, fmt.Errorf("cluster did not stabilise before the crash")
	}
	agents := fleet.Agents()
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(agents))
	excluded := make(map[node.Addr]bool, failures)
	var victims []node.Addr
	for _, idx := range perm {
		if len(victims) == failures {
			break
		}
		victims = append(victims, agents[idx].Addr())
		excluded[agents[idx].Addr()] = true
	}
	// Reset the "unique sizes" baseline by only counting from now on: record
	// the pre-crash sample count per agent is unnecessary — Table/Figure 8
	// looks at sizes observed around the crash, so we simply count distinct
	// sizes over the whole run, which is dominated by the transition.
	fleet.Crash(victims...)
	elapsed, ok := fleet.WaitForSizeExcluding(n-failures, excluded, 120*time.Second)
	cfg.clock().Sleep(50 * time.Millisecond)
	res := CrashResult{
		System:       system,
		N:            n,
		Failures:     failures,
		Recovered:    ok,
		RecoveryTime: elapsed,
		UniqueSizes:  fleet.UniqueReportedSizes(excluded),
	}
	return res, nil
}

// CrashSweep runs RunCrash for each system and prints the Figure 8 table.
func CrashSweep(cfg Config, systems []harness.System, n, failures int) ([]CrashResult, error) {
	cfg.printf("== Figure 8: %d concurrent crash failures (N=%d) ==\n", failures, n)
	cfg.printf("%-12s %12s %12s %10s\n", "system", "recover(s)", "recovered", "sizes")
	var out []CrashResult
	for _, system := range systems {
		r, err := RunCrash(cfg, system, n, failures)
		if err != nil {
			return out, fmt.Errorf("crash %s: %w", system, err)
		}
		out = append(out, r)
		cfg.printf("%-12s %12.1f %12v %10d\n", r.System, cfg.scaledSeconds(r.RecoveryTime), r.Recovered, r.UniqueSizes)
	}
	return out, nil
}

// --- broadcast strategy comparison -------------------------------------------

// BroadcastCostResult captures the message cost of one dissemination
// strategy handling the same crash-recovery workload.
type BroadcastCostResult struct {
	Mode         core.BroadcastMode
	N, Failures  int
	Recovered    bool
	RecoveryTime time.Duration
	// TotalMessages is every send attempt during the run (probes included).
	TotalMessages int64
	// BatchMessages is the number of batched alert/vote wire messages.
	BatchMessages int64
}

// RunBroadcastComparison runs the crash-recovery workload once per broadcast
// mode on identically seeded fleets and reports the message cost of each:
// unicast-to-all pays O(N) per batch at one hop, gossip pays O(fanout) per
// process per hop with flooding re-broadcast.
func RunBroadcastComparison(cfg Config, n, failures, fanout int) ([]BroadcastCostResult, error) {
	var out []BroadcastCostResult
	cfg.printf("== Broadcast strategy: messages to recover from %d crashes (N=%d) ==\n", failures, n)
	cfg.printf("%-10s %12s %12s %14s %12s\n", "mode", "recover(s)", "recovered", "total-msgs", "batch-msgs")
	for _, mode := range []core.BroadcastMode{core.BroadcastUnicastToAll, core.BroadcastGossip} {
		fleet, err := harness.Launch(harness.Options{
			System:         harness.SystemRapid,
			N:              n,
			TimeScale:      cfg.TimeScale,
			Seed:           cfg.Seed,
			SampleInterval: 10 * time.Millisecond,
			Broadcast:      mode,
			GossipFanout:   fanout,
		})
		if err != nil {
			return out, fmt.Errorf("broadcast comparison %s: %w", mode, err)
		}
		res := BroadcastCostResult{Mode: mode, N: n, Failures: failures}
		if _, ok := fleet.WaitForSize(n, 120*time.Second); !ok {
			fleet.Stop()
			return out, fmt.Errorf("broadcast comparison %s: fleet did not stabilise", mode)
		}
		agents := fleet.Agents()
		rng := rand.New(rand.NewSource(cfg.Seed))
		perm := rng.Perm(len(agents))
		excluded := make(map[node.Addr]bool, failures)
		var victims []node.Addr
		for _, idx := range perm {
			if len(victims) == failures {
				break
			}
			victims = append(victims, agents[idx].Addr())
			excluded[agents[idx].Addr()] = true
		}
		startTotal := fleet.Net.TotalMessages()
		startBatches := batchMessages(fleet)
		fleet.Crash(victims...)
		elapsed, ok := fleet.WaitForSizeExcluding(n-failures, excluded, 120*time.Second)
		res.Recovered = ok
		res.RecoveryTime = elapsed
		res.TotalMessages = fleet.Net.TotalMessages() - startTotal
		res.BatchMessages = batchMessages(fleet) - startBatches
		fleet.Stop()
		out = append(out, res)
		cfg.printf("%-10s %12.1f %12v %14d %12d\n",
			res.Mode, cfg.scaledSeconds(res.RecoveryTime), res.Recovered, res.TotalMessages, res.BatchMessages)
	}
	return out, nil
}

// batchMessages counts the batched alert/vote wire messages seen so far.
func batchMessages(fleet *harness.Fleet) int64 {
	return fleet.Net.MessageCount("alerts") +
		fleet.Net.MessageCount("votebatch") +
		fleet.Net.MessageCount("alerts+votes")
}

// --- Figures 1, 9, 10: asymmetric network failures --------------------------

// FaultKind selects which network fault to inject.
type FaultKind string

// The fault scenarios of the paper's robustness experiments.
const (
	// FaultIngressFlipFlop: victims drop all received packets for a window,
	// recover for a window, and repeat (Figure 9).
	//
	// Run this experiment with N >> K only. The paper's stability argument
	// assumes cluster size well above the ring count; at N close to K (e.g.
	// N=20, K=10) a flip-flop-partitioned victim observes a healthy subject
	// on >= L rings, so the victim's own noise REMOVE alerts can push that
	// healthy subject past the low watermark, reinforcement echoes pile on,
	// and the healthy subject is evicted — observed as a ~2/12 flake in
	// earlier PRs. With N >= 60 a single victim holds fewer than L of any
	// subject's K observer slots and the noise cannot cross the watermark.
	FaultIngressFlipFlop FaultKind = "ingress-flipflop"
	// FaultEgressLoss80: victims drop 80% of their outgoing packets
	// (Figure 10; Figure 1 is the same fault applied to the baselines).
	FaultEgressLoss80 FaultKind = "egress-loss-80"
)

// FaultResult captures one asymmetric-fault run.
type FaultResult struct {
	System          harness.System
	Fault           FaultKind
	N, Victims      int
	FaultyRemoved   bool
	RemovalTime     time.Duration
	HealthyRetained bool
	UniqueSizes     int
}

// RunFault boots a fleet, injects the asymmetric fault at 1% of members (at
// least one), and checks the paper's two stability criteria: the faulty
// processes are removed, and no healthy process is removed.
func RunFault(cfg Config, system harness.System, fault FaultKind, n int) (FaultResult, error) {
	fleet, err := harness.Launch(harness.Options{
		System:         system,
		N:              n,
		TimeScale:      cfg.TimeScale,
		Seed:           cfg.Seed,
		SampleInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return FaultResult{}, err
	}
	defer fleet.Stop()
	if _, ok := fleet.WaitForSize(n, 120*time.Second); !ok {
		return FaultResult{System: system, Fault: fault, N: n}, fmt.Errorf("cluster did not stabilise before the fault")
	}

	victims := n / 100
	if victims < 1 {
		victims = 1
	}
	agents := fleet.Agents()
	excluded := make(map[node.Addr]bool, victims)
	var victimAddrs []node.Addr
	for i := 0; i < victims; i++ {
		a := agents[len(agents)-1-i].Addr()
		victimAddrs = append(victimAddrs, a)
		excluded[a] = true
	}

	stopFault := make(chan struct{})
	switch fault {
	case FaultIngressFlipFlop:
		window := harness.Scale(20*time.Second, cfg.TimeScale)
		go func() {
			on := true
			for {
				for _, v := range victimAddrs {
					if on {
						fleet.Net.SetIngressLoss(v, 1.0)
					} else {
						fleet.Net.SetIngressLoss(v, 0)
					}
				}
				on = !on
				select {
				case <-stopFault:
					return
				case <-cfg.clock().After(window):
				}
			}
		}()
	case FaultEgressLoss80:
		for _, v := range victimAddrs {
			fleet.Net.SetEgressLoss(v, 0.8)
		}
	default:
		return FaultResult{}, fmt.Errorf("unknown fault %q", fault)
	}

	removalTime, removed := fleet.WaitForSizeExcluding(n-victims, excluded, 90*time.Second)
	close(stopFault)

	// Stability check: every healthy member is still in every healthy view.
	healthyRetained := true
	for _, a := range fleet.Agents() {
		if excluded[a.Addr()] {
			continue
		}
		if a.ReportedSize() < n-victims {
			healthyRetained = false
			break
		}
	}
	res := FaultResult{
		System:          system,
		Fault:           fault,
		N:               n,
		Victims:         victims,
		FaultyRemoved:   removed,
		RemovalTime:     removalTime,
		HealthyRetained: healthyRetained,
		UniqueSizes:     fleet.UniqueReportedSizes(excluded),
	}
	return res, nil
}

// FaultSweep runs RunFault across systems and prints the Figure 1/9/10 table.
func FaultSweep(cfg Config, systems []harness.System, fault FaultKind, n int) ([]FaultResult, error) {
	cfg.printf("== %s on 1%% of members (N=%d) ==\n", fault, n)
	cfg.printf("%-12s %16s %12s %18s %8s\n", "system", "faulty-removed", "remove(s)", "healthy-retained", "sizes")
	var out []FaultResult
	for _, system := range systems {
		r, err := RunFault(cfg, system, fault, n)
		if err != nil {
			return out, fmt.Errorf("fault %s on %s: %w", fault, system, err)
		}
		out = append(out, r)
		cfg.printf("%-12s %16v %12.1f %18v %8d\n",
			r.System, r.FaultyRemoved, cfg.scaledSeconds(r.RemovalTime), r.HealthyRetained, r.UniqueSizes)
	}
	return out, nil
}

// --- Table 2: network bandwidth ----------------------------------------------

// BandwidthResult captures the Table 2 aggregates for one system.
type BandwidthResult struct {
	System   harness.System
	Received metrics.BandwidthSummary
	Sent     metrics.BandwidthSummary
}

// RunBandwidth repeats the crash experiment with byte accounting enabled and
// reports the per-process mean / p99 / max KB/s in each direction.
func RunBandwidth(cfg Config, system harness.System, n, failures int) (BandwidthResult, error) {
	fleet, err := harness.Launch(harness.Options{
		System:           system,
		N:                n,
		TimeScale:        cfg.TimeScale,
		Seed:             cfg.Seed,
		SampleInterval:   10 * time.Millisecond,
		AccountBandwidth: true,
	})
	if err != nil {
		return BandwidthResult{}, err
	}
	defer fleet.Stop()
	if _, ok := fleet.WaitForSize(n, 120*time.Second); !ok {
		return BandwidthResult{System: system}, fmt.Errorf("cluster did not stabilise")
	}
	agents := fleet.Agents()
	var victims []node.Addr
	for i := 0; i < failures && i < len(agents); i++ {
		victims = append(victims, agents[len(agents)-1-i].Addr())
	}
	excluded := make(map[node.Addr]bool)
	for _, v := range victims {
		excluded[v] = true
	}
	fleet.Crash(victims...)
	fleet.WaitForSizeExcluding(n-len(victims), excluded, 90*time.Second)
	// Let steady-state traffic accumulate for a short window.
	cfg.clock().Sleep(harness.Scale(10*time.Second, cfg.TimeScale))

	var recvRates, sentRates []float64
	for _, a := range agents {
		if excluded[a.Addr()] {
			continue
		}
		rec := fleet.Net.Bandwidth(a.Addr())
		recvRates = append(recvRates, rec.ReceivedRates()...)
		sentRates = append(sentRates, rec.SentRates()...)
	}
	return BandwidthResult{
		System:   system,
		Received: metrics.Summarize(recvRates),
		Sent:     metrics.Summarize(sentRates),
	}, nil
}

// BandwidthSweep prints the Table 2 comparison.
func BandwidthSweep(cfg Config, systems []harness.System, n, failures int) ([]BandwidthResult, error) {
	cfg.printf("== Table 2: per-process bandwidth (KB/s, received / transmitted) ==\n")
	cfg.printf("%-12s %18s %18s %18s\n", "system", "mean", "p99", "max")
	var out []BandwidthResult
	for _, system := range systems {
		r, err := RunBandwidth(cfg, system, n, failures)
		if err != nil {
			return out, fmt.Errorf("bandwidth %s: %w", system, err)
		}
		out = append(out, r)
		cfg.printf("%-12s %9.2f/%-9.2f %9.2f/%-9.2f %9.2f/%-9.2f\n", r.System,
			r.Received.MeanKBps, r.Sent.MeanKBps,
			r.Received.P99KBps, r.Sent.P99KBps,
			r.Received.MaxKBps, r.Sent.MaxKBps)
	}
	return out, nil
}

// --- Figure 11: K, H, L sensitivity ------------------------------------------

// SensitivityPoint is the conflict rate for one (H, L, F) combination.
type SensitivityPoint struct {
	K, H, L, F   int
	ConflictRate float64
}

// RunCutDetectionSensitivity reproduces the Figure 11 simulation: F processes
// fail simultaneously, their observers' alerts are delivered to every process
// in an independent uniform-random order, and a process "conflicts" when its
// first emitted proposal does not contain all F failed processes. The
// returned conflict rates are percentages.
func RunCutDetectionSensitivity(cfg Config, k int, hs, ls, fs []int, processes, repetitions int) []SensitivityPoint {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []SensitivityPoint
	for _, h := range hs {
		for _, l := range ls {
			if l > h {
				continue
			}
			for _, f := range fs {
				conflicts, total := 0, 0
				for rep := 0; rep < repetitions; rep++ {
					// Build the alert set: F subjects, each reported by K
					// distinct observers (one per ring).
					type alertEvent struct {
						alert   remoting.AlertMessage
						subject node.Endpoint
					}
					var alerts []alertEvent
					for i := 0; i < f; i++ {
						subject := node.Endpoint{
							Addr: node.Addr(fmt.Sprintf("failed-%d:1", i)),
							ID:   node.ID{High: uint64(i + 1), Low: uint64(rep + 1)},
						}
						for ring := 0; ring < k; ring++ {
							alerts = append(alerts, alertEvent{
								alert: remoting.AlertMessage{
									EdgeSrc:     node.Addr(fmt.Sprintf("obs-%d-%d:1", i, ring)),
									EdgeDst:     subject.Addr,
									Status:      remoting.EdgeDown,
									RingNumbers: []int{ring},
								},
								subject: subject,
							})
						}
					}
					for p := 0; p < processes; p++ {
						d := cutdetect.New(k, h, l)
						order := rng.Perm(len(alerts))
						var first []node.Endpoint
						for _, idx := range order {
							ev := alerts[idx]
							got := d.AggregateForProposal(ev.alert, ev.subject, time.Unix(0, 0))
							if len(got) > 0 && first == nil {
								first = got
							}
						}
						total++
						if len(first) != f {
							conflicts++
						}
					}
				}
				out = append(out, SensitivityPoint{
					K: k, H: h, L: l, F: f,
					ConflictRate: 100 * float64(conflicts) / float64(total),
				})
			}
		}
	}
	return out
}

// SensitivitySweep prints the Figure 11 grid.
func SensitivitySweep(cfg Config, k int, processes, repetitions int) []SensitivityPoint {
	hs := []int{6, 7, 8, 9}
	ls := []int{1, 2, 3, 4}
	fs := []int{2, 4, 8, 16}
	points := RunCutDetectionSensitivity(cfg, k, hs, ls, fs, processes, repetitions)
	cfg.printf("== Figure 11: almost-everywhere agreement conflict rate (%%), K=%d ==\n", k)
	cfg.printf("%4s %4s %6s %6s %6s %6s\n", "H", "L", "F=2", "F=4", "F=8", "F=16")
	byHL := make(map[[2]int]map[int]float64)
	for _, p := range points {
		key := [2]int{p.H, p.L}
		if byHL[key] == nil {
			byHL[key] = make(map[int]float64)
		}
		byHL[key][p.F] = p.ConflictRate
	}
	for _, h := range hs {
		for _, l := range ls {
			row, ok := byHL[[2]int{h, l}]
			if !ok {
				continue
			}
			cfg.printf("%4d %4d %6.1f %6.1f %6.1f %6.1f\n", h, l, row[2], row[4], row[8], row[16])
		}
	}
	return points
}

// --- §8: expander analysis ----------------------------------------------------

// ExpansionResult captures the spectral analysis of the K-ring topology.
type ExpansionResult struct {
	N               int
	K               int
	NormalizedL2    float64
	DetectableBetaL float64
}

// RunExpansion builds K-ring views of the given sizes and reports λ/d and the
// detectable failure density for L=3, verifying the §8 claims (λ/d < 0.45 for
// K=10, hence β < 0.25 is detectable with L=3).
func RunExpansion(cfg Config, k int, sizes []int, l int) []ExpansionResult {
	var out []ExpansionResult
	cfg.printf("== Section 8: expander analysis of the %d-ring topology ==\n", k)
	cfg.printf("%8s %4s %12s %16s\n", "N", "K", "lambda/d", "detectable-beta")
	for _, n := range sizes {
		eps := make([]node.Endpoint, n)
		for i := range eps {
			eps[i] = node.Endpoint{
				Addr: node.Addr(fmt.Sprintf("10.%d.%d.%d:9", i/65536, (i/256)%256, i%256)),
				ID:   node.ID{High: uint64(i + 1), Low: uint64(i + 7)},
			}
		}
		v := view.NewWithMembers(k, eps)
		rep, err := graph.Analyze(v, 300, cfg.Seed)
		if err != nil {
			continue
		}
		res := ExpansionResult{
			N:               n,
			K:               k,
			NormalizedL2:    rep.NormalizedL2,
			DetectableBetaL: rep.DetectableBetaL(l),
		}
		out = append(out, res)
		cfg.printf("%8d %4d %12.3f %16.3f\n", res.N, res.K, res.NormalizedL2, res.DetectableBetaL)
	}
	return out
}
