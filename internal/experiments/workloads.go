package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apps/discovery"
	"repro/internal/apps/txn"
	"repro/internal/core"
	"repro/internal/gossipfd"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/swim"
)

// --- Figure 12: distributed transactional data platform ----------------------

// TxnResult captures one membership-provider's run of the Figure 12 workload.
type TxnResult struct {
	Provider     string
	Transactions int
	Failovers    int
	Flaps        int
	P50Latency   time.Duration
	P99Latency   time.Duration
	MaxLatency   time.Duration
}

// accusationMembership models the transactional platform's original
// all-to-all gossip failure detector feeding reconfiguration: any single
// node's accusation removes a server from the membership, and the server is
// re-added once a majority of detectors still consider it alive — producing
// the accusation/refutation flapping the paper describes.
type accusationMembership struct {
	servers   []node.Addr
	detectors []*gossipfd.Detector

	mu      sync.Mutex
	removed map[node.Addr]bool
	flaps   int
}

func newAccusationMembership(servers []node.Addr, detectors []*gossipfd.Detector) *accusationMembership {
	return &accusationMembership{servers: servers, detectors: detectors, removed: make(map[node.Addr]bool)}
}

// AliveServers implements txn.MembershipSource.
func (a *accusationMembership) AliveServers() []node.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	var alive []node.Addr
	for _, s := range a.servers {
		accusations, vouches := 0, 0
		for _, d := range a.detectors {
			if d.Addr() == s {
				continue
			}
			if d.Alive(s) {
				vouches++
			} else {
				accusations++
			}
		}
		if !a.removed[s] && accusations > 0 {
			a.removed[s] = true
			a.flaps++
		} else if a.removed[s] && accusations == 0 {
			a.removed[s] = false
			a.flaps++
		} else if a.removed[s] && vouches > accusations {
			// Refutation: a majority still vouches for the server, so the
			// reconfiguration layer re-admits it (until the next accusation).
			a.removed[s] = false
			a.flaps++
		}
		if !a.removed[s] {
			alive = append(alive, s)
		}
	}
	return alive
}

// Flaps returns the number of membership transitions the source produced.
func (a *accusationMembership) Flaps() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flaps
}

// RunTransactionWorkload reproduces Figure 12: a transactional platform over
// `servers` data servers, driven either by the baseline all-to-all gossip
// failure detector or by Rapid, with a full packet blackhole injected between
// the serialization server and one other data server mid-run.
func RunTransactionWorkload(cfg Config, servers int, duration time.Duration) ([]TxnResult, error) {
	if servers < 8 {
		servers = 8
	}
	addrs := make([]node.Addr, servers)
	for i := range addrs {
		addrs[i] = node.Addr(fmt.Sprintf("data-%02d:7100", i))
	}
	opts := txn.DefaultOptions().Scaled(cfg.TimeScale / 5)
	var results []TxnResult

	runOne := func(provider string) (TxnResult, error) {
		net := simnet.New(simnet.Options{Seed: cfg.Seed})
		// source is polled (baseline detectors have no notification stream);
		// attach wires a push-driven provider's subscriber stream to the
		// platform instead. Exactly one of the two is set per provider.
		var source txn.MembershipSource
		var attach func(*txn.Platform)
		var flapCount func() int
		var cleanup func()

		switch provider {
		case "baseline-gossip-fd":
			var detectors []*gossipfd.Detector
			for _, a := range addrs {
				d, err := gossipfd.Start(a, addrs, gossipfd.DefaultOptions().Scaled(cfg.TimeScale), net)
				if err != nil {
					return TxnResult{}, err
				}
				detectors = append(detectors, d)
			}
			am := newAccusationMembership(addrs, detectors)
			source = am
			flapCount = am.Flaps
			cleanup = func() {
				for _, d := range detectors {
					d.Stop()
				}
			}
		case "rapid":
			settings := core.ScaledSettings(cfg.TimeScale)
			node.SeedIDGenerator(cfg.Seed)
			seedCluster, err := core.StartCluster(addrs[0], settings, net)
			if err != nil {
				return TxnResult{}, err
			}
			clusters := []*core.Cluster{seedCluster}
			var mu sync.Mutex
			var wg sync.WaitGroup
			var joinErr error
			for _, a := range addrs[1:] {
				a := a
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := core.JoinCluster(a, []node.Addr{addrs[0]}, settings, net)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						joinErr = err
						return
					}
					clusters = append(clusters, c)
				}()
			}
			wg.Wait()
			if joinErr != nil {
				return TxnResult{}, joinErr
			}
			deadline := cfg.clock().Now().Add(60 * time.Second)
			for cfg.clock().Now().Before(deadline) {
				if seedCluster.Size() == servers {
					break
				}
				cfg.clock().Sleep(5 * time.Millisecond)
			}
			// A coordinator other than the serialization server feeds the
			// platform through the subscriber stream: no polling, every view
			// change is pushed as it is installed (the bounded notifier makes
			// this safe even if the platform's handling were slow). The seed
			// push after Subscribe covers any view change installed before
			// the subscription existed.
			coordinator := clusters[1]
			attach = func(p *txn.Platform) {
				coordinator.Subscribe(func(vc core.ViewChange) {
					p.ApplyEndpoints(vc.Members)
				})
				p.SeedEndpoints(coordinator.Members())
			}
			flapCount = func() int { return 0 }
			cleanup = func() {
				for _, c := range clusters {
					c.Stop()
				}
			}
		default:
			return TxnResult{}, fmt.Errorf("unknown provider %q", provider)
		}
		defer cleanup()

		platform := txn.NewPlatform(addrs, source, opts)
		defer platform.Stop()
		if attach != nil {
			attach(platform)
		}

		// Inject the blackhole between the serialization server (lowest
		// address) and one other data server a third of the way into the run.
		go func() {
			cfg.clock().Sleep(duration / 3)
			net.BlockPair(addrs[0], addrs[servers/2])
		}()

		txns := platform.RunWorkload(4, duration)
		lat := make([]float64, len(txns))
		for i, r := range txns {
			lat[i] = float64(r.Latency)
		}
		return TxnResult{
			Provider:     provider,
			Transactions: len(txns),
			Failovers:    platform.Failovers(),
			Flaps:        flapCount(),
			P50Latency:   time.Duration(metrics.Percentile(lat, 50)),
			P99Latency:   time.Duration(metrics.Percentile(lat, 99)),
			MaxLatency:   time.Duration(metrics.Max(lat)),
		}, nil
	}

	cfg.printf("== Figure 12: transactional platform under a packet blackhole ==\n")
	cfg.printf("%-20s %8s %10s %8s %10s %10s %10s\n", "provider", "txns", "failovers", "flaps", "p50", "p99", "max")
	for _, provider := range []string{"baseline-gossip-fd", "rapid"} {
		r, err := runOne(provider)
		if err != nil {
			return results, fmt.Errorf("txn workload %s: %w", provider, err)
		}
		results = append(results, r)
		cfg.printf("%-20s %8d %10d %8d %10s %10s %10s\n",
			r.Provider, r.Transactions, r.Failovers, r.Flaps, r.P50Latency, r.P99Latency, r.MaxLatency)
	}
	return results, nil
}

// --- Figure 13: service discovery ---------------------------------------------

// DiscoveryResult captures one membership-provider's run of the Figure 13
// workload.
type DiscoveryResult struct {
	Provider   string
	Requests   int
	Reloads    int
	Timeouts   int
	P50Latency time.Duration
	P99Latency time.Duration
	MaxLatency time.Duration
}

// RunServiceDiscovery reproduces Figure 13: a load balancer discovers
// `backends` web servers through either Rapid or the SWIM/Memberlist
// baseline; part-way through a constant request workload, `failures` backends
// crash simultaneously. Rapid delivers one batched view change (one nginx
// reload); the baseline delivers several independent removals (several
// reloads), inflating tail latency.
func RunServiceDiscovery(cfg Config, backends, failures int, duration time.Duration) ([]DiscoveryResult, error) {
	if backends < 10 {
		backends = 10
	}
	if failures >= backends/2 {
		failures = backends / 4
	}
	addrs := make([]node.Addr, backends)
	for i := range addrs {
		addrs[i] = node.Addr(fmt.Sprintf("web-%02d:8080", i))
	}
	lbOpts := discovery.DefaultOptions().Scaled(cfg.TimeScale / 5)
	var results []DiscoveryResult

	runOne := func(provider string) (DiscoveryResult, error) {
		net := simnet.New(simnet.Options{Seed: cfg.Seed})
		lb := discovery.NewLoadBalancer(addrs, lbOpts)
		var cleanup func()
		var crash func()

		switch provider {
		case "rapid":
			settings := core.ScaledSettings(cfg.TimeScale)
			node.SeedIDGenerator(cfg.Seed + 7)
			seedCluster, err := core.StartCluster(addrs[0], settings, net)
			if err != nil {
				return DiscoveryResult{}, err
			}
			clusters := []*core.Cluster{seedCluster}
			var mu sync.Mutex
			var wg sync.WaitGroup
			var joinErr error
			for _, a := range addrs[1:] {
				a := a
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := core.JoinCluster(a, []node.Addr{addrs[0]}, settings, net)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						joinErr = err
						return
					}
					clusters = append(clusters, c)
				}()
			}
			wg.Wait()
			if joinErr != nil {
				return DiscoveryResult{}, joinErr
			}
			deadline := cfg.clock().Now().Add(60 * time.Second)
			for cfg.clock().Now().Before(deadline) {
				if seedCluster.Size() == backends {
					break
				}
				cfg.clock().Sleep(5 * time.Millisecond)
			}
			// The load balancer subscribes to view changes from a member that
			// will not be crashed (the seed); the seed push after Subscribe
			// covers any view change installed before the subscription.
			seedCluster.Subscribe(func(vc core.ViewChange) {
				lb.UpdateFromEndpoints(vc.Members)
			})
			lb.SeedFromEndpoints(seedCluster.Members())
			crash = func() {
				for i := 0; i < failures; i++ {
					victim := addrs[backends-1-i]
					lb.MarkActuallyDead(victim)
					net.Crash(victim)
				}
			}
			cleanup = func() {
				for _, c := range clusters {
					c.Stop()
				}
			}
		case "memberlist":
			opts := swim.DefaultOptions().Scaled(cfg.TimeScale)
			opts.Seed = cfg.Seed
			seedNode, err := swim.Start(addrs[0], nil, opts, net)
			if err != nil {
				return DiscoveryResult{}, err
			}
			nodes := []*swim.Node{seedNode}
			for _, a := range addrs[1:] {
				n, err := swim.Start(a, []node.Addr{addrs[0]}, opts, net)
				if err != nil {
					return DiscoveryResult{}, err
				}
				nodes = append(nodes, n)
			}
			deadline := cfg.clock().Now().Add(60 * time.Second)
			for cfg.clock().Now().Before(deadline) {
				if seedNode.NumAlive() == backends {
					break
				}
				cfg.clock().Sleep(5 * time.Millisecond)
			}
			// The load balancer polls the seed's view, as Serf agents
			// refresh configuration from their local membership.
			stopPoll := make(chan struct{})
			go func() {
				ticker := cfg.clock().Ticker(harness.Scale(time.Second, cfg.TimeScale))
				defer ticker.Stop()
				for {
					select {
					case <-stopPoll:
						return
					case <-ticker.C():
						lb.UpdateBackends(seedNode.AliveMembers())
					}
				}
			}()
			crash = func() {
				for i := 0; i < failures; i++ {
					victim := addrs[backends-1-i]
					lb.MarkActuallyDead(victim)
					net.Crash(victim)
				}
			}
			cleanup = func() {
				close(stopPoll)
				for _, n := range nodes {
					n.Stop()
				}
			}
		default:
			return DiscoveryResult{}, fmt.Errorf("unknown provider %q", provider)
		}
		defer cleanup()

		go func() {
			cfg.clock().Sleep(duration / 3)
			crash()
		}()
		requests := lb.RunWorkload(400, duration)
		lat := make([]float64, len(requests))
		timeouts := 0
		for i, r := range requests {
			lat[i] = float64(r.Latency)
			if r.TimedOut {
				timeouts++
			}
		}
		return DiscoveryResult{
			Provider:   provider,
			Requests:   len(requests),
			Reloads:    lb.Reloads(),
			Timeouts:   timeouts,
			P50Latency: time.Duration(metrics.Percentile(lat, 50)),
			P99Latency: time.Duration(metrics.Percentile(lat, 99)),
			MaxLatency: time.Duration(metrics.Max(lat)),
		}, nil
	}

	cfg.printf("== Figure 13: service discovery, %d of %d backends fail ==\n", failures, backends)
	cfg.printf("%-12s %10s %8s %9s %10s %10s %10s\n", "provider", "requests", "reloads", "timeouts", "p50", "p99", "max")
	for _, provider := range []string{"memberlist", "rapid"} {
		r, err := runOne(provider)
		if err != nil {
			return results, fmt.Errorf("discovery workload %s: %w", provider, err)
		}
		results = append(results, r)
		cfg.printf("%-12s %10d %8d %9d %10s %10s %10s\n",
			r.Provider, r.Requests, r.Reloads, r.Timeouts, r.P50Latency, r.P99Latency, r.MaxLatency)
	}
	return results, nil
}
