package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestRunBootstrapConvergenceSmall exercises the paper-scale sweep machinery
// at laptop size: the sweep must converge, record a join latency for every
// member, and produce ordered percentiles.
func TestRunBootstrapConvergenceSmall(t *testing.T) {
	points, err := RunBootstrapConvergence(testConfig(), []int{20}, ConvergenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("expected 1 point, got %d", len(points))
	}
	p := points[0]
	if !p.Converged {
		t.Fatal("20-node bootstrap did not converge")
	}
	if p.JoinP50 <= 0 || p.JoinP50 > p.JoinP90 || p.JoinP90 > p.JoinP99 {
		t.Fatalf("join percentiles not ordered: p50=%v p90=%v p99=%v", p.JoinP50, p.JoinP90, p.JoinP99)
	}
	if p.Messages <= 0 {
		t.Fatal("no messages recorded")
	}
}

// TestBootstrapConvergence1000Smoke is the CI gate for the paper-scale
// simnet: a 1000-node Rapid fleet must bootstrap to a converged view inside
// one test binary (no sockets) within the bound below. It runs only in
// -short mode — CI invokes it as a dedicated smoke step, and gating it keeps
// the multi-minute fleet out of every plain `go test ./...` (where it would
// run a second time for no extra signal). It also skips under the race
// detector, whose ~10x instrumentation cost would turn a scale check into a
// timeout lottery.
func TestBootstrapConvergence1000Smoke(t *testing.T) {
	if raceEnabled {
		t.Skip("paper-scale smoke skipped under -race (covered at 100 nodes by the churn scenario)")
	}
	if !testing.Short() {
		t.Skip("paper-scale smoke runs in the dedicated -short lane: go test -short -run TestBootstrapConvergence1000Smoke ./internal/experiments/")
	}
	cfg := Config{TimeScale: 20, Seed: 1}
	start := time.Now()
	points, err := RunBootstrapConvergence(cfg, []int{1000}, ConvergenceOptions{
		Timeout: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if !p.Converged {
		t.Fatal("1000-node bootstrap did not converge")
	}
	// Control-plane health gates: a clean bootstrap must finish with
	// (essentially) zero overload shedding, and every member's adaptive
	// window must sit inside the configured floor/ceiling. Shedding on this
	// workload means the adaptive window stopped absorbing the storm — a
	// controller regression sheds five to six orders of magnitude more than
	// the tolerance here (a stuck-at-floor controller was observed at 10^5
	// sheds), while a healthy run sheds zero almost always and at most a
	// handful when the host scheduler starves a member mid-storm, so the
	// tiny allowance keeps the gate meaningful without coupling CI green to
	// machine load.
	if p.ShedBatches*1000 > p.Messages {
		t.Errorf("bootstrap shed %d batches of %d messages; the adaptive window should keep queues under the high-water mark",
			p.ShedBatches, p.Messages)
	}
	bounds := core.ScaledSettings(cfg.TimeScale)
	if p.MinBatchWindow < bounds.BatchingWindowMin || p.MaxBatchWindow > bounds.BatchingWindowMax {
		t.Errorf("adaptive window left its bounds: fleet [%v, %v] vs configured [%v, %v]",
			p.MinBatchWindow, p.MaxBatchWindow, bounds.BatchingWindowMin, bounds.BatchingWindowMax)
	}
	t.Logf("1000 nodes converged in %s wall (%.0f paper-s); join p50/p90/p99 = %.0f/%.0f/%.0f paper-s; %d msgs; shed=%d window=[%v,%v]",
		time.Since(start).Round(time.Second), cfg.scaledSeconds(p.ConvergenceTime),
		cfg.scaledSeconds(p.JoinP50), cfg.scaledSeconds(p.JoinP90), cfg.scaledSeconds(p.JoinP99),
		p.Messages, p.ShedBatches, p.MinBatchWindow, p.MaxBatchWindow)
}

// TestBootstrapConvergence200RaceSmoke is the race lane's counterpart to the
// paper-scale smoke. The 1000-node gate must skip under the race detector
// (its ~10x instrumentation turns a scale check into a timeout lottery), which
// previously left the full bootstrap path — expander joins, alert batching,
// the adaptive window controller — race-checked only at the 100-node churn
// scenario's intensity. A 200-node bootstrap is the same storm shape at a
// size the instrumented scheduler finishes comfortably inside the race lane's
// budget, so the single-writer engine gets race coverage on its heaviest
// workload too.
func TestBootstrapConvergence200RaceSmoke(t *testing.T) {
	if !raceEnabled {
		t.Skip("medium-N smoke exists for the race lane; the plain lane gates at 1000 nodes")
	}
	if !testing.Short() {
		t.Skip("race smoke runs in the -race -short lane")
	}
	cfg := Config{TimeScale: 20, Seed: 1}
	start := time.Now()
	points, err := RunBootstrapConvergence(cfg, []int{200}, ConvergenceOptions{
		Timeout: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if !p.Converged {
		t.Fatal("200-node bootstrap did not converge under the race detector")
	}
	// Same control-plane gates as the 1000-node smoke, with the same tiny
	// shedding allowance for instrumented-scheduler hiccups.
	if p.ShedBatches*1000 > p.Messages {
		t.Errorf("bootstrap shed %d batches of %d messages; the adaptive window should keep queues under the high-water mark",
			p.ShedBatches, p.Messages)
	}
	bounds := core.ScaledSettings(cfg.TimeScale)
	if p.MinBatchWindow < bounds.BatchingWindowMin || p.MaxBatchWindow > bounds.BatchingWindowMax {
		t.Errorf("adaptive window left its bounds: fleet [%v, %v] vs configured [%v, %v]",
			p.MinBatchWindow, p.MaxBatchWindow, bounds.BatchingWindowMin, bounds.BatchingWindowMax)
	}
	t.Logf("200 nodes converged under -race in %s wall (%.0f paper-s); %d msgs; shed=%d",
		time.Since(start).Round(time.Second), cfg.scaledSeconds(p.ConvergenceTime), p.Messages, p.ShedBatches)
}
