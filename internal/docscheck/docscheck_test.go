// Package docscheck keeps the documentation honest: it fails when README.md
// or anything under docs/ references a command-line flag that the cmd/
// binaries no longer define. The flag sets are recovered from the AST of each
// cmd/<name>/main.go (calls to flag.String, flag.Int, ...), so the check
// needs no build tags, no binary execution, and stays correct as flags move.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot locates the module root relative to this package directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// flagRegistrations are the flag package constructors whose first argument
// names a flag.
var flagRegistrations = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint": true, "Uint64": true,
	"Float64": true, "Bool": true, "Duration": true,
	"StringVar": true, "IntVar": true, "Int64Var": true, "UintVar": true,
	"Uint64Var": true, "Float64Var": true, "BoolVar": true, "DurationVar": true,
}

// cmdFlags parses cmd/<name>/main.go and returns the set of flag names it
// registers, plus the flag package's built-in help aliases.
func cmdFlags(t *testing.T, root, name string) map[string]bool {
	t.Helper()
	src := filepath.Join(root, "cmd", name, "main.go")
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", src, err)
	}
	flags := map[string]bool{"h": true, "help": true}
	nameArgIndex := func(fn string) int {
		if strings.HasSuffix(fn, "Var") {
			return 1 // flag.XxxVar(&v, "name", ...)
		}
		return 0 // flag.Xxx("name", ...)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !flagRegistrations[sel.Sel.Name] {
			return true
		}
		if ident, ok := sel.X.(*ast.Ident); !ok || ident.Name != "flag" {
			return true
		}
		idx := nameArgIndex(sel.Sel.Name)
		if len(call.Args) <= idx {
			return true
		}
		if lit, ok := call.Args[idx].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			flags[strings.Trim(lit.Value, `"`)] = true
		}
		return true
	})
	if len(flags) <= 2 {
		t.Fatalf("no flags recovered from %s: parser out of date?", src)
	}
	return flags
}

// flagToken matches "-flag" or "--flag" at a word start, including
// hyphenated names like -probe-interval (each hyphen must be followed by an
// alphanumeric, so a trailing dash stays out of the capture); hyphens inside
// ordinary words (rapid-bench, single-machine) do not start a match.
var flagToken = regexp.MustCompile(`(?:^|[\s` + "`" + `"'(])--?([a-zA-Z][a-zA-Z0-9]*(?:-[a-zA-Z0-9]+)*)\b`)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T, root string) []string {
	t.Helper()
	files := []string{filepath.Join(root, "README.md")}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		if os.IsNotExist(err) {
			return files
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join(root, "docs", e.Name()))
		}
	}
	return files
}

// TestDocsReferenceOnlyExistingFlags scans every documentation line that
// mentions a cmd/ binary and asserts each flag token on that line is still
// registered by that binary. A stale "-exp fig14" or a renamed "-joinconc"
// fails here instead of misleading a reader.
func TestDocsReferenceOnlyExistingFlags(t *testing.T) {
	root := repoRoot(t)
	binaries := map[string]map[string]bool{}
	cmds, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmds {
		if c.IsDir() {
			binaries[c.Name()] = cmdFlags(t, root, c.Name())
		}
	}
	if len(binaries) == 0 {
		t.Fatal("no cmd/ binaries found")
	}

	checkedLines := 0
	for _, path := range docFiles(t, root) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, path)
		for lineNo, line := range strings.Split(string(data), "\n") {
			// Union of flags of every binary this line mentions.
			var allowed map[string]bool
			for name, flags := range binaries {
				if strings.Contains(line, name) {
					if allowed == nil {
						allowed = map[string]bool{}
					}
					for f := range flags {
						allowed[f] = true
					}
				}
			}
			if allowed == nil {
				continue
			}
			// Flags of the go tool itself also appear on lines naming a cmd
			// binary: `go build -o bin/rapid-vet` and
			// `go vet -vettool=bin/rapid-vet` pass the binary as the go
			// tool's argument.
			allowed["o"] = true
			allowed["vettool"] = true
			checkedLines++
			for _, m := range flagToken.FindAllStringSubmatch(line, -1) {
				if !allowed[m[1]] {
					t.Errorf("%s:%d references flag -%s, which no cmd binary on that line defines: %q",
						rel, lineNo+1, m[1], strings.TrimSpace(line))
				}
			}
		}
	}
	if checkedLines == 0 {
		t.Fatal("no documentation lines mention any cmd binary; check the scanner")
	}
}
