package gossipfd

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/simnet"
)

func opts() Options         { return DefaultOptions().Scaled(50) }
func gaddr(i int) node.Addr { return node.Addr(fmt.Sprintf("gfd-%02d:1", i)) }

func peers(n int) []node.Addr {
	out := make([]node.Addr, n)
	for i := range out {
		out[i] = gaddr(i)
	}
	return out
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func startAll(t *testing.T, net *simnet.Network, n int) []*Detector {
	t.Helper()
	var out []*Detector
	for i := 0; i < n; i++ {
		d, err := Start(gaddr(i), peers(n), opts(), net)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func stopAll(ds []*Detector) {
	for _, d := range ds {
		d.Stop()
	}
}

func TestAllAliveInHealthyCluster(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	ds := startAll(t, net, 5)
	defer stopAll(ds)
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, d := range ds {
			if d.NumAlive() != 5 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("healthy cluster should see all peers alive")
	}
	// No spurious status transitions in a healthy cluster.
	time.Sleep(10 * opts().HeartbeatInterval)
	for _, d := range ds {
		if len(d.Changes()) != 0 {
			t.Fatalf("unexpected status changes in a healthy cluster: %v", d.Changes())
		}
	}
}

func TestCrashedPeerDetected(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 2})
	ds := startAll(t, net, 4)
	defer stopAll(ds)
	waitUntil(t, 10*time.Second, func() bool { return ds[0].NumAlive() == 4 })
	net.Crash(ds[3].Addr())
	if !waitUntil(t, 10*time.Second, func() bool {
		return !ds[0].Alive(ds[3].Addr()) && !ds[1].Alive(ds[3].Addr())
	}) {
		t.Fatal("crashed peer was never detected")
	}
}

func TestBlackholeBetweenTwoNodesCausesFlapping(t *testing.T) {
	// The Figure 12 scenario: all packets between two specific nodes are
	// dropped while both remain healthy. Each of them declares the other
	// dead; everyone else still sees both alive. There is no coordination,
	// so the two views conflict — and if the blackhole is intermittent the
	// status flaps.
	net := simnet.New(simnet.Options{Seed: 3})
	ds := startAll(t, net, 4)
	defer stopAll(ds)
	waitUntil(t, 10*time.Second, func() bool { return ds[0].NumAlive() == 4 })

	a, b := ds[0], ds[1]
	net.BlockPair(a.Addr(), b.Addr())
	if !waitUntil(t, 10*time.Second, func() bool {
		return !a.Alive(b.Addr()) && !b.Alive(a.Addr())
	}) {
		t.Fatal("blackholed pair never suspected each other")
	}
	// A third party still believes both are alive: inconsistent views.
	if !ds[2].Alive(a.Addr()) || !ds[2].Alive(b.Addr()) {
		t.Fatal("an unaffected node should still see both endpoints of the blackhole as alive")
	}
	// Healing the blackhole flaps them back to alive.
	net.UnblockPair(a.Addr(), b.Addr())
	if !waitUntil(t, 10*time.Second, func() bool {
		return a.Alive(b.Addr()) && b.Alive(a.Addr())
	}) {
		t.Fatal("peers never flapped back after the blackhole healed")
	}
	if len(a.Changes()) < 2 {
		t.Fatalf("expected at least a down+up flap, got %v", a.Changes())
	}
}

func TestOnChangeCallback(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 4})
	ds := startAll(t, net, 3)
	defer stopAll(ds)
	waitUntil(t, 10*time.Second, func() bool { return ds[0].NumAlive() == 3 })
	events := make(chan StatusChange, 16)
	ds[0].OnChange(func(c StatusChange) { events <- c })
	net.Crash(ds[2].Addr())
	select {
	case c := <-events:
		if c.Peer != ds[2].Addr() || c.Alive {
			t.Fatalf("unexpected change event: %+v", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OnChange callback never fired")
	}
}
