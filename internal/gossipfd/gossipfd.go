// Package gossipfd implements the "in-house gossip-style failure detector
// that uses all-to-all monitoring" which the paper's distributed transactional
// data platform used before Rapid (§7, Figure 12). Every node heartbeats to
// every other node; a peer is declared dead as soon as one node misses
// heartbeats from it for a timeout, and resurrected as soon as a heartbeat
// gets through again. There is no coordination between the nodes' views,
// which is precisely why it flaps under partial connectivity problems such as
// the serialization-server blackhole injected in the Figure 12 experiment.
package gossipfd

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

const messageKind = "gossipfd"

type heartbeat struct {
	From node.Addr
	Seq  uint64
}

func encode(h *heartbeat) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(h)
	return buf.Bytes()
}

func decode(data []byte) (*heartbeat, bool) {
	var h heartbeat
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&h); err != nil {
		return nil, false
	}
	return &h, true
}

// Options tune the detector.
type Options struct {
	// HeartbeatInterval is how often each node heartbeats all peers.
	HeartbeatInterval time.Duration
	// FailureTimeout is how long a peer may be silent before being declared
	// dead by this node.
	FailureTimeout time.Duration
	// Clock supplies time.
	Clock simclock.Clock
}

// DefaultOptions uses 1-second heartbeats and a 3-second timeout.
func DefaultOptions() Options {
	return Options{HeartbeatInterval: time.Second, FailureTimeout: 3 * time.Second, Clock: simclock.NewReal()}
}

// Scaled divides every duration by factor.
func (o Options) Scaled(factor float64) Options {
	if factor <= 0 {
		return o
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) / factor)
		if s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	o.HeartbeatInterval = scale(o.HeartbeatInterval)
	o.FailureTimeout = scale(o.FailureTimeout)
	return o
}

// StatusChange reports a peer transitioning between alive and dead in this
// node's local view.
type StatusChange struct {
	Peer  node.Addr
	Alive bool
	At    time.Time
}

// Detector is one node's all-to-all failure detector.
type Detector struct {
	opts   Options
	addr   node.Addr
	peers  []node.Addr
	net    transport.Network
	client transport.Client
	clock  simclock.Clock

	mu        sync.Mutex
	lastHeard map[node.Addr]time.Time
	alive     map[node.Addr]bool
	changes   []StatusChange
	onChange  []func(StatusChange)
	seq       uint64
	stopped   bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// Start creates a detector for a node with a static peer set (the data
// platform's server fleet) and begins heartbeating.
func Start(addr node.Addr, peers []node.Addr, opts Options, net transport.Network) (*Detector, error) {
	if opts.Clock == nil {
		opts.Clock = simclock.NewReal()
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	if opts.FailureTimeout <= 0 {
		opts.FailureTimeout = 3 * opts.HeartbeatInterval
	}
	d := &Detector{
		opts:      opts,
		addr:      addr,
		net:       net,
		client:    net.Client(addr),
		clock:     opts.Clock,
		lastHeard: make(map[node.Addr]time.Time),
		alive:     make(map[node.Addr]bool),
		stopCh:    make(chan struct{}),
	}
	now := d.clock.Now()
	for _, p := range peers {
		if p == addr {
			continue
		}
		d.peers = append(d.peers, p)
		d.lastHeard[p] = now
		d.alive[p] = true
	}
	if err := net.Register(addr, d); err != nil {
		return nil, err
	}
	d.wg.Add(2)
	go d.heartbeatLoop()
	go d.checkLoop()
	return d, nil
}

// Stop halts the detector.
func (d *Detector) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()
	close(d.stopCh)
	d.wg.Wait()
	d.net.Deregister(d.addr)
}

// Addr returns this node's address.
func (d *Detector) Addr() node.Addr { return d.addr }

// Alive reports whether this node currently believes the peer is alive.
func (d *Detector) Alive(peer node.Addr) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alive[peer]
}

// NumAlive returns the number of peers believed alive, plus this node.
func (d *Detector) NumAlive() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	count := 1
	for _, ok := range d.alive {
		if ok {
			count++
		}
	}
	return count
}

// Changes returns the history of status transitions observed by this node.
// Flapping shows up as a long list of alternating transitions.
func (d *Detector) Changes() []StatusChange {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]StatusChange, len(d.changes))
	copy(out, d.changes)
	return out
}

// OnChange registers a callback invoked on every local status transition.
func (d *Detector) OnChange(cb func(StatusChange)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onChange = append(d.onChange, cb)
}

func (d *Detector) heartbeatLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopCh:
			return
		case <-d.clock.After(d.opts.HeartbeatInterval):
		}
		d.mu.Lock()
		d.seq++
		seq := d.seq
		peers := d.peers
		d.mu.Unlock()
		req := &remoting.Request{Custom: &remoting.CustomMessage{
			Kind: messageKind,
			Data: encode(&heartbeat{From: d.addr, Seq: seq}),
		}}
		for _, p := range peers {
			d.client.SendBestEffort(p, req)
		}
	}
}

func (d *Detector) checkLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopCh:
			return
		case <-d.clock.After(d.opts.HeartbeatInterval):
		}
		now := d.clock.Now()
		var fired []StatusChange
		d.mu.Lock()
		for _, p := range d.peers {
			silent := now.Sub(d.lastHeard[p]) >= d.opts.FailureTimeout
			if silent && d.alive[p] {
				d.alive[p] = false
				change := StatusChange{Peer: p, Alive: false, At: now}
				d.changes = append(d.changes, change)
				fired = append(fired, change)
			}
		}
		callbacks := make([]func(StatusChange), len(d.onChange))
		copy(callbacks, d.onChange)
		d.mu.Unlock()
		for _, change := range fired {
			for _, cb := range callbacks {
				cb(change)
			}
		}
	}
}

// HandleRequest implements transport.Handler: receiving a heartbeat marks the
// sender alive again (possibly flapping it back).
func (d *Detector) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	if req == nil || req.Custom == nil || req.Custom.Kind != messageKind {
		return remoting.AckResponse(), nil
	}
	h, ok := decode(req.Custom.Data)
	if !ok {
		return remoting.AckResponse(), nil
	}
	now := d.clock.Now()
	var fired *StatusChange
	d.mu.Lock()
	if _, known := d.lastHeard[h.From]; known {
		d.lastHeard[h.From] = now
		if !d.alive[h.From] {
			d.alive[h.From] = true
			change := StatusChange{Peer: h.From, Alive: true, At: now}
			d.changes = append(d.changes, change)
			fired = &change
		}
	}
	callbacks := make([]func(StatusChange), len(d.onChange))
	copy(callbacks, d.onChange)
	d.mu.Unlock()
	if fired != nil {
		for _, cb := range callbacks {
			cb(*fired)
		}
	}
	return remoting.AckResponse(), nil
}

var _ transport.Handler = (*Detector)(nil)
