//go:build !race

package procfleet

const raceEnabled = false
