// Package procfleet boots real-process rapid-node fleets on 127.0.0.1: it
// builds or is handed a rapid-node binary, spawns N OS processes wired
// together over the TCP transport, polls each agent's --status-addr HTTP
// endpoint until the whole fleet agrees on one configuration, and can kill
// members and join replacements to exercise failure recovery end to end.
//
// This is the real-network counterpart of package harness (which runs whole
// fleets inside one process on simnet): every message here crosses an actual
// socket, so the fleet doubles as the proof that tcpnet's pooled, pipelined
// connections behave — AggregateStats sums every process' dial and request
// counters, and a healthy fleet shows dials orders of magnitude below
// requests. cmd/rapid-fleet is the CLI veneer; the loopback-fleet CI smoke
// drives a bounded fleet through bootstrap, kill and rejoin.
package procfleet

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/tcpnet"
)

// Options configure a loopback fleet.
type Options struct {
	// N is the number of rapid-node processes. Required.
	N int
	// Bin is the path to a built rapid-node binary. Required; use
	// BuildNodeBinary to produce one.
	Bin string
	// LogDir receives one node-<i>.log per process (stdout+stderr).
	// Defaults to a fresh temp dir.
	LogDir string
	// ProbeInterval is passed through to rapid-node -probe-interval.
	// Defaults to 1s.
	ProbeInterval time.Duration
	// IdleTimeout is passed through to rapid-node -idle-timeout (0 keeps the
	// transport default).
	IdleTimeout time.Duration
	// Seeds is how many seed addresses joiners are given. Defaults to 3.
	Seeds int
	// Stagger is the delay between process launches during the join storm.
	// Defaults to 10ms.
	Stagger time.Duration
	// StartTimeout bounds waiting for the bootstrap node to come up.
	// Defaults to 30s.
	StartTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) validate() error {
	if o.N <= 0 {
		return fmt.Errorf("procfleet: N must be positive, got %d", o.N)
	}
	if o.Bin == "" {
		return fmt.Errorf("procfleet: Bin is required (see BuildNodeBinary)")
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if o.Stagger == 0 {
		o.Stagger = 10 * time.Millisecond
	}
	if o.StartTimeout == 0 {
		o.StartTimeout = 30 * time.Second
	}
	if o.LogDir == "" {
		dir, err := os.MkdirTemp("", "rapid-fleet-*")
		if err != nil {
			return err
		}
		o.LogDir = dir
	}
	return nil
}

// NodeStatus mirrors the JSON served by rapid-node --status-addr.
type NodeStatus struct {
	Addr            string       `json:"addr"`
	State           string       `json:"state"`
	ConfigurationID string       `json:"configuration_id"`
	Size            int          `json:"size"`
	Transport       tcpnet.Stats `json:"transport"`
}

// Proc is one spawned rapid-node process.
type Proc struct {
	Index      int
	Addr       string // membership listen address
	StatusAddr string // HTTP status address
	cmd        *exec.Cmd
	logFile    *os.File
	exited     chan struct{} // closed once the process has been reaped
	alive      bool
}

// Fleet is a set of rapid-node processes on loopback.
type Fleet struct {
	opts   Options
	client *http.Client

	mu    sync.Mutex
	procs []*Proc
	next  int // next node index (for log names after rejoins)
}

// BuildNodeBinary compiles cmd/rapid-node into dir and returns the binary
// path. It locates the module root via `go env GOMOD`, so it works from any
// test's working directory.
func BuildNodeBinary(dir string) (string, error) {
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	if root == "." || root == "/" {
		return "", fmt.Errorf("cannot locate module root from GOMOD %q", gomod)
	}
	bin := filepath.Join(dir, "rapid-node")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rapid-node")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building rapid-node: %w\n%s", err, out)
	}
	return bin, nil
}

// freePorts reserves n distinct loopback ports by binding them all before
// releasing any, so no port is handed out twice.
func freePorts(n int) ([]int, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// Launch starts the fleet: node 0 bootstraps, the rest join through the
// first Options.Seeds members in a staggered storm. It returns as soon as
// every process is spawned; call WaitForAgreement to block until the fleet
// converges.
func Launch(opts Options) (*Fleet, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		opts:   opts,
		client: &http.Client{Timeout: 2 * time.Second},
	}

	ports, err := freePorts(2 * opts.N)
	if err != nil {
		return nil, err
	}
	addrs := make([]string, opts.N)
	statusAddrs := make([]string, opts.N)
	for i := 0; i < opts.N; i++ {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[2*i])
		statusAddrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[2*i+1])
	}

	// Bootstrap node first; joiners need a live seed.
	if _, err := f.spawn(addrs[0], statusAddrs[0], nil); err != nil {
		f.Stop()
		return nil, err
	}
	if err := f.waitRunning(f.procs[0], opts.StartTimeout); err != nil {
		f.Stop()
		return nil, fmt.Errorf("bootstrap node never came up: %w", err)
	}
	f.logf("bootstrap node %s up, launching %d joiners", addrs[0], opts.N-1)

	seeds := addrs[:min(opts.Seeds, opts.N)]
	for i := 1; i < opts.N; i++ {
		if _, err := f.spawn(addrs[i], statusAddrs[i], seeds); err != nil {
			f.Stop()
			return nil, err
		}
		time.Sleep(opts.Stagger)
	}
	return f, nil
}

// spawn starts one rapid-node process. seeds == nil bootstraps.
func (f *Fleet) spawn(addr, statusAddr string, seeds []string) (*Proc, error) {
	f.mu.Lock()
	idx := f.next
	f.next++
	f.mu.Unlock()

	args := []string{
		"-listen", addr,
		"-status-addr", statusAddr,
		"-probe-interval", f.opts.ProbeInterval.String(),
	}
	if f.opts.IdleTimeout > 0 {
		args = append(args, "-idle-timeout", f.opts.IdleTimeout.String())
	}
	if len(seeds) > 0 {
		args = append(args, "-join", strings.Join(seeds, ","))
	}
	logFile, err := os.Create(filepath.Join(f.opts.LogDir, fmt.Sprintf("node-%d.log", idx)))
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(f.opts.Bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, fmt.Errorf("spawning node %d: %w", idx, err)
	}
	p := &Proc{Index: idx, Addr: addr, StatusAddr: statusAddr, cmd: cmd, logFile: logFile,
		exited: make(chan struct{}), alive: true}
	go func() {
		cmd.Wait()
		close(p.exited)
	}()
	f.mu.Lock()
	f.procs = append(f.procs, p)
	f.mu.Unlock()
	return p, nil
}

// Status fetches one process' status document.
func (f *Fleet) Status(p *Proc) (NodeStatus, error) {
	var st NodeStatus
	resp, err := f.client.Get("http://" + p.StatusAddr + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %s: HTTP %d", p.StatusAddr, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (f *Fleet) waitRunning(p *Proc, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		st, err := f.Status(p)
		if err == nil && st.State == "running" {
			return nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("node %d not running within %v (last error: %v)", p.Index, timeout, lastErr)
}

// Alive returns the currently live processes.
func (f *Fleet) Alive() []*Proc {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Proc, 0, len(f.procs))
	for _, p := range f.procs {
		if p.alive {
			out = append(out, p)
		}
	}
	return out
}

// WaitForAgreement blocks until every live process reports state "running",
// size expect, and the same configuration ID. It returns the agreed
// configuration ID and how long agreement took.
func (f *Fleet) WaitForAgreement(expect int, timeout time.Duration) (string, time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	var lastState string
	for time.Now().Before(deadline) {
		configID, ok := f.agreement(expect, &lastState)
		if ok {
			return configID, time.Since(start), nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", time.Since(start), fmt.Errorf("no agreement on size %d within %v (last: %s)", expect, timeout, lastState)
}

func (f *Fleet) agreement(expect int, lastState *string) (string, bool) {
	procs := f.Alive()
	if len(procs) != expect {
		*lastState = fmt.Sprintf("%d live processes, want %d", len(procs), expect)
		return "", false
	}
	configID := ""
	for _, p := range procs {
		st, err := f.Status(p)
		if err != nil {
			*lastState = fmt.Sprintf("node %d unreachable: %v", p.Index, err)
			return "", false
		}
		if st.State != "running" {
			*lastState = fmt.Sprintf("node %d state %q", p.Index, st.State)
			return "", false
		}
		if st.Size != expect {
			*lastState = fmt.Sprintf("node %d reports size %d, want %d", p.Index, st.Size, expect)
			return "", false
		}
		if configID == "" {
			configID = st.ConfigurationID
		} else if st.ConfigurationID != configID {
			*lastState = fmt.Sprintf("split configurations: %s vs %s", configID, st.ConfigurationID)
			return "", false
		}
	}
	return configID, true
}

// Kill SIGKILLs one process (crash, not graceful leave) so the survivors
// must detect the failure through their edge monitors.
func (f *Fleet) Kill(p *Proc) error {
	f.mu.Lock()
	p.alive = false
	f.mu.Unlock()
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	<-p.exited
	f.logf("killed node %d (%s)", p.Index, p.Addr)
	return nil
}

// AddNode joins one fresh process through the surviving seeds and returns
// it. The caller waits for agreement separately.
func (f *Fleet) AddNode() (*Proc, error) {
	alive := f.Alive()
	if len(alive) == 0 {
		return nil, fmt.Errorf("procfleet: no live seeds to join through")
	}
	seeds := make([]string, 0, f.opts.Seeds)
	for _, p := range alive {
		seeds = append(seeds, p.Addr)
		if len(seeds) == f.opts.Seeds {
			break
		}
	}
	ports, err := freePorts(2)
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	statusAddr := fmt.Sprintf("127.0.0.1:%d", ports[1])
	p, err := f.spawn(addr, statusAddr, seeds)
	if err != nil {
		return nil, err
	}
	f.logf("rejoin node %d (%s) via %v", p.Index, addr, seeds)
	return p, nil
}

// FleetStats aggregates every live process' transport counters. DialRatio is
// the headline pooling number: requests per dial.
type FleetStats struct {
	Nodes     int
	Transport tcpnet.Stats
}

// DialRatio returns requests per dial (0 when no dials happened).
func (s FleetStats) DialRatio() float64 {
	if s.Transport.Dials == 0 {
		return 0
	}
	return float64(s.Transport.Requests) / float64(s.Transport.Dials)
}

// AggregateStats sums transport counters across live processes.
func (f *Fleet) AggregateStats() (FleetStats, error) {
	out := FleetStats{}
	for _, p := range f.Alive() {
		st, err := f.Status(p)
		if err != nil {
			return out, fmt.Errorf("node %d: %w", p.Index, err)
		}
		out.Nodes++
		t := &out.Transport
		t.Dials += st.Transport.Dials
		t.DialErrors += st.Transport.DialErrors
		t.Requests += st.Transport.Requests
		t.StaleRetries += st.Transport.StaleRetries
		t.OpenConns += st.Transport.OpenConns
		t.BestEffortQueued += st.Transport.BestEffortQueued
		t.BestEffortDropped += st.Transport.BestEffortDropped
		t.AcceptedConns += st.Transport.AcceptedConns
		t.AcceptErrors += st.Transport.AcceptErrors
	}
	return out, nil
}

// Stop terminates every process (SIGTERM, then SIGKILL after a grace
// period) and closes the log files.
func (f *Fleet) Stop() {
	f.mu.Lock()
	procs := append([]*Proc(nil), f.procs...)
	f.mu.Unlock()

	for _, p := range procs {
		if p.alive {
			p.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	grace := time.After(10 * time.Second)
	for _, p := range procs {
		select {
		case <-p.exited:
		case <-grace:
			p.cmd.Process.Kill()
			<-p.exited
		}
	}
	for _, p := range procs {
		p.logFile.Close()
	}
}

// LogDir returns where per-node logs were written.
func (f *Fleet) LogDir() string { return f.opts.LogDir }

func (f *Fleet) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}
