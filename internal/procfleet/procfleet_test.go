package procfleet

import (
	"testing"
	"time"
)

// TestLoopbackFleetSmoke is the CI loopback-fleet smoke: a bounded fleet of
// real rapid-node processes bootstraps on 127.0.0.1, agrees on one
// configuration, survives a SIGKILL and a rejoin, and demonstrates that the
// pooled transport collapses connections (requests at least 10x dials).
// Like the paper-scale simnet smokes it runs only in -short mode, so its
// dedicated CI step is its single execution per job.
func TestLoopbackFleetSmoke(t *testing.T) {
	if !testing.Short() {
		t.Skip("loopback fleet smoke runs in -short mode (dedicated CI step)")
	}
	if raceEnabled {
		t.Skip("fleet processes are built without -race; the race lane covers tcpnet directly")
	}

	bin, err := BuildNodeBinary(t.TempDir())
	if err != nil {
		t.Fatalf("BuildNodeBinary: %v", err)
	}
	const n = 10
	fleet, err := Launch(Options{
		N:             n,
		Bin:           bin,
		LogDir:        t.TempDir(),
		ProbeInterval: 300 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer fleet.Stop()

	configID, took, err := fleet.WaitForAgreement(n, 60*time.Second)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	t.Logf("bootstrap: %d processes agreed on configuration %s in %v", n, configID, took)

	// Crash a non-seed member; survivors must converge on n-1.
	procs := fleet.Alive()
	victim := procs[len(procs)-1]
	if err := fleet.Kill(victim); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	downID, took, err := fleet.WaitForAgreement(n-1, 60*time.Second)
	if err != nil {
		t.Fatalf("kill detection: %v", err)
	}
	if downID == configID {
		t.Fatal("configuration ID did not change after a member was removed")
	}
	t.Logf("kill: %d survivors agreed on configuration %s in %v", n-1, downID, took)

	// Rejoin a fresh process; the fleet must return to full strength.
	if _, err := fleet.AddNode(); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	upID, took, err := fleet.WaitForAgreement(n, 60*time.Second)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	t.Logf("rejoin: back to %d processes on configuration %s in %v", n, upID, took)

	stats, err := fleet.AggregateStats()
	if err != nil {
		t.Fatalf("AggregateStats: %v", err)
	}
	tr := stats.Transport
	t.Logf("transport: %d requests over %d dials (ratio %.1fx), %d open conns, %d dial errors, %d best-effort dropped, %d accept errors",
		tr.Requests, tr.Dials, stats.DialRatio(), tr.OpenConns, tr.DialErrors, tr.BestEffortDropped, tr.AcceptErrors)
	if tr.Dials == 0 {
		t.Fatal("no dials recorded: status plumbing is broken")
	}
	if tr.Requests < 10*tr.Dials {
		t.Fatalf("pooling not effective: %d requests over %d dials (< 10x reuse)", tr.Requests, tr.Dials)
	}
}

func TestLaunchValidation(t *testing.T) {
	if _, err := Launch(Options{N: 0, Bin: "x"}); err == nil {
		t.Fatal("Launch accepted N=0")
	}
	if _, err := Launch(Options{N: 3}); err == nil {
		t.Fatal("Launch accepted empty Bin")
	}
}
