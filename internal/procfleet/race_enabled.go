//go:build race

package procfleet

// raceEnabled reports whether the race detector is compiled in. The loopback
// fleet smoke spawns real rapid-node processes (built without -race) and
// measures wall-clock convergence; the instrumented lane skips it — the
// tcpnet package tests cover the transport's concurrency under -race.
const raceEnabled = true
