package graph

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/node"
	"repro/internal/view"
)

func buildView(k, n int) *view.View {
	eps := make([]node.Endpoint, n)
	for i := range eps {
		eps[i] = node.Endpoint{
			Addr: node.Addr(fmt.Sprintf("10.0.%d.%d:2000", i/250, i%250)),
			ID:   node.ID{High: uint64(i + 1), Low: uint64(i * 7)},
		}
	}
	return view.NewWithMembers(k, eps)
}

func TestFromViewIsRegular(t *testing.T) {
	const k, n = 10, 100
	v := buildView(k, n)
	g, members, err := FromView(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != n || g.NumVertices() != n {
		t.Fatalf("graph has %d vertices, want %d", g.NumVertices(), n)
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) != 2*k {
			t.Fatalf("vertex %d has degree %d, want %d", u, g.Degree(u), 2*k)
		}
	}
}

func TestCompleteGraphSecondEigenvalue(t *testing.T) {
	// K_n has eigenvalues n-1 (once) and -1 (n-1 times), so |λ2| = 1.
	const n = 20
	g := NewMultigraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	lambda := g.SecondEigenvalue(500, 1)
	if math.Abs(lambda-1) > 0.05 {
		t.Fatalf("complete graph λ2 estimate = %v, want ≈ 1", lambda)
	}
}

func TestCycleGraphSecondEigenvalue(t *testing.T) {
	// The cycle C_n is a poor expander: λ2 = 2cos(2π/n), close to d=2.
	const n = 50
	g := NewMultigraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	want := 2 * math.Cos(2*math.Pi/float64(n))
	lambda := g.SecondEigenvalue(2000, 1)
	if math.Abs(lambda-want) > 0.05 {
		t.Fatalf("cycle λ2 estimate = %v, want ≈ %v", lambda, want)
	}
}

func TestKRingTopologyIsAnExpander(t *testing.T) {
	// The paper observes λ/d < 0.45 consistently for K=10. Allow slack for
	// the smaller cluster sizes used in tests.
	v := buildView(10, 200)
	rep, err := Analyze(v, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degree != 20 {
		t.Fatalf("degree = %d, want 20", rep.Degree)
	}
	if rep.NormalizedL2 >= 0.55 {
		t.Fatalf("λ/d = %v, expected an expander with λ/d well below 1 (paper: < 0.45)", rep.NormalizedL2)
	}
	// With L=3 and K=10 the detectable density must comfortably exceed 0.25.
	if beta := rep.DetectableBetaL(3); beta < 0.2 {
		t.Fatalf("detectable β = %v, want ≥ 0.2 per §8", beta)
	}
}

func TestSmallGraphEigenvalueIsZero(t *testing.T) {
	g := NewMultigraph(1)
	if got := g.SecondEigenvalue(10, 1); got != 0 {
		t.Fatalf("single-vertex graph λ2 = %v, want 0", got)
	}
}

func TestEdgesWithin(t *testing.T) {
	g := NewMultigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(0, 2)
	if got := g.EdgesWithin(map[int]bool{0: true, 1: true, 2: true}); got != 3 {
		t.Fatalf("EdgesWithin({0,1,2}) = %d, want 3", got)
	}
	if got := g.EdgesWithin(map[int]bool{0: true}); got != 0 {
		t.Fatalf("EdgesWithin({0}) = %d, want 0", got)
	}
}

func TestEdgeExpansionOfFaultySets(t *testing.T) {
	// Lemma 1/Corollary 2 consequence: for a small faulty set F, most of its
	// monitoring edges leave F, so healthy nodes observe the failures. Verify
	// that the number of edges inside a random 10% subset is far below the
	// total degree of the subset.
	const k, n = 10, 200
	v := buildView(k, n)
	g, _, err := FromView(v)
	if err != nil {
		t.Fatal(err)
	}
	f := make(map[int]bool)
	for i := 0; i < n/10; i++ {
		f[i*10] = true
	}
	inside := g.EdgesWithin(f)
	totalDegree := 0
	for u := range f {
		totalDegree += g.Degree(u)
	}
	// Inside edges consume 2*inside degree endpoints; expect ≲ β ≈ 10% of
	// endpoints to stay inside, use 25% as a generous bound.
	if 2*inside > totalDegree/4 {
		t.Fatalf("faulty set keeps %d of %d edge endpoints internal; topology is not expanding", 2*inside, totalDegree)
	}
}

func TestDetectionConditionHolds(t *testing.T) {
	// The paper's numbers: K=10, L=3, λ/d=0.45 ⇒ β < 0.25 is detectable.
	if !DetectionConditionHolds(0.24, 3, 10, 0.45) {
		t.Error("β=0.24 should satisfy the detection condition")
	}
	if DetectionConditionHolds(0.26, 3, 10, 0.45) {
		t.Error("β=0.26 should not satisfy the detection condition")
	}
	if DetectionConditionHolds(0.1, 9, 10, 0.45) {
		t.Error("L=9 of K=10 leaves no detection margin")
	}
}

func TestAnalyzeOnTinyView(t *testing.T) {
	v := buildView(3, 2)
	rep, err := Analyze(v, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 2 {
		t.Fatalf("N = %d, want 2", rep.N)
	}
}
