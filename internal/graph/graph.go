// Package graph analyses the expander properties of the K-ring monitoring
// topology, following §8 of the Rapid paper. The monitoring relationships
// form a d = 2K regular multigraph G over the membership: (u, v) is an edge
// whenever u monitors v or v monitors u. The cut-detection guarantees rely on
// G being an expander, quantified by the normalized second eigenvalue λ/d.
// The paper reports λ/d < 0.45 for K = 10, which makes the detection
// condition β < 1 − L/K − λ/d hold for L = 3 and β = 0.25.
package graph

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/node"
	"repro/internal/view"
)

// Multigraph is an undirected multigraph stored as an adjacency list with
// multiplicities. Vertices are indexed 0..N-1.
type Multigraph struct {
	n   int
	adj [][]int // adj[u] lists each neighbour once per parallel edge
}

// NewMultigraph creates an empty multigraph with n vertices.
func NewMultigraph(n int) *Multigraph {
	return &Multigraph{n: n, adj: make([][]int, n)}
}

// AddEdge adds an undirected edge between u and v (parallel edges allowed).
func (g *Multigraph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// NumVertices returns the number of vertices.
func (g *Multigraph) NumVertices() int { return g.n }

// Degree returns the degree of vertex u counting multiplicities.
func (g *Multigraph) Degree(u int) int { return len(g.adj[u]) }

// EdgesWithin counts the edges of the subgraph induced by the vertex set S
// (each undirected edge counted once), as used in Lemma 1 of §8.
func (g *Multigraph) EdgesWithin(set map[int]bool) int {
	count := 0
	for u := range set {
		for _, v := range g.adj[u] {
			if set[v] {
				count++
			}
		}
	}
	return count / 2
}

// FromView builds the monitoring multigraph of a membership view: one edge
// per (observer, subject) relation across all K rings, so the graph is
// 2K-regular. Each ring is walked once — consecutive ring entries are exactly
// the (observer, subject) pairs — instead of querying SubjectsOf per member.
func FromView(v *view.View) (*Multigraph, []node.Addr, error) {
	members := v.MemberAddrs()
	index := make(map[node.Addr]int, len(members))
	for i, a := range members {
		index[a] = i
	}
	g := NewMultigraph(len(members))
	if len(members) <= 1 {
		return g, members, nil
	}
	for r := 0; r < v.K(); r++ {
		ring, err := v.Ring(r)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: %w", err)
		}
		for i := range ring {
			succ := ring[(i+1)%len(ring)]
			g.AddEdge(index[ring[i].Addr], index[succ.Addr])
		}
	}
	return g, members, nil
}

// SecondEigenvalue estimates the second-largest eigenvalue (in absolute
// value) of the adjacency matrix using power iteration on the subspace
// orthogonal to the all-ones vector. For a d-regular graph the top
// eigenvector is uniform with eigenvalue d, so deflating it leaves λ2.
func (g *Multigraph) SecondEigenvalue(iterations int, seed int64) float64 {
	n := g.n
	if n < 2 {
		return 0
	}
	if iterations <= 0 {
		iterations = 200
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	var lambda float64
	for it := 0; it < iterations; it++ {
		removeMean(x)
		normalize(x)
		// y = A x
		for i := range y {
			y[i] = 0
		}
		for u := 0; u < n; u++ {
			xu := x[u]
			for _, v := range g.adj[u] {
				y[v] += xu
			}
		}
		removeMean(y)
		lambda = norm(y)
		x, y = y, x
	}
	return lambda
}

// removeMean projects out the all-ones direction.
func removeMean(x []float64) {
	var sum float64
	for _, v := range x {
		sum += v
	}
	mean := sum / float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// ExpansionReport summarizes the spectral analysis of a monitoring topology.
type ExpansionReport struct {
	N               int
	K               int
	Degree          int
	Lambda2         float64
	NormalizedL2    float64 // λ2 / d
	RamanujanBound  float64 // 2*sqrt(d-1)/d, the best possible for d-regular
	DetectableBetaL func(l int) float64
}

// Analyze builds the monitoring graph of a view and reports its expansion.
func Analyze(v *view.View, iterations int, seed int64) (ExpansionReport, error) {
	g, _, err := FromView(v)
	if err != nil {
		return ExpansionReport{}, err
	}
	d := 2 * v.K()
	lambda := g.SecondEigenvalue(iterations, seed)
	rep := ExpansionReport{
		N:              v.Size(),
		K:              v.K(),
		Degree:         d,
		Lambda2:        lambda,
		NormalizedL2:   lambda / float64(d),
		RamanujanBound: 2 * math.Sqrt(float64(d-1)) / float64(d),
	}
	norm := rep.NormalizedL2
	k := v.K()
	rep.DetectableBetaL = func(l int) float64 {
		// Equation (2) of §8: failures of density β are detected as long as
		// β < 1 − L/K − λ/d.
		return 1 - float64(l)/float64(k) - norm
	}
	return rep, nil
}

// DetectionConditionHolds checks Equation (2): whether a faulty set of
// density beta is detectable given L-of-K monitoring and expansion λ/d.
func DetectionConditionHolds(beta float64, l, k int, normalizedLambda float64) bool {
	return beta < 1-float64(l)/float64(k)-normalizedLambda
}
