package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simnet"
	"repro/internal/view"
)

// contextWithTimeout returns a context cancelled when the test ends.
func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// preJoinRequest builds a phase-1 join request for tests.
func preJoinRequest(joiner node.Addr, id node.ID) *remoting.Request {
	return &remoting.Request{PreJoin: &remoting.PreJoinRequest{Sender: joiner, JoinerID: id}}
}

// testSettings returns compressed-time settings so multi-node integration
// tests finish quickly while exercising the same code paths as production.
func testSettings() Settings {
	return ScaledSettings(50)
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func addr(i int) node.Addr { return node.Addr(fmt.Sprintf("10.0.0.%d:7000", i)) }

// startCluster creates a seed plus n-1 joiners sequentially and waits for
// every handle to converge to size n.
func startCluster(t *testing.T, net *simnet.Network, n int, settings Settings) []*Cluster {
	t.Helper()
	node.SeedIDGenerator(time.Now().UnixNano())
	seed, err := StartCluster(addr(0), settings, net)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	clusters := []*Cluster{seed}
	for i := 1; i < n; i++ {
		c, err := JoinCluster(addr(i), []node.Addr{addr(0)}, settings, net)
		if err != nil {
			t.Fatalf("JoinCluster(%d): %v", i, err)
		}
		clusters = append(clusters, c)
	}
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, c := range clusters {
			if c.Size() != n {
				return false
			}
		}
		return true
	}) {
		sizes := make([]int, len(clusters))
		for i, c := range clusters {
			sizes[i] = c.Size()
		}
		t.Fatalf("cluster did not converge to %d members: sizes=%v", n, sizes)
	}
	return clusters
}

func stopAll(clusters []*Cluster) {
	var wg sync.WaitGroup
	for _, c := range clusters {
		wg.Add(1)
		go func(c *Cluster) {
			defer wg.Done()
			c.Stop()
		}(c)
	}
	wg.Wait()
}

func TestStartClusterSingleNode(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	c, err := StartCluster("seed:1", testSettings(), net)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Stop()
	if c.Size() != 1 {
		t.Fatalf("Size = %d, want 1", c.Size())
	}
	if !c.IsMember() {
		t.Fatal("the bootstrap node should be a member of its own view")
	}
	if c.ConfigurationID() == 0 {
		t.Fatal("configuration ID should be non-zero")
	}
	if c.Members()[0].Addr != "seed:1" {
		t.Fatalf("unexpected members: %v", c.Members())
	}
}

func TestSettingsValidation(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	bad := testSettings()
	bad.K, bad.H, bad.L = 10, 3, 5 // L > H
	if _, err := StartCluster("seed:1", bad, net); err == nil {
		t.Fatal("invalid watermarks should be rejected")
	}

	// Nonsense batching-window relations are errors, not silently rewritten.
	inverted := testSettings()
	inverted.BatchingWindowMin = 50 * time.Millisecond
	inverted.BatchingWindowMax = 10 * time.Millisecond
	if _, err := StartCluster("seed:1", inverted, net); err == nil {
		t.Fatal("floor above ceiling should be rejected")
	}
	negative := testSettings()
	negative.BatchingWindow = -time.Millisecond
	if _, err := StartCluster("seed:1", negative, net); err == nil {
		t.Fatal("negative batching window should be rejected")
	}
	negFloor := testSettings()
	negFloor.BatchingWindowMin = -time.Millisecond
	if _, err := StartCluster("seed:1", negFloor, net); err == nil {
		t.Fatal("negative batching floor should be rejected")
	}

	// Zero values still derive a coherent adaptive range from the legacy
	// single knob.
	legacy := Settings{BatchingWindow: 80 * time.Millisecond}
	if err := legacy.validate(); err != nil {
		t.Fatalf("legacy single-knob settings should validate: %v", err)
	}
	if legacy.BatchingWindowMin != 8*time.Millisecond || legacy.BatchingWindowMax != 320*time.Millisecond {
		t.Fatalf("derived window range wrong: floor=%v ceiling=%v",
			legacy.BatchingWindowMin, legacy.BatchingWindowMax)
	}
}

func TestJoinRequiresSeed(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	if _, err := JoinCluster("a:1", nil, testSettings(), net); err == nil {
		t.Fatal("joining with no seeds should fail")
	}
}

func TestJoinUnreachableSeedFails(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	s := testSettings()
	s.JoinAttempts = 2
	if _, err := JoinCluster("a:1", []node.Addr{"nowhere:1"}, s, net); err == nil {
		t.Fatal("joining through an unreachable seed should fail")
	}
}

func TestSequentialJoinsConvergeConsistently(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 2})
	clusters := startCluster(t, net, 6, testSettings())
	defer stopAll(clusters)

	configID := clusters[0].ConfigurationID()
	membersKey := fmt.Sprint(clusters[0].Members())
	for i, c := range clusters {
		if c.ConfigurationID() != configID {
			t.Errorf("node %d has configuration %d, want %d (consistency violation)", i, c.ConfigurationID(), configID)
		}
		if fmt.Sprint(c.Members()) != membersKey {
			t.Errorf("node %d has a different membership list", i)
		}
	}
}

func TestDuplicateAddressIsRejectedAtPreJoin(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 3})
	clusters := startCluster(t, net, 3, testSettings())
	defer stopAll(clusters)
	// A pre-join request for an address that is already a member must be
	// answered with HOSTNAME_ALREADY_IN_RING (§6 join safety check).
	resp, err := net.Client("imposter:1").Send(
		contextWithTimeout(t, time.Second), addr(0),
		preJoinRequest(addr(1), node.NewID()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PreJoin == nil || resp.PreJoin.Status.String() != "HOSTNAME_ALREADY_IN_RING" {
		t.Fatalf("unexpected pre-join response: %+v", resp.PreJoin)
	}
}

func TestConcurrentJoins(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 4})
	settings := testSettings()
	node.SeedIDGenerator(99)
	seed, err := StartCluster(addr(0), settings, net)
	if err != nil {
		t.Fatal(err)
	}
	const joiners = 12
	var mu sync.Mutex
	clusters := []*Cluster{seed}
	var wg sync.WaitGroup
	for i := 1; i <= joiners; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := JoinCluster(addr(i), []node.Addr{addr(0)}, settings, net)
			if err != nil {
				t.Errorf("join %d failed: %v", i, err)
				return
			}
			mu.Lock()
			clusters = append(clusters, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		stopAll(clusters)
	}()
	if !waitUntil(t, 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(clusters) != joiners+1 {
			return false
		}
		for _, c := range clusters {
			if c.Size() != joiners+1 {
				return false
			}
		}
		return true
	}) {
		mu.Lock()
		sizes := []int{}
		for _, c := range clusters {
			sizes = append(sizes, c.Size())
		}
		mu.Unlock()
		t.Fatalf("concurrent joins did not converge: sizes=%v", sizes)
	}
}

func TestCrashFailuresDetectedAndRemoved(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 5})
	const n = 10
	clusters := startCluster(t, net, n, testSettings())
	defer stopAll(clusters)

	// Crash two processes abruptly (Figure 8 scenario, scaled down).
	crashed := []*Cluster{clusters[3], clusters[7]}
	survivors := []*Cluster{}
	for i, c := range clusters {
		if i != 3 && i != 7 {
			survivors = append(survivors, c)
		}
	}
	for _, c := range crashed {
		net.Crash(c.Addr())
	}
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, c := range survivors {
			if c.Size() != n-2 {
				return false
			}
		}
		return true
	}) {
		sizes := []int{}
		for _, c := range survivors {
			sizes = append(sizes, c.Size())
		}
		t.Fatalf("survivors did not converge to %d members: %v", n-2, sizes)
	}
	// Consistency: all survivors agree on the configuration.
	configID := survivors[0].ConfigurationID()
	for _, c := range survivors {
		if c.ConfigurationID() != configID {
			t.Fatal("survivors disagree on the configuration after the crash")
		}
		for _, m := range c.Members() {
			if m.Addr == crashed[0].Addr() || m.Addr == crashed[1].Addr() {
				t.Fatal("crashed node still present in a survivor's view")
			}
		}
	}
}

func TestGracefulLeave(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 6})
	const n = 5
	clusters := startCluster(t, net, n, testSettings())
	defer stopAll(clusters)

	leaver := clusters[n-1]
	leaver.Leave()
	survivors := clusters[:n-1]
	if !waitUntil(t, 20*time.Second, func() bool {
		for _, c := range survivors {
			if c.Size() != n-1 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("graceful leave was not converted into a coordinated removal")
	}
}

func TestSubscriberReceivesViewChanges(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 7})
	settings := testSettings()
	node.SeedIDGenerator(7)
	seed, err := StartCluster(addr(0), settings, net)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []ViewChange
	seed.Subscribe(func(vc ViewChange) {
		mu.Lock()
		events = append(events, vc)
		mu.Unlock()
	})
	j, err := JoinCluster(addr(1), []node.Addr{addr(0)}, settings, net)
	if err != nil {
		t.Fatal(err)
	}
	defer stopAll([]*Cluster{seed, j})

	if !waitUntil(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 1
	}) {
		t.Fatal("subscriber never notified of the join")
	}
	mu.Lock()
	defer mu.Unlock()
	vc := events[0]
	if len(vc.Changes) != 1 || !vc.Changes[0].Joined || vc.Changes[0].Endpoint.Addr != addr(1) {
		t.Fatalf("unexpected view change contents: %+v", vc)
	}
	if vc.ConfigurationID != seed.ConfigurationID() {
		t.Fatal("view change configuration ID does not match the installed configuration")
	}
}

func TestMetadataVisibleToAllMembers(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 8})
	settings := testSettings()
	node.SeedIDGenerator(8)
	seed, err := StartCluster(addr(0), settings, net)
	if err != nil {
		t.Fatal(err)
	}
	joinerSettings := testSettings()
	joinerSettings.Metadata = map[string]string{"role": "backend", "zone": "z1"}
	j, err := JoinCluster(addr(1), []node.Addr{addr(0)}, joinerSettings, net)
	if err != nil {
		t.Fatal(err)
	}
	defer stopAll([]*Cluster{seed, j})
	if !waitUntil(t, 10*time.Second, func() bool { return seed.Size() == 2 }) {
		t.Fatal("join did not complete")
	}
	md, ok := seed.Metadata(addr(1))
	if !ok || md["role"] != "backend" || md["zone"] != "z1" {
		t.Fatalf("metadata not propagated: %v, %v", md, ok)
	}
}

func TestAsymmetricIngressPartitionRemovesOnlyFaultyNode(t *testing.T) {
	// Figure 9 scenario, scaled down: one node stops receiving all traffic.
	// The cluster must remove exactly that node and remain stable.
	net := simnet.New(simnet.Options{Seed: 9})
	const n = 16
	settings := testSettings()
	clusters := startCluster(t, net, n, settings)
	defer stopAll(clusters)

	// In the paper's setting (n >> K) a single faulty observer never reaches
	// the L watermark for a healthy subject, because observer/subject pairs
	// rarely share multiple rings. At this test's small scale that is not
	// automatic, so pick a victim whose ring multiplicity towards every one
	// of its subjects stays below L — the topology is a deterministic
	// function of the membership, so we can compute it directly.
	victimIdx := -1
	topo := view.NewWithMembers(settings.K, clusters[0].Members())
	for i, c := range clusters {
		subjects, err := topo.SubjectsOf(c.Addr())
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		counts := make(map[node.Addr]int)
		for _, s := range subjects {
			counts[s]++
		}
		for _, cnt := range counts {
			if cnt >= settings.L {
				ok = false
				break
			}
		}
		if ok {
			victimIdx = i
			break
		}
	}
	if victimIdx < 0 {
		t.Skip("no suitable victim at this scale; the property only holds for n >> K")
	}
	victim := clusters[victimIdx]
	net.SetIngressLoss(victim.Addr(), 1.0)

	survivors := append([]*Cluster{}, clusters[:victimIdx]...)
	survivors = append(survivors, clusters[victimIdx+1:]...)
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, c := range survivors {
			if c.Size() != n-1 {
				return false
			}
		}
		return true
	}) {
		sizes := []int{}
		for _, c := range survivors {
			sizes = append(sizes, c.Size())
		}
		t.Fatalf("cluster did not remove the partitioned node: sizes=%v", sizes)
	}
	// Stability: healthy members must all still be present everywhere.
	for _, c := range survivors {
		for _, other := range survivors {
			found := false
			for _, m := range c.Members() {
				if m.Addr == other.Addr() {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("healthy node %v was removed from %v's view", other.Addr(), c.Addr())
			}
		}
	}
}

func TestViewChangeCountIsBoundedForSimultaneousCrashes(t *testing.T) {
	// The multi-process cut should remove simultaneously crashed nodes in
	// very few view changes (ideally one), not one per failure.
	net := simnet.New(simnet.Options{Seed: 10})
	const n = 12
	clusters := startCluster(t, net, n, testSettings())
	defer stopAll(clusters)

	before := clusters[0].ViewChangeCount()
	for i := 1; i <= 3; i++ {
		net.Crash(clusters[i].Addr())
	}
	survivors := append([]*Cluster{clusters[0]}, clusters[4:]...)
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, c := range survivors {
			if c.Size() != n-3 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("crashed nodes were not removed")
	}
	delta := clusters[0].ViewChangeCount() - before
	if delta > 2 {
		t.Errorf("3 simultaneous crashes caused %d view changes; expected a multi-node cut (1-2)", delta)
	}
}

func TestStopIsIdempotentAndHaltsService(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 11})
	c, err := StartCluster("solo:1", testSettings(), net)
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop()
	if net.Registered("solo:1") {
		t.Fatal("Stop should deregister the node from the transport")
	}
}

func TestGossipBroadcastModeConverges(t *testing.T) {
	// The gossip broadcaster is selected through Settings; receivers must
	// re-broadcast unseen batches so alerts and votes flood the membership.
	net := simnet.New(simnet.Options{Seed: 12})
	settings := testSettings()
	settings.Broadcast = BroadcastGossip
	settings.GossipFanout = 4
	const n = 8
	clusters := startCluster(t, net, n, settings)
	defer stopAll(clusters)

	// A crash must still be detected and removed with gossip dissemination.
	net.Crash(clusters[n-1].Addr())
	survivors := clusters[:n-1]
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, c := range survivors {
			if c.Size() != n-1 {
				return false
			}
		}
		return true
	}) {
		sizes := []int{}
		for _, c := range survivors {
			sizes = append(sizes, c.Size())
		}
		t.Fatalf("gossip-mode cluster did not remove the crashed node: sizes=%v", sizes)
	}
	configID := survivors[0].ConfigurationID()
	for _, c := range survivors {
		if c.ConfigurationID() != configID {
			t.Fatal("gossip-mode survivors disagree on the configuration")
		}
	}
	// Flooding means every batch is forwarded by every receiver, so the
	// dedup path must have absorbed duplicates somewhere in the run.
	var dups int64
	for _, c := range survivors {
		dups += c.Stats().GossipDuplicates
	}
	if dups == 0 {
		t.Error("expected gossip re-broadcast to produce deduplicated duplicates")
	}
}

func TestUnknownBroadcastModeRejected(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 13})
	bad := testSettings()
	bad.Broadcast = "carrier-pigeon"
	if _, err := StartCluster("seed:1", bad, net); err == nil {
		t.Fatal("unknown broadcast mode should be rejected")
	}
}

func TestFastRoundVotesTravelBatched(t *testing.T) {
	// Consensus fast-round votes must share the batched outbound path with
	// alerts: no standalone fastround messages on the wire.
	net := simnet.New(simnet.Options{Seed: 14})
	clusters := startCluster(t, net, 5, testSettings())
	defer stopAll(clusters)

	if got := net.MessageCount("fastround"); got != 0 {
		t.Errorf("%d standalone fast-round messages sent; votes should ride the batch", got)
	}
	batched := net.MessageCount("votebatch") + net.MessageCount("alerts+votes")
	if batched == 0 {
		t.Error("no batched vote messages observed during view changes")
	}
}

func TestEngineStats(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 15})
	clusters := startCluster(t, net, 4, testSettings())
	defer stopAll(clusters)

	stats := clusters[0].Stats()
	if stats.EventsProcessed == 0 {
		t.Error("engine processed no events despite three joins")
	}
	if stats.BatchesSent == 0 || stats.BatchSizes.Count == 0 {
		t.Errorf("no outbound batches recorded: %+v", stats)
	}
	if stats.BatchSizes.Mean <= 0 || stats.BatchSizes.Max <= 0 {
		t.Errorf("batch size aggregates not recorded: %+v", stats.BatchSizes)
	}
	if stats.QueueDepth < 0 || stats.QueueDepth > 1024 {
		t.Errorf("implausible queue depth %d", stats.QueueDepth)
	}
}

func TestSubscriberMayBlockWithoutStallingProtocol(t *testing.T) {
	// Subscribers run on a dedicated delivery goroutine: a callback that
	// blocks must not prevent further view changes from being applied.
	net := simnet.New(simnet.Options{Seed: 16})
	settings := testSettings()
	node.SeedIDGenerator(16)
	seed, err := StartCluster(addr(0), settings, net)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var delivered atomic.Int32
	seed.Subscribe(func(vc ViewChange) {
		delivered.Add(1)
		<-release
	})
	var clusters []*Cluster
	clusters = append(clusters, seed)
	defer func() {
		close(release)
		stopAll(clusters)
	}()
	// Two joins: the first delivery blocks in the subscriber, yet the second
	// view change must still be installed by the engine.
	for i := 1; i <= 2; i++ {
		c, err := JoinCluster(addr(i), []node.Addr{addr(0)}, settings, net)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		clusters = append(clusters, c)
	}
	if !waitUntil(t, 20*time.Second, func() bool { return seed.Size() == 3 }) {
		t.Fatalf("view changes stalled behind a blocking subscriber: size=%d", seed.Size())
	}
	if delivered.Load() != 1 {
		t.Errorf("expected exactly one in-flight delivery while blocked, got %d", delivered.Load())
	}
}
