package core

import (
	"context"

	"repro/internal/node"
	"repro/internal/remoting"
)

// HandleRequest implements transport.Handler. Handlers are thin enqueuers:
// protocol messages become typed events on the engine queue and are
// acknowledged immediately, so the transport's dispatch path never takes a
// lock and never touches protocol state. Only the join phases wait for the
// engine's reply, and probes are answered directly from an atomic flag.
func (c *Cluster) HandleRequest(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
	switch {
	case req == nil:
		return remoting.AckResponse(), nil
	case req.Probe != nil:
		return c.handleProbe(), nil
	case req.PreJoin != nil:
		return c.handlePreJoin(ctx, req.PreJoin), nil
	case req.Join != nil:
		return c.handleJoinPhase2(ctx, req.Join), nil
	case req.Alerts != nil || req.VoteBatch != nil:
		// enqueueBatch sheds stale batches under overload instead of blocking
		// the transport's delivery worker; the batch is acked either way, as
		// best-effort dissemination expects.
		c.enqueueBatch(event{raw: req, batch: req.Alerts, votes: req.VoteBatch, network: true})
		return remoting.AckResponse(), nil
	case req.Leave != nil:
		c.enqueue(event{leave: req.Leave})
		return remoting.AckResponse(), nil
	case req.FastRound != nil:
		c.enqueue(event{fastRound: req.FastRound})
		return remoting.AckResponse(), nil
	case req.P1a != nil:
		c.enqueue(event{p1a: req.P1a})
		return remoting.AckResponse(), nil
	case req.P1b != nil:
		c.enqueue(event{p1b: req.P1b})
		return remoting.AckResponse(), nil
	case req.P2a != nil:
		c.enqueue(event{p2a: req.P2a})
		return remoting.AckResponse(), nil
	case req.P2b != nil:
		c.enqueue(event{p2b: req.P2b})
		return remoting.AckResponse(), nil
	default:
		return remoting.AckResponse(), nil
	}
}

// handleProbe answers an edge failure detector probe without involving the
// engine: probe latency is what failure detection is calibrated against, so
// it must not queue behind protocol work.
func (c *Cluster) handleProbe() *remoting.Response {
	status := remoting.NodeOK
	if !c.started.Load() {
		status = remoting.NodeBootstrapping
	}
	return &remoting.Response{Probe: &remoting.ProbeResponse{Sender: c.me.Addr, Status: status}}
}

// handlePreJoin forwards phase 1 of the join protocol to the engine and waits
// for its answer; the topology lookup needs a consistent ring view.
func (c *Cluster) handlePreJoin(ctx context.Context, msg *remoting.PreJoinRequest) *remoting.Response {
	busy := &remoting.Response{PreJoin: &remoting.PreJoinResponse{
		Sender: c.me.Addr,
		Status: remoting.JoinViewChangeInProgress,
	}}
	if !c.started.Load() {
		return busy
	}
	reply := make(chan *remoting.PreJoinResponse, 1)
	if !c.enqueuePriority(event{preJoin: &preJoinEvent{msg: msg, reply: reply}}) {
		return busy
	}
	select {
	case resp := <-reply:
		return &remoting.Response{PreJoin: resp}
	case <-ctx.Done():
		return busy
	case <-c.stopCh:
		return busy
	}
}

// handleJoinPhase2 forwards phase 2 of the join protocol to the engine. The
// engine either answers immediately or parks the reply until the view change
// that admits the joiner; this handler enforces the caller-facing timeouts.
func (c *Cluster) handleJoinPhase2(ctx context.Context, msg *remoting.JoinRequest) *remoting.Response {
	if !c.started.Load() {
		return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, 0, nil)
	}
	reply := make(chan *remoting.JoinResponse, 1)
	if !c.enqueuePriority(event{join: &joinEvent{msg: msg, reply: reply}}) {
		return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, c.ConfigurationID(), nil)
	}
	select {
	case resp := <-reply:
		return &remoting.Response{Join: resp}
	case <-ctx.Done():
	case <-c.clock.After(c.settings.JoinPhase2Timeout):
	case <-c.stopCh:
	}
	return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, c.ConfigurationID(), nil)
}

func joinResponse(sender node.Addr, status remoting.JoinStatus, configID uint64, members []node.Endpoint) *remoting.Response {
	return &remoting.Response{Join: &remoting.JoinResponse{
		Sender:          sender,
		Status:          status,
		ConfigurationID: configID,
		Members:         members,
	}}
}
