package core

import (
	"context"
	"sort"

	"repro/internal/fastpaxos"
	"repro/internal/node"
	"repro/internal/remoting"
)

// HandleRequest implements transport.Handler: it routes every protocol
// message to the appropriate sub-handler.
func (c *Cluster) HandleRequest(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
	switch {
	case req == nil:
		return remoting.AckResponse(), nil
	case req.Probe != nil:
		return c.handleProbe(), nil
	case req.PreJoin != nil:
		return c.handlePreJoin(req.PreJoin), nil
	case req.Join != nil:
		return c.handleJoinPhase2(ctx, req.Join), nil
	case req.Alerts != nil:
		c.handleBatchedAlerts(req.Alerts)
		return remoting.AckResponse(), nil
	case req.Leave != nil:
		c.handleLeave(req.Leave)
		return remoting.AckResponse(), nil
	case req.FastRound != nil:
		if cons := c.currentConsensus(); cons != nil {
			cons.HandleFastRoundVote(req.FastRound)
		}
		return remoting.AckResponse(), nil
	case req.P1a != nil:
		if cons := c.currentConsensus(); cons != nil {
			cons.HandlePhase1a(req.P1a)
		}
		return remoting.AckResponse(), nil
	case req.P1b != nil:
		if cons := c.currentConsensus(); cons != nil {
			cons.HandlePhase1b(req.P1b)
		}
		return remoting.AckResponse(), nil
	case req.P2a != nil:
		if cons := c.currentConsensus(); cons != nil {
			cons.HandlePhase2a(req.P2a)
		}
		return remoting.AckResponse(), nil
	case req.P2b != nil:
		if cons := c.currentConsensus(); cons != nil {
			cons.HandlePhase2b(req.P2b)
		}
		return remoting.AckResponse(), nil
	default:
		return remoting.AckResponse(), nil
	}
}

// currentConsensus snapshots the consensus instance for the current view.
// Consensus handlers are invoked outside c.mu because a decision re-enters
// the cluster through onDecide, which acquires the lock.
func (c *Cluster) currentConsensus() *fastpaxos.FastPaxos {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || c.stopped || c.consensus == nil {
		return nil
	}
	return c.consensus
}

// handleProbe answers an edge failure detector probe.
func (c *Cluster) handleProbe() *remoting.Response {
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	status := remoting.NodeOK
	if !started {
		status = remoting.NodeBootstrapping
	}
	return &remoting.Response{Probe: &remoting.ProbeResponse{Sender: c.me.Addr, Status: status}}
}

// handlePreJoin is phase 1 of the join protocol: a seed returns the joiner's
// temporary observers in the current configuration.
func (c *Cluster) handlePreJoin(msg *remoting.PreJoinRequest) *remoting.Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := &remoting.PreJoinResponse{Sender: c.me.Addr}
	if !c.started || c.stopped {
		resp.Status = remoting.JoinViewChangeInProgress
		return &remoting.Response{PreJoin: resp}
	}
	resp.Status = c.view.IsSafeToJoin(msg.Sender, msg.JoinerID)
	resp.ConfigurationID = c.view.ConfigurationID()
	switch resp.Status {
	case remoting.JoinSafeToJoin:
		resp.Observers = c.view.ExpectedObserversOf(msg.Sender)
	case remoting.JoinHostAlreadyInRing:
		// If the very same process (same logical ID) retries its join — for
		// example because the response to its phase-2 request was lost — the
		// view change admitting it already happened. Point it at its actual
		// observers; their phase-2 handler replies immediately with the
		// current configuration.
		if existing, ok := c.view.Member(msg.Sender); ok && existing.ID == msg.JoinerID {
			resp.Status = remoting.JoinSafeToJoin
			if obs, err := c.view.ObserversOf(msg.Sender); err == nil {
				resp.Observers = obs
			}
		}
	}
	return &remoting.Response{PreJoin: resp}
}

// handleJoinPhase2 is phase 2 of the join protocol, served by each of the
// joiner's temporary observers: the observer broadcasts a JOIN alert and
// responds once the view change that admits the joiner has been installed.
func (c *Cluster) handleJoinPhase2(ctx context.Context, msg *remoting.JoinRequest) *remoting.Response {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, 0, nil)
	}
	currentConfig := c.view.ConfigurationID()
	// If the joiner is already a member, the view change raced ahead of this
	// request (or it is a retry): answer immediately with the configuration.
	if existing, ok := c.view.Member(msg.Sender); ok && existing.ID == msg.JoinerID {
		members := c.view.Members()
		c.mu.Unlock()
		return joinResponse(c.me.Addr, remoting.JoinSafeToJoin, currentConfig, members)
	}
	if msg.ConfigurationID != currentConfig {
		c.mu.Unlock()
		return joinResponse(c.me.Addr, remoting.JoinConfigChanged, currentConfig, nil)
	}
	rings := c.view.RingNumbers(c.me.Addr, msg.Sender)
	if len(rings) == 0 {
		// We are not one of the joiner's observers in this configuration.
		c.mu.Unlock()
		return joinResponse(c.me.Addr, remoting.JoinConfigChanged, currentConfig, nil)
	}
	c.enqueueAlertLocked(remoting.AlertMessage{
		EdgeSrc:         c.me.Addr,
		EdgeDst:         msg.Sender,
		Status:          remoting.EdgeUp,
		ConfigurationID: currentConfig,
		RingNumbers:     rings,
		JoinerID:        msg.JoinerID,
		Metadata:        msg.Metadata,
	})
	ch := make(chan *remoting.JoinResponse, 1)
	c.joinWaiters[msg.Sender] = append(c.joinWaiters[msg.Sender], ch)
	c.mu.Unlock()

	select {
	case resp := <-ch:
		return &remoting.Response{Join: resp}
	case <-ctx.Done():
		return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, currentConfig, nil)
	case <-c.clock.After(c.settings.JoinPhase2Timeout):
		return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, currentConfig, nil)
	case <-c.stopCh:
		return joinResponse(c.me.Addr, remoting.JoinViewChangeInProgress, currentConfig, nil)
	}
}

func joinResponse(sender node.Addr, status remoting.JoinStatus, configID uint64, members []node.Endpoint) *remoting.Response {
	return &remoting.Response{Join: &remoting.JoinResponse{
		Sender:          sender,
		Status:          status,
		ConfigurationID: configID,
		Members:         members,
	}}
}

// handleLeave converts a graceful-leave announcement into REMOVE alerts on
// the rings where this process observes the leaver.
func (c *Cluster) handleLeave(msg *remoting.LeaveMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || c.stopped || !c.view.Contains(msg.Sender) || c.alertedEdges[msg.Sender] {
		return
	}
	rings := c.view.RingNumbers(c.me.Addr, msg.Sender)
	if len(rings) == 0 {
		return
	}
	c.alertedEdges[msg.Sender] = true
	c.enqueueAlertLocked(remoting.AlertMessage{
		EdgeSrc:         c.me.Addr,
		EdgeDst:         msg.Sender,
		Status:          remoting.EdgeDown,
		ConfigurationID: c.view.ConfigurationID(),
		RingNumbers:     rings,
	})
}

// handleBatchedAlerts feeds observer alerts into the cut detector and, when
// the aggregation rule fires, casts this process' consensus vote.
func (c *Cluster) handleBatchedAlerts(batch *remoting.BatchedAlertMessage) {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	now := c.clock.Now()
	currentConfig := c.view.ConfigurationID()
	var proposal []node.Endpoint
	for _, alert := range batch.Alerts {
		if alert.ConfigurationID != currentConfig {
			continue
		}
		var subject node.Endpoint
		if alert.Status == remoting.EdgeDown {
			ep, ok := c.view.Member(alert.EdgeDst)
			if !ok {
				continue
			}
			subject = ep
		} else {
			if c.view.Contains(alert.EdgeDst) {
				continue // JOIN alert about an existing member is invalid.
			}
			subject = node.Endpoint{Addr: alert.EdgeDst, ID: alert.JoinerID, Metadata: alert.Metadata}
		}
		proposal = append(proposal, c.cd.AggregateForProposal(alert, subject, now)...)
	}
	proposal = append(proposal, c.cd.InvalidateFailingEdges(c.view, now)...)

	if len(proposal) == 0 {
		c.mu.Unlock()
		return
	}
	proposal = dedupeEndpoints(proposal)
	cons := c.consensus
	members := c.view.MemberAddrs()
	myIndex := sort.Search(len(members), func(i int) bool { return members[i] >= c.me.Addr })
	size := len(members)
	alreadyProposed := cons.HasProposed()
	c.mu.Unlock()

	if alreadyProposed {
		return
	}
	cons.Propose(proposal)
	c.scheduleFallback(cons, myIndex, size)
}

// dedupeEndpoints removes duplicate endpoints and sorts by address so every
// process that detected the same cut votes for a byte-identical proposal.
func dedupeEndpoints(in []node.Endpoint) []node.Endpoint {
	seen := make(map[node.Addr]bool, len(in))
	out := make([]node.Endpoint, 0, len(in))
	for _, ep := range in {
		if seen[ep.Addr] {
			continue
		}
		seen[ep.Addr] = true
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
