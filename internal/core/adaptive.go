package core

import "time"

// This file implements the engine's adaptive batching-window controller. The
// paper batches alerts and votes on a fixed window (§6); a constant is wrong
// at both ends of the load spectrum. Quiet clusters pay the full window of
// latency on every join and every isolated alert even though there is nothing
// to coalesce, while a bootstrap storm at N=1000+ would amortize its O(N)
// broadcast cost much better with a window several times larger. The
// controller therefore resizes the flush window between a configured floor
// and ceiling after every flush, from two signals the engine already owns:
// the depth of its inbound event queue and the number of data-plane events
// that arrived during the window just flushed (the alert arrival rate).

// Controller thresholds. The queue fraction is relative to EventQueueSize, so
// the policy scales with the configured queue rather than hard-coding depths.
const (
	// growQueueFraction: a queue holding more than 1/8 of its capacity means
	// batches are arriving faster than the engine applies them — grow the
	// window so this process contributes fewer, larger batches to the storm.
	growQueueFraction = 8
	// growArrivals: with a healthy queue, this many data events inside one
	// ceiling-length window is storm-level traffic (a steady cluster sees
	// none — members only flush when they have pending alerts or votes). The
	// per-window threshold scales with the window so it expresses an arrival
	// *rate*: a short window must not need the same absolute count as the
	// ceiling to react.
	growArrivals = 32
	// minGrowArrivals floors the scaled threshold so single stray events
	// cannot grow a floor-length window.
	minGrowArrivals = 4
	// shrinkArrivals: at or below this many arrivals per window, with an
	// empty queue, the cluster is quiet and the window decays toward the
	// floor for minimum-latency flushes.
	shrinkArrivals = 2
)

// windowController holds the adaptive flush window. It is engine-goroutine
// state: retune is only called from the engine loop, between flushes.
type windowController struct {
	floor   time.Duration
	ceiling time.Duration
	window  time.Duration
}

// newWindowController starts at the configured legacy window (clamped into
// the floor/ceiling range) rather than at the floor: engines frequently boot
// mid-storm — every admitted joiner starts one — and a floor-rate flusher is
// the worst thing to add to a storm. A quiet engine decays to the floor
// within a few flushes anyway (halving per tick).
func newWindowController(floor, ceiling, start time.Duration) windowController {
	if start < floor {
		start = floor
	}
	if start > ceiling {
		start = ceiling
	}
	return windowController{floor: floor, ceiling: ceiling, window: start}
}

// retune computes the next flush window from the live queue depth (and its
// capacity) plus the number of data-plane events dispatched during the window
// that just ended. Multiplicative increase/decrease gives the window
// hysteresis: a single quiet tick in mid-storm halves the window once rather
// than collapsing it, and one busy tick on an idle cluster doubles it once
// rather than pinning it to the ceiling.
func (w *windowController) retune(queueDepth, queueCap int, arrivals int) time.Duration {
	growDepth := queueCap / growQueueFraction
	if growDepth < 1 {
		growDepth = 1
	}
	growAt := int(int64(growArrivals) * int64(w.window) / int64(w.ceiling))
	if growAt < minGrowArrivals {
		growAt = minGrowArrivals
	}
	switch {
	case queueDepth >= growDepth || arrivals >= growAt:
		w.window *= 2
		if w.window > w.ceiling {
			w.window = w.ceiling
		}
	case queueDepth == 0 && arrivals <= shrinkArrivals:
		w.window /= 2
		if w.window < w.floor {
			w.window = w.floor
		}
	}
	return w.window
}
