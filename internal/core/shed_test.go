package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simnet"
	"repro/internal/view"
)

// shedTestCluster builds a cluster whose engine is deliberately not started,
// so the event queue fills deterministically, with two published
// configurations: the returned pastID has been moved past, currentID is
// installed.
func shedTestCluster(t *testing.T, queueSize int) (c *Cluster, currentID, pastID uint64) {
	t.Helper()
	net := simnet.New(simnet.Options{Seed: 7})
	s := testSettings()
	s.EventQueueSize = queueSize
	c, err := newCluster("shed:1", s, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	v1 := view.NewWithMembers(s.K, []node.Endpoint{{Addr: "shed:1", ID: node.NewID()}})
	c.publishSnapshot(v1, v1.Members(), 0)
	v2 := view.NewWithMembers(s.K, []node.Endpoint{
		{Addr: "shed:1", ID: node.NewID()},
		{Addr: "peer:1", ID: node.NewID()},
	})
	c.publishSnapshot(v2, v2.Members(), 1)
	return c, v2.ConfigurationID(), v1.ConfigurationID()
}

func alertBatch(configID uint64, seq uint64) *remoting.Request {
	return &remoting.Request{Alerts: &remoting.BatchedAlertMessage{
		Sender: "peer:1",
		Seq:    seq,
		Alerts: []remoting.AlertMessage{{
			EdgeSrc:         "peer:1",
			EdgeDst:         "ghost:1",
			Status:          remoting.EdgeDown,
			ConfigurationID: configID,
			RingNumbers:     []int{0},
		}},
	}}
}

// TestStaleBatchShedAtHighWater drives the transport handler directly against
// a stalled engine. Past the high-water mark (3/4 of EventQueueSize), a batch
// referencing only configurations this process already moved past must be
// dropped and counted without blocking the caller; a batch from an unknown
// (possibly imminent) configuration must stay enqueued while there is room
// and only be shed once the queue is entirely full; and batches with
// current-configuration content must never be shed.
func TestStaleBatchShedAtHighWater(t *testing.T) {
	const queueSize = 8 // high water = 6
	c, currentID, pastID := shedTestCluster(t, queueSize)
	unknownID := currentID + pastID + 1 // matches neither current nor past
	ctx := context.Background()

	// Below the high-water mark past-config batches are enqueued like any
	// other.
	for i := 0; i < 6; i++ {
		if _, err := c.HandleRequest(ctx, "peer:1", alertBatch(pastID, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if stats := c.Stats(); stats.ShedBatches != 0 || stats.QueueDepth != 6 {
		t.Fatalf("no shedding expected below high water: %+v", stats)
	}

	// At the mark, a past-config batch is shed: HandleRequest returns
	// immediately even though the engine is not draining the queue.
	if _, err := c.HandleRequest(ctx, "peer:1", alertBatch(pastID, 100)); err != nil {
		t.Fatal(err)
	}
	if stats := c.Stats(); stats.ShedBatches != 1 || stats.QueueDepth != 6 {
		t.Fatalf("past-config batch should be shed and counted: %+v", stats)
	}

	// An unknown-configuration batch is not shed while the queue has room:
	// it may become applicable once a queued decision installs its
	// configuration.
	if _, err := c.HandleRequest(ctx, "peer:1", alertBatch(unknownID, 101)); err != nil {
		t.Fatal(err)
	}
	if stats := c.Stats(); stats.ShedBatches != 1 || stats.QueueDepth != 7 {
		t.Fatalf("unknown-config batch should be enqueued while there is room: %+v", stats)
	}

	// A current-configuration batch is never shed: it must land in the queue.
	if _, err := c.HandleRequest(ctx, "peer:1", alertBatch(currentID, 102)); err != nil {
		t.Fatal(err)
	}
	if stats := c.Stats(); stats.ShedBatches != 1 || stats.QueueDepth != 8 {
		t.Fatalf("current-configuration batch must be enqueued, not shed: %+v", stats)
	}

	// The queue is now entirely full: an unknown-config batch is shed here —
	// the alternative would block the transport worker.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.HandleRequest(ctx, "peer:1", alertBatch(unknownID, 103))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("unknown-config batch blocked on a full queue instead of being shed")
	}
	if stats := c.Stats(); stats.ShedBatches != 2 || stats.QueueDepth != 8 {
		t.Fatalf("unknown-config batch on full queue should be shed: %+v", stats)
	}

	// A mixed batch (one past alert, one current) counts as current and is
	// exempt from both shedding tiers; on the full queue it blocks until the
	// cluster stops (asserted by TestQueueFullTimeAccounted with a drain).
	mixed := alertBatch(pastID, 104)
	mixed.Alerts.Alerts = append(mixed.Alerts.Alerts, alertBatch(currentID, 104).Alerts.Alerts...)
	if c.staleBatch(event{batch: mixed.Alerts}, true) {
		t.Fatal("a batch with current-configuration content must never be sheddable")
	}

	// Past-config vote batches shed too: consensus votes are
	// configuration-scoped and never revisited.
	votes := &remoting.Request{VoteBatch: &remoting.FastRoundVoteBatch{
		Sender: "peer:1",
		Seq:    105,
		Votes:  []remoting.FastRoundPhase2b{{Sender: "peer:1", ConfigurationID: pastID}},
	}}
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		_, _ = c.HandleRequest(ctx, "peer:1", votes)
	}()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("past-config vote batch blocked instead of being shed")
	}
	if stats := c.Stats(); stats.ShedBatches != 3 {
		t.Fatalf("past-config vote batch should be shed: %+v", stats)
	}
}

// TestQueueFullTimeAccounted verifies that blocking backpressure on the
// non-sheddable path is surfaced in EngineStats.QueueFullTime.
func TestQueueFullTimeAccounted(t *testing.T) {
	const queueSize = 4
	c, currentID, _ := shedTestCluster(t, queueSize)
	ctx := context.Background()
	for i := 0; i < queueSize; i++ {
		if _, err := c.HandleRequest(ctx, "peer:1", alertBatch(currentID, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The queue is full; the next current-configuration batch blocks until
	// the engine drains it — here we drain manually from the test.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.HandleRequest(ctx, "peer:1", alertBatch(currentID, 99))
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("enqueue should have blocked on the full queue")
	default:
	}
	<-c.events // make room; the blocked producer completes
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked producer never completed after the queue drained")
	}
	if got := c.Stats().QueueFullTime; got < 25*time.Millisecond {
		t.Fatalf("QueueFullTime %v should reflect the blocked enqueue", got)
	}
}
