package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broadcast"
	"repro/internal/edgefd"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
	"repro/internal/view"
)

// Errors returned by the public API.
var (
	errInvalidWatermarks = errors.New("core: require 1 <= L <= H <= K")
	// ErrJoinFailed indicates the joiner exhausted its join attempts.
	ErrJoinFailed = errors.New("core: join failed after all attempts")
	// ErrAddressInUse indicates the cluster already contains this address.
	ErrAddressInUse = errors.New("core: hostname already in the membership ring")
	// ErrStopped indicates an operation on a stopped cluster handle.
	ErrStopped = errors.New("core: cluster handle is stopped")
)

// StatusChange describes one endpoint's transition in a view change.
type StatusChange struct {
	Endpoint node.Endpoint
	// Joined is true when the endpoint was added, false when removed.
	Joined bool
}

// ViewChange is delivered to subscribers on every configuration change.
type ViewChange struct {
	// ConfigurationID identifies the new configuration.
	ConfigurationID uint64
	// Members is the full membership of the new configuration.
	Members []node.Endpoint
	// Changes lists the endpoints added or removed relative to the previous
	// configuration the subscriber was notified of.
	Changes []StatusChange
	// Coalesced is the gap marker for slow subscribers: when the bounded
	// notification queue (Settings.NotifierQueueBound) overflows, pending
	// view changes are merged and Coalesced counts how many separate view
	// changes this notification absorbed. Zero in normal operation; when
	// non-zero, Members and Changes describe the net transition across the
	// gap, not each intermediate configuration.
	Coalesced int
}

// Subscriber receives view-change notifications. Callbacks are invoked in
// order from a dedicated delivery goroutine, off the protocol path, so they
// may block without stalling the membership service. A callback that stays
// blocked for more than Settings.NotifierQueueBound view changes starts
// receiving coalesced notifications (ViewChange.Coalesced > 0) instead of
// growing the pending queue without bound. A callback already in flight when
// Stop is called may complete after Stop returns.
type Subscriber func(ViewChange)

// snapshot is the immutable membership state published by the engine after
// every view change. Public accessors read the latest snapshot lock-free, so
// readers only ever observe fully installed configurations.
type snapshot struct {
	configID    uint64
	members     []node.Endpoint // sorted by address; treated as immutable
	byAddr      map[node.Addr]node.Endpoint
	viewChanges int
	// pastConfigs are the identifiers of recent configurations this process
	// has already moved past (bounded by maxPastConfigs). The protocol never
	// revisits a configuration, so batches referencing only these can be
	// shed under overload with zero information loss.
	pastConfigs map[uint64]bool
}

// maxPastConfigs bounds the shed-eligibility history. It only needs to cover
// configurations whose traffic may still be in flight; 32 view changes of
// slack is far beyond any batch's network lifetime.
const maxPastConfigs = 32

// Cluster is one process' handle on the Rapid membership service. Create one
// with StartCluster (to bootstrap a new cluster) or JoinCluster (to join an
// existing one through seed processes).
//
// Internally the handle is a thin shell around a single-writer protocol
// engine (see engine.go): transport handlers enqueue typed events, one
// goroutine applies them, and the results are published as atomic snapshots.
type Cluster struct {
	settings Settings
	net      transport.Network
	client   transport.Client
	clock    simclock.Clock
	me       node.Endpoint

	// unicast always addresses the full membership; broadcaster is the
	// Settings-selected strategy for batched alerts and votes (it aliases
	// unicast unless gossip is configured).
	unicast     *broadcast.UnicastToAll
	broadcaster broadcast.Broadcaster

	events chan event
	// prio carries control-plane events (join phases) that must not queue
	// behind the N² alert/vote flood: during a 1000-node bootstrap storm a
	// seed's event queue holds thousands of batches, and a phase-1 join
	// parked behind them would time out and burn one of the joiner's
	// attempts. The engine drains prio first.
	prio     chan event
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// shedWater is the event-queue high-water mark (3/4 of EventQueueSize):
	// past it, inbound batches that are entirely stale are shed instead of
	// enqueued, so an overloaded member never blocks its transport on
	// traffic the engine would discard anyway.
	shedWater int

	started atomic.Bool
	snap    atomic.Pointer[snapshot]
	// pastRing orders the recent past configuration IDs for trimming. Only
	// the engine goroutine (via publishSnapshot) touches it. engine-owned.
	pastRing []uint64

	notifier  *notifier
	monitorCh chan []node.Addr

	emetrics EngineMetrics
}

// EngineMetrics instruments the protocol engine. The event queue depth and
// the notifier queue depth are not stored metrics: Stats() reads them live
// from the queues themselves.
type EngineMetrics struct {
	// EventsProcessed counts events applied by the engine goroutine.
	EventsProcessed metrics.Counter
	// BatchesSent counts flushed outbound batches.
	BatchesSent metrics.Counter
	// BatchSizes aggregates alerts+votes per flushed batch.
	BatchSizes metrics.Distribution
	// GossipDuplicates counts batches dropped by gossip deduplication.
	GossipDuplicates metrics.Counter
	// BatchWindow is the engine's current adaptive flush window, nanoseconds.
	BatchWindow metrics.Gauge
	// ShedBatches counts inbound alert/vote batches dropped by overload
	// shedding (queue past its high-water mark, batch entirely stale).
	ShedBatches metrics.Counter
	// QueueFullNanos accumulates the time producers spent blocked on a full
	// event queue (the backpressure the shedding policy exists to avoid).
	QueueFullNanos metrics.Counter
	// NotifierCoalesced counts view changes merged away by the bounded
	// notification queue.
	NotifierCoalesced metrics.Counter
}

// EngineStats is a point-in-time summary of the engine metrics.
type EngineStats struct {
	QueueDepth       int
	EventsProcessed  int64
	BatchesSent      int64
	BatchSizes       metrics.DistributionSummary
	GossipDuplicates int64
	// BatchWindow is the current adaptive flush window, sized between
	// Settings.BatchingWindowMin and BatchingWindowMax by load.
	BatchWindow time.Duration
	// ShedBatches is the number of stale inbound batches dropped under
	// overload instead of blocking the transport.
	ShedBatches int64
	// QueueFullTime is the cumulative time producers spent blocked on a full
	// event queue.
	QueueFullTime time.Duration
	// NotifierDepth is the number of undelivered view-change notifications.
	NotifierDepth int
	// NotifierCoalesced is the number of view changes merged away because a
	// slow subscriber hit the notification queue bound.
	NotifierCoalesced int64
}

// StartCluster bootstraps a brand-new cluster consisting of just this
// process. Other processes join it by listing this address in their seeds.
func StartCluster(addr node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	c, err := newCluster(addr, settings, net)
	if err != nil {
		return nil, err
	}
	self := c.me
	if err := net.Register(addr, c); err != nil {
		return nil, fmt.Errorf("core: register %s: %w", addr, err)
	}
	c.initialize([]node.Endpoint{self})
	return c, nil
}

// JoinCluster joins an existing cluster through the given seed addresses
// using Rapid's two-phase join protocol, and returns a started handle once
// the view change admitting this process has been installed.
func JoinCluster(addr node.Addr, seeds []node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	c, err := newCluster(addr, settings, net)
	if err != nil {
		return nil, err
	}
	if err := net.Register(addr, c); err != nil {
		return nil, fmt.Errorf("core: register %s: %w", addr, err)
	}
	members, err := c.runJoinProtocol(seeds)
	if err != nil {
		net.Deregister(addr)
		return nil, err
	}
	c.initialize(members)
	return c, nil
}

// newCluster builds the unstarted handle.
func newCluster(addr node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	if err := settings.validate(); err != nil {
		return nil, err
	}
	me := node.Endpoint{Addr: addr, ID: node.NewID()}
	if settings.Metadata != nil {
		me = me.WithMetadata(settings.Metadata)
	}
	client := net.Client(addr)
	c := &Cluster{
		settings:  settings,
		net:       net,
		client:    client,
		clock:     settings.Clock,
		me:        me,
		unicast:   broadcast.NewUnicastToAll(client),
		events:    make(chan event, settings.EventQueueSize),
		prio:      make(chan event, settings.EventQueueSize),
		stopCh:    make(chan struct{}),
		shedWater: settings.EventQueueSize * 3 / 4,
		monitorCh: make(chan []node.Addr, 1),
	}
	if c.shedWater < 1 {
		c.shedWater = 1
	}
	c.notifier = newNotifier(settings.NotifierQueueBound, &c.emetrics.NotifierCoalesced)
	switch settings.Broadcast {
	case BroadcastGossip:
		c.broadcaster = broadcast.NewGossip(client, me.Addr, settings.GossipFanout, int64(me.ID.Low))
	default:
		c.broadcaster = c.unicast
	}
	return c, nil
}

// initialize installs the first configuration and starts the engine, the
// monitor manager and the subscriber delivery goroutine. The engine
// goroutine publishes the initial monitor subject set itself, keeping all
// subject updates ordered.
func (c *Cluster) initialize(members []node.Endpoint) {
	e := newEngine(c, members)
	c.started.Store(true)
	c.wg.Add(2)
	go e.run()
	go c.monitorManager()
	go c.notifier.run()
}

// enqueue submits an event to the engine, blocking if the queue is full
// (backpressure). It returns false if the cluster stopped instead. Time spent
// blocked on a full queue is accumulated in QueueFullNanos, so overload is
// visible in EngineStats even when nothing is shed.
func (c *Cluster) enqueue(ev event) bool {
	select {
	case c.events <- ev:
		return true
	default:
	}
	start := c.clock.Now()
	defer func() {
		c.emetrics.QueueFullNanos.Add(int64(c.clock.Since(start)))
	}()
	select {
	case c.events <- ev:
		return true
	case <-c.stopCh:
		return false
	}
}

// enqueueBatch submits an inbound alert/vote batch with overload shedding.
// Blocking the transport on a full queue head-of-line-stalls every other
// endpoint sharing the caller's delivery worker (the sharded simnet delivers
// ~N/Shards endpoints per worker), so under pressure stale batches are
// dropped instead, in two tiers:
//
//   - past the high-water mark, batches referencing only configurations this
//     process has already moved past are shed: the protocol never revisits a
//     configuration, so nothing is lost;
//   - only when the queue is entirely full — where the alternative is
//     blocking the worker — are batches from unknown (usually imminent)
//     configurations shed too. They are kept while there is room because a
//     batch that is stale at enqueue time can become applicable by the time
//     the engine reaches it, if a decision already queued ahead of it
//     installs that configuration; shedding those early costs JOIN-alert
//     reports the cut detector's H-of-K aggregation has little slack for.
//
// Batches with current-configuration content always keep the blocking
// backpressure of enqueue.
func (c *Cluster) enqueueBatch(ev event) bool {
	if len(c.events) >= c.shedWater && c.staleBatch(ev, false) {
		c.emetrics.ShedBatches.Add(1)
		return false
	}
	select {
	case c.events <- ev:
		return true
	default:
	}
	if c.staleBatch(ev, true) {
		c.emetrics.ShedBatches.Add(1)
		return false
	}
	return c.enqueue(ev)
}

// staleBatch reports whether the batch is sheddable: no alert or vote in it
// references the current configuration, and — unless hardFull allows
// dropping any non-current batch — every referenced configuration is one
// this process has verifiably moved past.
func (c *Cluster) staleBatch(ev event, hardFull bool) bool {
	s := c.snap.Load()
	if s == nil {
		return false
	}
	sheddable := func(configID uint64) bool {
		if configID == s.configID {
			return false
		}
		return hardFull || s.pastConfigs[configID]
	}
	if ev.batch != nil {
		for i := range ev.batch.Alerts {
			if !sheddable(ev.batch.Alerts[i].ConfigurationID) {
				return false
			}
		}
	}
	if ev.votes != nil {
		for i := range ev.votes.Votes {
			if !sheddable(ev.votes.Votes[i].ConfigurationID) {
				return false
			}
		}
	}
	return true
}

// enqueuePriority submits a control-plane event on the priority queue, which
// the engine drains ahead of the data-plane flood.
func (c *Cluster) enqueuePriority(ev event) bool {
	select {
	case c.prio <- ev:
		return true
	case <-c.stopCh:
		return false
	}
}

// publishSnapshot installs the membership state readers see. Called by the
// engine goroutine only (and once during construction). members is the
// caller's sorted copy of v.Members(); reusing it saves a second O(N log N)
// sort per view change per node, but the snapshot still takes its own flat
// copy — the caller hands the same slice to subscriber callbacks and join
// responses, and a subscriber mutating ViewChange.Members must not corrupt
// what concurrent Members()/Size() readers see.
func (c *Cluster) publishSnapshot(v *view.View, members []node.Endpoint, viewChanges int) {
	members = append([]node.Endpoint(nil), members...)
	byAddr := make(map[node.Addr]node.Endpoint, len(members))
	for _, ep := range members {
		byAddr[ep.Addr] = ep
	}
	// The configuration being replaced joins the bounded past-configs set:
	// overload shedding may drop batches referencing only these, because the
	// protocol never revisits a configuration.
	if prev := c.snap.Load(); prev != nil {
		c.pastRing = append(c.pastRing, prev.configID)
		if len(c.pastRing) > maxPastConfigs {
			c.pastRing = c.pastRing[len(c.pastRing)-maxPastConfigs:]
		}
	}
	past := make(map[uint64]bool, len(c.pastRing))
	for _, id := range c.pastRing {
		past[id] = true
	}
	c.snap.Store(&snapshot{
		configID:    v.ConfigurationID(),
		members:     members,
		byAddr:      byAddr,
		viewChanges: viewChanges,
		pastConfigs: past,
	})
}

// --- public accessors --------------------------------------------------------

// Addr returns this process' listen address.
func (c *Cluster) Addr() node.Addr { return c.me.Addr }

// ID returns the logical identifier this process joined with.
func (c *Cluster) ID() node.ID { return c.me.ID }

// Size returns the number of members in the current configuration.
func (c *Cluster) Size() int {
	if s := c.snap.Load(); s != nil {
		return len(s.members)
	}
	return 0
}

// Members returns the endpoints of the current configuration sorted by address.
func (c *Cluster) Members() []node.Endpoint {
	s := c.snap.Load()
	if s == nil {
		return nil
	}
	return append([]node.Endpoint(nil), s.members...)
}

// ConfigurationID returns the identifier of the current configuration.
func (c *Cluster) ConfigurationID() uint64 {
	if s := c.snap.Load(); s != nil {
		return s.configID
	}
	return 0
}

// IsMember reports whether this process is part of its own current view.
// It becomes false if the rest of the cluster removed this process.
func (c *Cluster) IsMember() bool {
	s := c.snap.Load()
	if s == nil {
		return false
	}
	_, ok := s.byAddr[c.me.Addr]
	return ok
}

// ViewChangeCount returns how many view changes this handle has applied.
func (c *Cluster) ViewChangeCount() int {
	if s := c.snap.Load(); s != nil {
		return s.viewChanges
	}
	return 0
}

// Metadata returns the metadata registered for the given member address.
func (c *Cluster) Metadata(addr node.Addr) (map[string]string, bool) {
	s := c.snap.Load()
	if s == nil {
		return nil, false
	}
	ep, ok := s.byAddr[addr]
	if !ok {
		return nil, false
	}
	return ep.Metadata, true
}

// Stats returns a point-in-time summary of the engine instrumentation.
func (c *Cluster) Stats() EngineStats {
	return EngineStats{
		QueueDepth:        len(c.events) + len(c.prio),
		EventsProcessed:   c.emetrics.EventsProcessed.Value(),
		BatchesSent:       c.emetrics.BatchesSent.Value(),
		BatchSizes:        c.emetrics.BatchSizes.Summary(),
		GossipDuplicates:  c.emetrics.GossipDuplicates.Value(),
		BatchWindow:       time.Duration(c.emetrics.BatchWindow.Value()),
		ShedBatches:       c.emetrics.ShedBatches.Value(),
		QueueFullTime:     time.Duration(c.emetrics.QueueFullNanos.Value()),
		NotifierDepth:     c.notifier.depth(),
		NotifierCoalesced: c.emetrics.NotifierCoalesced.Value(),
	}
}

// Metrics exposes the live engine instrumentation.
func (c *Cluster) Metrics() *EngineMetrics { return &c.emetrics }

// Subscribe registers a view-change callback. It is invoked for every
// configuration change applied after registration.
func (c *Cluster) Subscribe(cb Subscriber) { c.notifier.subscribe(cb) }

// Leave announces a graceful departure: observers of this process convert the
// announcement into REMOVE alerts so a coordinated view change removes it.
// The handle keeps serving protocol messages until Stop is called.
func (c *Cluster) Leave() {
	if !c.started.Load() {
		return
	}
	// Leave always unicasts to the full membership: it must reach every
	// observer of the leaver regardless of the gossip fanout.
	c.unicast.Broadcast(&remoting.Request{Leave: &remoting.LeaveMessage{Sender: c.me.Addr}})
}

// Stop halts all background work and deregisters from the transport. The
// handle cannot be restarted. Undelivered view-change notifications are
// discarded; at most one subscriber callback that was already executing when
// Stop was called may still complete after Stop returns.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		c.wg.Wait()
		c.notifier.stop()
		c.net.Deregister(c.me.Addr)
	})
}

// --- monitor manager ---------------------------------------------------------

// setMonitorSubjects hands the latest subject set to the monitor manager
// without ever blocking the engine: a stale pending update is replaced.
func (c *Cluster) setMonitorSubjects(subjects []node.Addr) {
	for {
		select {
		case c.monitorCh <- subjects:
			return
		case <-c.stopCh:
			return
		default:
		}
		select {
		case <-c.monitorCh:
		default:
		}
	}
}

// monitorManager owns the edge failure-detector monitors. It swaps them when
// the engine publishes a new subject set; stopping old monitors can block on
// in-flight probes, which is why this runs off the engine goroutine.
func (c *Cluster) monitorManager() {
	defer c.wg.Done()
	var current []edgefd.Monitor
	stopAll := func(ms []edgefd.Monitor) {
		for _, m := range ms {
			m.Stop()
		}
	}
	for {
		select {
		case <-c.stopCh:
			stopAll(current)
			return
		case subjects := <-c.monitorCh:
			stopAll(current)
			current = current[:0]
			factory := c.settings.FailureDetector
			for _, s := range subjects {
				m := factory(edgefd.Params{
					Observer:  c.me.Addr,
					Subject:   s,
					Client:    c.client,
					Clock:     c.clock,
					Interval:  c.settings.ProbeInterval,
					Timeout:   c.settings.ProbeTimeout,
					OnFailure: c.onSubjectFailed,
				})
				current = append(current, m)
			}
			for _, m := range current {
				m.Start()
			}
		}
	}
}

// onSubjectFailed forwards an edge failure detector verdict to the engine.
func (c *Cluster) onSubjectFailed(subject node.Addr) {
	c.enqueue(event{subjectDown: subject})
}

var _ transport.Handler = (*Cluster)(nil)
