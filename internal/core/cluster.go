package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/broadcast"
	"repro/internal/edgefd"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
	"repro/internal/view"
)

// Errors returned by the public API.
var (
	errInvalidWatermarks = errors.New("core: require 1 <= L <= H <= K")
	// ErrJoinFailed indicates the joiner exhausted its join attempts.
	ErrJoinFailed = errors.New("core: join failed after all attempts")
	// ErrAddressInUse indicates the cluster already contains this address.
	ErrAddressInUse = errors.New("core: hostname already in the membership ring")
	// ErrStopped indicates an operation on a stopped cluster handle.
	ErrStopped = errors.New("core: cluster handle is stopped")
)

// StatusChange describes one endpoint's transition in a view change.
type StatusChange struct {
	Endpoint node.Endpoint
	// Joined is true when the endpoint was added, false when removed.
	Joined bool
}

// ViewChange is delivered to subscribers on every configuration change.
type ViewChange struct {
	// ConfigurationID identifies the new configuration.
	ConfigurationID uint64
	// Members is the full membership of the new configuration.
	Members []node.Endpoint
	// Changes lists the endpoints added or removed relative to the previous
	// configuration.
	Changes []StatusChange
}

// Subscriber receives view-change notifications. Callbacks are invoked in
// order from a dedicated delivery goroutine, off the protocol path, so they
// may block without stalling the membership service. A callback already in
// flight when Stop is called may complete after Stop returns.
type Subscriber func(ViewChange)

// snapshot is the immutable membership state published by the engine after
// every view change. Public accessors read the latest snapshot lock-free, so
// readers only ever observe fully installed configurations.
type snapshot struct {
	configID    uint64
	members     []node.Endpoint // sorted by address; treated as immutable
	byAddr      map[node.Addr]node.Endpoint
	viewChanges int
}

// Cluster is one process' handle on the Rapid membership service. Create one
// with StartCluster (to bootstrap a new cluster) or JoinCluster (to join an
// existing one through seed processes).
//
// Internally the handle is a thin shell around a single-writer protocol
// engine (see engine.go): transport handlers enqueue typed events, one
// goroutine applies them, and the results are published as atomic snapshots.
type Cluster struct {
	settings Settings
	net      transport.Network
	client   transport.Client
	clock    simclock.Clock
	me       node.Endpoint

	// unicast always addresses the full membership; broadcaster is the
	// Settings-selected strategy for batched alerts and votes (it aliases
	// unicast unless gossip is configured).
	unicast     *broadcast.UnicastToAll
	broadcaster broadcast.Broadcaster

	events chan event
	// prio carries control-plane events (join phases) that must not queue
	// behind the N² alert/vote flood: during a 1000-node bootstrap storm a
	// seed's event queue holds thousands of batches, and a phase-1 join
	// parked behind them would time out and burn one of the joiner's
	// attempts. The engine drains prio first.
	prio     chan event
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	started atomic.Bool
	snap    atomic.Pointer[snapshot]

	notifier  *notifier
	monitorCh chan []node.Addr

	emetrics EngineMetrics
}

// EngineMetrics instruments the protocol engine. The event queue depth is
// not a stored metric: Stats() reads it live from the queue itself.
type EngineMetrics struct {
	// EventsProcessed counts events applied by the engine goroutine.
	EventsProcessed metrics.Counter
	// BatchesSent counts flushed outbound batches.
	BatchesSent metrics.Counter
	// BatchSizes aggregates alerts+votes per flushed batch.
	BatchSizes metrics.Distribution
	// GossipDuplicates counts batches dropped by gossip deduplication.
	GossipDuplicates metrics.Counter
}

// EngineStats is a point-in-time summary of the engine metrics.
type EngineStats struct {
	QueueDepth       int
	EventsProcessed  int64
	BatchesSent      int64
	BatchSizes       metrics.DistributionSummary
	GossipDuplicates int64
}

// StartCluster bootstraps a brand-new cluster consisting of just this
// process. Other processes join it by listing this address in their seeds.
func StartCluster(addr node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	c, err := newCluster(addr, settings, net)
	if err != nil {
		return nil, err
	}
	self := c.me
	if err := net.Register(addr, c); err != nil {
		return nil, fmt.Errorf("core: register %s: %w", addr, err)
	}
	c.initialize([]node.Endpoint{self})
	return c, nil
}

// JoinCluster joins an existing cluster through the given seed addresses
// using Rapid's two-phase join protocol, and returns a started handle once
// the view change admitting this process has been installed.
func JoinCluster(addr node.Addr, seeds []node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	c, err := newCluster(addr, settings, net)
	if err != nil {
		return nil, err
	}
	if err := net.Register(addr, c); err != nil {
		return nil, fmt.Errorf("core: register %s: %w", addr, err)
	}
	members, err := c.runJoinProtocol(seeds)
	if err != nil {
		net.Deregister(addr)
		return nil, err
	}
	c.initialize(members)
	return c, nil
}

// newCluster builds the unstarted handle.
func newCluster(addr node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	if err := settings.validate(); err != nil {
		return nil, err
	}
	me := node.Endpoint{Addr: addr, ID: node.NewID()}
	if settings.Metadata != nil {
		me = me.WithMetadata(settings.Metadata)
	}
	client := net.Client(addr)
	c := &Cluster{
		settings:  settings,
		net:       net,
		client:    client,
		clock:     settings.Clock,
		me:        me,
		unicast:   broadcast.NewUnicastToAll(client),
		events:    make(chan event, settings.EventQueueSize),
		prio:      make(chan event, settings.EventQueueSize),
		stopCh:    make(chan struct{}),
		notifier:  newNotifier(),
		monitorCh: make(chan []node.Addr, 1),
	}
	switch settings.Broadcast {
	case BroadcastGossip:
		c.broadcaster = broadcast.NewGossip(client, me.Addr, settings.GossipFanout, int64(me.ID.Low))
	default:
		c.broadcaster = c.unicast
	}
	return c, nil
}

// initialize installs the first configuration and starts the engine, the
// monitor manager and the subscriber delivery goroutine. The engine
// goroutine publishes the initial monitor subject set itself, keeping all
// subject updates ordered.
func (c *Cluster) initialize(members []node.Endpoint) {
	e := newEngine(c, members)
	c.started.Store(true)
	c.wg.Add(2)
	go e.run()
	go c.monitorManager()
	go c.notifier.run()
}

// enqueue submits an event to the engine, blocking if the queue is full
// (backpressure). It returns false if the cluster stopped instead.
func (c *Cluster) enqueue(ev event) bool {
	select {
	case c.events <- ev:
		return true
	case <-c.stopCh:
		return false
	}
}

// enqueuePriority submits a control-plane event on the priority queue, which
// the engine drains ahead of the data-plane flood.
func (c *Cluster) enqueuePriority(ev event) bool {
	select {
	case c.prio <- ev:
		return true
	case <-c.stopCh:
		return false
	}
}

// publishSnapshot installs the membership state readers see. Called by the
// engine goroutine only (and once during construction). members is the
// caller's sorted copy of v.Members(); reusing it saves a second O(N log N)
// sort per view change per node, but the snapshot still takes its own flat
// copy — the caller hands the same slice to subscriber callbacks and join
// responses, and a subscriber mutating ViewChange.Members must not corrupt
// what concurrent Members()/Size() readers see.
func (c *Cluster) publishSnapshot(v *view.View, members []node.Endpoint, viewChanges int) {
	members = append([]node.Endpoint(nil), members...)
	byAddr := make(map[node.Addr]node.Endpoint, len(members))
	for _, ep := range members {
		byAddr[ep.Addr] = ep
	}
	c.snap.Store(&snapshot{
		configID:    v.ConfigurationID(),
		members:     members,
		byAddr:      byAddr,
		viewChanges: viewChanges,
	})
}

// --- public accessors --------------------------------------------------------

// Addr returns this process' listen address.
func (c *Cluster) Addr() node.Addr { return c.me.Addr }

// ID returns the logical identifier this process joined with.
func (c *Cluster) ID() node.ID { return c.me.ID }

// Size returns the number of members in the current configuration.
func (c *Cluster) Size() int {
	if s := c.snap.Load(); s != nil {
		return len(s.members)
	}
	return 0
}

// Members returns the endpoints of the current configuration sorted by address.
func (c *Cluster) Members() []node.Endpoint {
	s := c.snap.Load()
	if s == nil {
		return nil
	}
	return append([]node.Endpoint(nil), s.members...)
}

// ConfigurationID returns the identifier of the current configuration.
func (c *Cluster) ConfigurationID() uint64 {
	if s := c.snap.Load(); s != nil {
		return s.configID
	}
	return 0
}

// IsMember reports whether this process is part of its own current view.
// It becomes false if the rest of the cluster removed this process.
func (c *Cluster) IsMember() bool {
	s := c.snap.Load()
	if s == nil {
		return false
	}
	_, ok := s.byAddr[c.me.Addr]
	return ok
}

// ViewChangeCount returns how many view changes this handle has applied.
func (c *Cluster) ViewChangeCount() int {
	if s := c.snap.Load(); s != nil {
		return s.viewChanges
	}
	return 0
}

// Metadata returns the metadata registered for the given member address.
func (c *Cluster) Metadata(addr node.Addr) (map[string]string, bool) {
	s := c.snap.Load()
	if s == nil {
		return nil, false
	}
	ep, ok := s.byAddr[addr]
	if !ok {
		return nil, false
	}
	return ep.Metadata, true
}

// Stats returns a point-in-time summary of the engine instrumentation.
func (c *Cluster) Stats() EngineStats {
	return EngineStats{
		QueueDepth:       len(c.events) + len(c.prio),
		EventsProcessed:  c.emetrics.EventsProcessed.Value(),
		BatchesSent:      c.emetrics.BatchesSent.Value(),
		BatchSizes:       c.emetrics.BatchSizes.Summary(),
		GossipDuplicates: c.emetrics.GossipDuplicates.Value(),
	}
}

// Metrics exposes the live engine instrumentation.
func (c *Cluster) Metrics() *EngineMetrics { return &c.emetrics }

// Subscribe registers a view-change callback. It is invoked for every
// configuration change applied after registration.
func (c *Cluster) Subscribe(cb Subscriber) { c.notifier.subscribe(cb) }

// Leave announces a graceful departure: observers of this process convert the
// announcement into REMOVE alerts so a coordinated view change removes it.
// The handle keeps serving protocol messages until Stop is called.
func (c *Cluster) Leave() {
	if !c.started.Load() {
		return
	}
	// Leave always unicasts to the full membership: it must reach every
	// observer of the leaver regardless of the gossip fanout.
	c.unicast.Broadcast(&remoting.Request{Leave: &remoting.LeaveMessage{Sender: c.me.Addr}})
}

// Stop halts all background work and deregisters from the transport. The
// handle cannot be restarted. Undelivered view-change notifications are
// discarded; at most one subscriber callback that was already executing when
// Stop was called may still complete after Stop returns.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		c.wg.Wait()
		c.notifier.stop()
		c.net.Deregister(c.me.Addr)
	})
}

// --- monitor manager ---------------------------------------------------------

// setMonitorSubjects hands the latest subject set to the monitor manager
// without ever blocking the engine: a stale pending update is replaced.
func (c *Cluster) setMonitorSubjects(subjects []node.Addr) {
	for {
		select {
		case c.monitorCh <- subjects:
			return
		case <-c.stopCh:
			return
		default:
		}
		select {
		case <-c.monitorCh:
		default:
		}
	}
}

// monitorManager owns the edge failure-detector monitors. It swaps them when
// the engine publishes a new subject set; stopping old monitors can block on
// in-flight probes, which is why this runs off the engine goroutine.
func (c *Cluster) monitorManager() {
	defer c.wg.Done()
	var current []edgefd.Monitor
	stopAll := func(ms []edgefd.Monitor) {
		for _, m := range ms {
			m.Stop()
		}
	}
	for {
		select {
		case <-c.stopCh:
			stopAll(current)
			return
		case subjects := <-c.monitorCh:
			stopAll(current)
			current = current[:0]
			factory := c.settings.FailureDetector
			for _, s := range subjects {
				m := factory(edgefd.Params{
					Observer:  c.me.Addr,
					Subject:   s,
					Client:    c.client,
					Clock:     c.clock,
					Interval:  c.settings.ProbeInterval,
					Timeout:   c.settings.ProbeTimeout,
					OnFailure: c.onSubjectFailed,
				})
				current = append(current, m)
			}
			for _, m := range current {
				m.Start()
			}
		}
	}
}

// onSubjectFailed forwards an edge failure detector verdict to the engine.
func (c *Cluster) onSubjectFailed(subject node.Addr) {
	c.enqueue(event{subjectDown: subject})
}

// --- subscriber delivery -----------------------------------------------------

// notifier delivers view changes to subscribers in order from a dedicated
// goroutine, decoupling callbacks from the protocol engine so they can block
// safely.
type notifier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []ViewChange
	subs    []Subscriber
	stopped bool
}

func newNotifier() *notifier {
	n := &notifier{}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// subscribe registers a callback for subsequent view changes.
func (n *notifier) subscribe(cb Subscriber) {
	n.mu.Lock()
	n.subs = append(n.subs, cb)
	n.mu.Unlock()
}

// publish enqueues a view change for delivery. It never blocks.
func (n *notifier) publish(vc ViewChange) {
	n.mu.Lock()
	n.queue = append(n.queue, vc)
	n.mu.Unlock()
	n.cond.Signal()
}

// stop discards undelivered view changes and lets the delivery goroutine
// exit. After stop returns, no new callback starts; at most the single
// callback already in flight keeps running (it may itself call Stop, so
// joining it here would deadlock).
func (n *notifier) stop() {
	n.mu.Lock()
	n.stopped = true
	n.queue = nil
	n.mu.Unlock()
	n.cond.Signal()
}

// run is the delivery loop. Callbacks run outside the lock, in publication
// order.
func (n *notifier) run() {
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.stopped {
			n.cond.Wait()
		}
		if len(n.queue) == 0 && n.stopped {
			n.mu.Unlock()
			return
		}
		vc := n.queue[0]
		n.queue = n.queue[1:]
		subs := append([]Subscriber(nil), n.subs...)
		n.mu.Unlock()
		for _, cb := range subs {
			cb(vc)
		}
	}
}

var _ transport.Handler = (*Cluster)(nil)
