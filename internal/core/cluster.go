package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/cutdetect"
	"repro/internal/edgefd"
	"repro/internal/fastpaxos"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
	"repro/internal/view"
)

// Errors returned by the public API.
var (
	errInvalidWatermarks = errors.New("core: require 1 <= L <= H <= K")
	// ErrJoinFailed indicates the joiner exhausted its join attempts.
	ErrJoinFailed = errors.New("core: join failed after all attempts")
	// ErrAddressInUse indicates the cluster already contains this address.
	ErrAddressInUse = errors.New("core: hostname already in the membership ring")
	// ErrStopped indicates an operation on a stopped cluster handle.
	ErrStopped = errors.New("core: cluster handle is stopped")
)

// StatusChange describes one endpoint's transition in a view change.
type StatusChange struct {
	Endpoint node.Endpoint
	// Joined is true when the endpoint was added, false when removed.
	Joined bool
}

// ViewChange is delivered to subscribers on every configuration change.
type ViewChange struct {
	// ConfigurationID identifies the new configuration.
	ConfigurationID uint64
	// Members is the full membership of the new configuration.
	Members []node.Endpoint
	// Changes lists the endpoints added or removed relative to the previous
	// configuration.
	Changes []StatusChange
}

// Subscriber receives view-change notifications. Callbacks must not block:
// they are invoked synchronously on the protocol path.
type Subscriber func(ViewChange)

// Cluster is one process' handle on the Rapid membership service. Create one
// with StartCluster (to bootstrap a new cluster) or JoinCluster (to join an
// existing one through seed processes).
type Cluster struct {
	settings Settings
	net      transport.Network
	client   transport.Client
	clock    simclock.Clock
	me       node.Endpoint

	mu            sync.Mutex
	started       bool
	stopped       bool
	view          *view.View
	cd            *cutdetect.Detector
	consensus     *fastpaxos.FastPaxos
	broadcaster   *broadcast.UnicastToAll
	monitors      []edgefd.Monitor
	pendingAlerts []remoting.AlertMessage
	alertedEdges  map[node.Addr]bool
	joinWaiters   map[node.Addr][]chan *remoting.JoinResponse
	subscribers   []Subscriber
	viewChanges   int

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// StartCluster bootstraps a brand-new cluster consisting of just this
// process. Other processes join it by listing this address in their seeds.
func StartCluster(addr node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	c, err := newCluster(addr, settings, net)
	if err != nil {
		return nil, err
	}
	self := c.me
	if err := net.Register(addr, c); err != nil {
		return nil, fmt.Errorf("core: register %s: %w", addr, err)
	}
	c.initialize([]node.Endpoint{self})
	return c, nil
}

// JoinCluster joins an existing cluster through the given seed addresses
// using Rapid's two-phase join protocol, and returns a started handle once
// the view change admitting this process has been installed.
func JoinCluster(addr node.Addr, seeds []node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	c, err := newCluster(addr, settings, net)
	if err != nil {
		return nil, err
	}
	if err := net.Register(addr, c); err != nil {
		return nil, fmt.Errorf("core: register %s: %w", addr, err)
	}
	members, err := c.runJoinProtocol(seeds)
	if err != nil {
		net.Deregister(addr)
		return nil, err
	}
	c.initialize(members)
	return c, nil
}

// newCluster builds the unstarted handle.
func newCluster(addr node.Addr, settings Settings, net transport.Network) (*Cluster, error) {
	if err := settings.validate(); err != nil {
		return nil, err
	}
	me := node.Endpoint{Addr: addr, ID: node.NewID()}
	if settings.Metadata != nil {
		me = me.WithMetadata(settings.Metadata)
	}
	client := net.Client(addr)
	c := &Cluster{
		settings:     settings,
		net:          net,
		client:       client,
		clock:        settings.Clock,
		me:           me,
		broadcaster:  broadcast.NewUnicastToAll(client),
		alertedEdges: make(map[node.Addr]bool),
		joinWaiters:  make(map[node.Addr][]chan *remoting.JoinResponse),
		stopCh:       make(chan struct{}),
	}
	return c, nil
}

// initialize installs the first configuration and starts background work.
func (c *Cluster) initialize(members []node.Endpoint) {
	c.mu.Lock()
	c.view = view.NewWithMembers(c.settings.K, members)
	c.cd = cutdetect.New(c.settings.K, c.settings.H, c.settings.L)
	c.broadcaster.SetMembership(c.view.MemberAddrs())
	c.consensus = c.newConsensusLocked()
	c.started = true
	c.mu.Unlock()

	c.restartMonitors()
	c.wg.Add(2)
	go c.alertBatchingLoop()
	go c.reinforcementLoop()
}

// newConsensusLocked builds the consensus instance for the current view.
// Callers must hold c.mu.
func (c *Cluster) newConsensusLocked() *fastpaxos.FastPaxos {
	members := c.view.MemberAddrs()
	myIndex := sort.Search(len(members), func(i int) bool { return members[i] >= c.me.Addr })
	return fastpaxos.New(fastpaxos.Config{
		MyAddr:          c.me.Addr,
		MyIndex:         myIndex,
		MembershipSize:  c.view.Size(),
		ConfigurationID: c.view.ConfigurationID(),
		Client:          c.client,
		Broadcaster:     c.broadcaster,
		OnDecide:        c.onDecide,
	})
}

// --- public accessors --------------------------------------------------------

// Addr returns this process' listen address.
func (c *Cluster) Addr() node.Addr { return c.me.Addr }

// ID returns the logical identifier this process joined with.
func (c *Cluster) ID() node.ID { return c.me.ID }

// Size returns the number of members in the current configuration.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return 0
	}
	return c.view.Size()
}

// Members returns the endpoints of the current configuration sorted by address.
func (c *Cluster) Members() []node.Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return nil
	}
	return c.view.Members()
}

// ConfigurationID returns the identifier of the current configuration.
func (c *Cluster) ConfigurationID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return 0
	}
	return c.view.ConfigurationID()
}

// IsMember reports whether this process is part of its own current view.
// It becomes false if the rest of the cluster removed this process.
func (c *Cluster) IsMember() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view != nil && c.view.Contains(c.me.Addr)
}

// ViewChangeCount returns how many view changes this handle has applied.
func (c *Cluster) ViewChangeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewChanges
}

// Metadata returns the metadata registered for the given member address.
func (c *Cluster) Metadata(addr node.Addr) (map[string]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return nil, false
	}
	ep, ok := c.view.Member(addr)
	if !ok {
		return nil, false
	}
	return ep.Metadata, true
}

// Subscribe registers a view-change callback. It is invoked for every
// configuration change applied after registration.
func (c *Cluster) Subscribe(cb Subscriber) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subscribers = append(c.subscribers, cb)
}

// Leave announces a graceful departure: observers of this process convert the
// announcement into REMOVE alerts so a coordinated view change removes it.
// The handle keeps serving protocol messages until Stop is called.
func (c *Cluster) Leave() {
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if !started {
		return
	}
	c.broadcaster.Broadcast(&remoting.Request{Leave: &remoting.LeaveMessage{Sender: c.me.Addr}})
}

// Stop halts all background work and deregisters from the transport. The
// handle cannot be restarted.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	monitors := c.monitors
	c.monitors = nil
	c.mu.Unlock()

	close(c.stopCh)
	for _, m := range monitors {
		m.Stop()
	}
	c.wg.Wait()
	c.net.Deregister(c.me.Addr)
}

// restartMonitors replaces the edge failure detectors with ones for the
// current set of subjects. Old monitors are stopped outside the lock because
// their callbacks acquire it.
func (c *Cluster) restartMonitors() {
	c.mu.Lock()
	old := c.monitors
	c.monitors = nil
	var subjects []node.Addr
	if c.started && !c.stopped && c.view.Contains(c.me.Addr) {
		subjects, _ = c.view.UniqueSubjectsOf(c.me.Addr)
	}
	factory := c.settings.FailureDetector
	var fresh []edgefd.Monitor
	for _, s := range subjects {
		m := factory(edgefd.Params{
			Observer:  c.me.Addr,
			Subject:   s,
			Client:    c.client,
			Clock:     c.clock,
			Interval:  c.settings.ProbeInterval,
			Timeout:   c.settings.ProbeTimeout,
			OnFailure: c.onSubjectFailed,
		})
		fresh = append(fresh, m)
	}
	c.monitors = fresh
	c.mu.Unlock()

	for _, m := range old {
		m.Stop()
	}
	for _, m := range fresh {
		m.Start()
	}
}

// onSubjectFailed converts an edge failure detector verdict into an
// irrevocable REMOVE alert (enqueued for the next batch).
func (c *Cluster) onSubjectFailed(subject node.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started || c.stopped || !c.view.Contains(subject) {
		return
	}
	if c.alertedEdges[subject] {
		return
	}
	rings := c.view.RingNumbers(c.me.Addr, subject)
	if len(rings) == 0 {
		return
	}
	c.alertedEdges[subject] = true
	c.enqueueAlertLocked(remoting.AlertMessage{
		EdgeSrc:         c.me.Addr,
		EdgeDst:         subject,
		Status:          remoting.EdgeDown,
		ConfigurationID: c.view.ConfigurationID(),
		RingNumbers:     rings,
	})
}

// enqueueAlertLocked buffers an alert for the next batch broadcast.
// Callers must hold c.mu.
func (c *Cluster) enqueueAlertLocked(alert remoting.AlertMessage) {
	c.pendingAlerts = append(c.pendingAlerts, alert)
}

// alertBatchingLoop flushes buffered alerts every BatchingWindow (§6).
func (c *Cluster) alertBatchingLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.clock.After(c.settings.BatchingWindow):
		}
		c.mu.Lock()
		alerts := c.pendingAlerts
		c.pendingAlerts = nil
		c.mu.Unlock()
		if len(alerts) == 0 {
			continue
		}
		c.broadcaster.Broadcast(&remoting.Request{Alerts: &remoting.BatchedAlertMessage{
			Sender: c.me.Addr,
			Alerts: alerts,
		}})
	}
}

// reinforcementLoop echoes REMOVE alerts for subjects stuck in the unstable
// report region longer than ReinforcementTimeout (§4.2, liveness).
func (c *Cluster) reinforcementLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.clock.After(c.settings.ReinforcementTick):
		}
		c.mu.Lock()
		if !c.started || c.stopped {
			c.mu.Unlock()
			continue
		}
		stuck := c.cd.UnstableLongerThan(c.clock.Now(), c.settings.ReinforcementTimeout)
		for _, subject := range stuck {
			if !c.view.Contains(subject) || c.alertedEdges[subject] {
				continue
			}
			rings := c.view.RingNumbers(c.me.Addr, subject)
			if len(rings) == 0 {
				continue
			}
			c.alertedEdges[subject] = true
			c.enqueueAlertLocked(remoting.AlertMessage{
				EdgeSrc:         c.me.Addr,
				EdgeDst:         subject,
				Status:          remoting.EdgeDown,
				ConfigurationID: c.view.ConfigurationID(),
				RingNumbers:     rings,
			})
		}
		c.mu.Unlock()
	}
}

// scheduleFallback arms the classical-Paxos fallback for the given consensus
// instance: if it has not decided within the base delay plus a per-node
// jitter, this node starts (and keeps retrying) recovery rounds.
func (c *Cluster) scheduleFallback(cons *fastpaxos.FastPaxos, myIndex, membershipSize int) {
	base := c.settings.ConsensusFallbackBase
	jitterSteps := 1
	if membershipSize > 0 {
		jitterSteps = myIndex % 8
	}
	delay := base + time.Duration(jitterSteps)*base/8
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		select {
		case <-c.stopCh:
			return
		case <-c.clock.After(delay):
		}
		for round := 0; round < 8; round++ {
			if cons.Decided() {
				return
			}
			cons.StartClassicalRound()
			select {
			case <-c.stopCh:
				return
			case <-c.clock.After(base):
			}
		}
	}()
}

var _ transport.Handler = (*Cluster)(nil)
