package core

import (
	"sort"
	"time"

	"repro/internal/cutdetect"
	"repro/internal/fastpaxos"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/view"
)

// This file implements the cluster's single-writer protocol engine. One
// goroutine — the engine loop — owns every piece of per-configuration
// protocol state: the K-ring view, the multi-process cut detector, the
// consensus instance, the pending join waiters, and the outbound batch. All
// protocol inputs (batched alerts, consensus messages, failure-detector
// verdicts, join and leave requests, timer ticks) arrive as typed events on
// one queue and are applied sequentially, so no mutex guards protocol state
// and the N² message path never contends on a lock. Transport handlers are
// thin enqueuers; see handlers.go.

// event is the union of everything the engine consumes. At most one group of
// fields is set per event. A flat struct (rather than an interface) keeps the
// hot path — inbound batches and consensus votes — allocation-free.
type event struct {
	// raw is the original request for batch events, retained so gossip mode
	// can re-broadcast it unchanged.
	raw   *remoting.Request
	batch *remoting.BatchedAlertMessage
	votes *remoting.FastRoundVoteBatch
	// network is true when the batch arrived from the transport (as opposed
	// to the engine delivering its own flush to itself in gossip mode).
	network bool

	fastRound *remoting.FastRoundPhase2b
	p1a       *remoting.Phase1a
	p1b       *remoting.Phase1b
	p2a       *remoting.Phase2a
	p2b       *remoting.Phase2b
	leave     *remoting.LeaveMessage

	preJoin     *preJoinEvent
	join        *joinEvent
	subjectDown node.Addr
	// fallback asks the engine to start a classical recovery round for the
	// given consensus instance, if it is still current and undecided.
	fallback *fastpaxos.FastPaxos
}

// preJoinEvent carries a phase-1 join request and its reply channel.
type preJoinEvent struct {
	msg   *remoting.PreJoinRequest
	reply chan *remoting.PreJoinResponse
}

// joinEvent carries a phase-2 join request and its reply channel. The engine
// either replies immediately (non-OK statuses and retries) or parks the
// channel with the join waiters until the admitting view change.
type joinEvent struct {
	msg   *remoting.JoinRequest
	reply chan *remoting.JoinResponse
	// refiles counts how many view changes re-filed this waiter's JOIN
	// alert; bounded by maxJoinRefiles.
	refiles int
}

// maxJoinRefiles bounds how many successive view changes may re-file a
// parked joiner's JOIN alert. The re-file keeps a join storm from burning
// the joiner's retry attempts, but an unbounded loop could keep admitting a
// joiner that crashed or gave up (a ghost member the failure detectors then
// have to evict); after the cap the joiner is sent back to phase 1. Keep the
// cap small: every re-file is another JOIN alert from each of the joiner's
// up-to-K parked observers per view change, so a generous cap (16 was
// tried) lets a 2000-node storm flood itself with re-filed alerts.
const maxJoinRefiles = 3

// batchKey identifies one flushed outbound batch for gossip deduplication.
type batchKey struct {
	origin node.Addr
	seq    uint64
}

// engine is the single-writer owner of all protocol state. Only the run
// goroutine touches the engine-owned fields after initialization; rapid-vet's
// singlewriter analyzer enforces that every access is reachable from an
// engine-entry root (newEngine, which happens-before the loop goroutine
// starts, and run itself).
type engine struct {
	c *Cluster

	view      *view.View           // engine-owned
	cd        *cutdetect.Detector  // engine-owned
	consensus *fastpaxos.FastPaxos // engine-owned

	alertedEdges map[node.Addr]bool // engine-owned
	// joinWaiters parks phase-2 join requests until a view change admits the
	// joiner. The full request is retained so the JOIN alert can be re-filed
	// under the next configuration if a view change races past the joiner.
	// engine-owned.
	joinWaiters map[node.Addr][]*joinEvent
	viewChanges int // engine-owned

	// Unified outbound batch: alerts and fast-round votes generated within
	// one batching window leave as a single wire message on the next flush.
	pendingAlerts []remoting.AlertMessage     // engine-owned
	pendingVotes  []remoting.FastRoundPhase2b // engine-owned
	outSeq        uint64                      // engine-owned

	// winCtl sizes the flush window between the configured floor and ceiling
	// from queue depth and arrival rate (see adaptive.go); arrivals counts
	// the data-plane events dispatched since the last flush, its rate input.
	winCtl   windowController // engine-owned
	arrivals int              // engine-owned

	// seenBatches deduplicates gossip-forwarded batches per configuration.
	seenBatches map[batchKey]bool // engine-owned
	// rumors are batches this process still re-gossips on upcoming batch
	// ticks (push gossip needs multiple rounds for whp coverage).
	rumors []rumor // engine-owned
}

// rumor is one batch awaiting further gossip rounds.
type rumor struct {
	req       *remoting.Request
	remaining int
}

// maxRumors bounds the re-gossip buffer; under extreme churn the oldest
// rumors are dropped first (their content is also the most likely to be
// superseded or already delivered).
const maxRumors = 256

// maxSeenBatches bounds the gossip dedup set. (origin, seq) keys are never
// reused, so the set only needs to cover batches that may still circulate; a
// full reset merely risks one extra round of config-filtered re-gossip.
const maxSeenBatches = 8192

// newEngine builds the engine state for the first configuration. It runs on
// the caller's goroutine; the run loop takes sole ownership afterwards (the
// goroutine start gives the required happens-before edge).
//
// engine-entry: construction precedes the loop goroutine.
func newEngine(c *Cluster, members []node.Endpoint) *engine {
	e := &engine{
		c:            c,
		view:         view.NewWithMembers(c.settings.K, members),
		cd:           cutdetect.New(c.settings.K, c.settings.H, c.settings.L),
		alertedEdges: make(map[node.Addr]bool),
		joinWaiters:  make(map[node.Addr][]*joinEvent),
		seenBatches:  make(map[batchKey]bool),
		// Seed the batch sequence from this instance's unique logical ID: a
		// process that restarts and rejoins under the same address must not
		// collide with (address, seq) dedup entries its previous incarnation
		// left behind on long-lived members.
		outSeq: c.me.ID.Low,
		winCtl: newWindowController(c.settings.BatchingWindowMin, c.settings.BatchingWindowMax, c.settings.BatchingWindow),
	}
	c.emetrics.BatchWindow.Set(int64(e.winCtl.window))
	addrs := e.view.MemberAddrs()
	c.unicast.SetMembership(addrs)
	if c.broadcaster != c.unicast {
		c.broadcaster.SetMembership(addrs)
	}
	e.consensus = e.newConsensus()
	c.publishSnapshot(e.view, e.view.Members(), e.viewChanges)
	return e
}

// run is the engine loop: the only goroutine that mutates protocol state.
//
// engine-entry: the single-writer goroutine itself.
func (e *engine) run() {
	c := e.c
	defer c.wg.Done()
	// The initial monitor subject set is published from this goroutine so
	// that it is ordered before any view change's update: publishing it from
	// the initializer could overwrite a newer set with the stale initial one.
	c.setMonitorSubjects(e.currentSubjects())
	// The flush timer is re-armed after every flush with a window the
	// controller sizes to the current load, so it is a one-shot Timer rather
	// than a fixed-period Ticker.
	flush := c.clock.Timer(e.winCtl.window)
	defer flush.Stop()
	reinforce := c.clock.Ticker(c.settings.ReinforcementTick)
	defer reinforce.Stop()
	// drainPrio applies queued control-plane events, at most maxPrioBurst per
	// call: joins get strict priority over the alert/vote flood, but each
	// loop iteration must still reach the full select so stopCh and the
	// flush/reinforcement tickers stay live under sustained join traffic.
	const maxPrioBurst = 64
	drainPrio := func() {
		for i := 0; i < maxPrioBurst; i++ {
			select {
			case ev := <-c.prio:
				e.dispatch(ev)
				c.emetrics.EventsProcessed.Add(1)
			default:
				return
			}
		}
	}
	for {
		drainPrio()
		select {
		case <-c.stopCh:
			return
		case ev := <-c.prio:
			e.dispatch(ev)
			c.emetrics.EventsProcessed.Add(1)
		case ev := <-c.events:
			e.dispatch(ev)
			c.emetrics.EventsProcessed.Add(1)
		case <-flush.C():
			// Rumors first: a batch flushed this tick had its first push
			// inside flushOutbox, so its next round belongs to the next tick.
			e.regossip()
			e.flushOutbox()
			flush.Reset(e.retuneWindow())
		case <-reinforce.C():
			e.reinforce()
		}
	}
}

// retuneWindow feeds the controller the live data-queue depth and the events
// dispatched since the last flush, publishes the resulting window to the
// BatchWindow gauge, and returns it for the flush timer's next arming.
func (e *engine) retuneWindow() time.Duration {
	c := e.c
	next := e.winCtl.retune(len(c.events), c.settings.EventQueueSize, e.arrivals)
	e.arrivals = 0
	c.emetrics.BatchWindow.Set(int64(next))
	return next
}

// dispatch routes one event to its handler.
func (e *engine) dispatch(ev event) {
	switch {
	case ev.batch != nil || ev.votes != nil:
		e.arrivals++
		e.handleBatch(ev)
	case ev.fastRound != nil:
		e.consensus.HandleFastRoundVote(ev.fastRound)
	case ev.p1a != nil:
		e.consensus.HandlePhase1a(ev.p1a)
	case ev.p1b != nil:
		e.consensus.HandlePhase1b(ev.p1b)
	case ev.p2a != nil:
		e.consensus.HandlePhase2a(ev.p2a)
	case ev.p2b != nil:
		e.consensus.HandlePhase2b(ev.p2b)
	case ev.leave != nil:
		e.handleLeave(ev.leave)
	case ev.preJoin != nil:
		e.handlePreJoin(ev.preJoin)
	case ev.join != nil:
		e.handleJoinPhase2(ev.join)
	case ev.subjectDown != "":
		e.handleSubjectFailed(ev.subjectDown)
	case ev.fallback != nil:
		e.handleFallback(ev.fallback)
	}
}

// newConsensus builds the consensus instance for the current view. Votes are
// routed into the unified outbound batch; the classical recovery path
// broadcasts directly via unicast-to-all so it needs no gossip cooperation.
func (e *engine) newConsensus() *fastpaxos.FastPaxos {
	c := e.c
	members := e.view.MemberAddrs()
	myIndex := sort.Search(len(members), func(i int) bool { return members[i] >= c.me.Addr })
	return fastpaxos.New(fastpaxos.Config{
		MyAddr:          c.me.Addr,
		MyIndex:         myIndex,
		MembershipSize:  e.view.Size(),
		ConfigurationID: e.view.ConfigurationID(),
		Client:          c.client,
		Broadcaster:     c.unicast,
		VoteSink:        e.addVote,
		OnDecide:        e.applyDecision,
	})
}

// --- outbound batching -------------------------------------------------------

// addAlert buffers an alert for the next flush.
func (e *engine) addAlert(alert remoting.AlertMessage) {
	e.pendingAlerts = append(e.pendingAlerts, alert)
}

// addVote buffers this process' fast-round vote for the next flush. It is the
// consensus VoteSink and only ever runs on the engine goroutine (consensus
// methods are invoked exclusively from dispatch).
func (e *engine) addVote(vote *remoting.FastRoundPhase2b) {
	if vote.ConfigurationID != e.view.ConfigurationID() {
		return
	}
	e.pendingVotes = append(e.pendingVotes, *vote)
}

// flushOutbox sends everything buffered during the last batching window as
// one wire message (§6, extended to consensus votes).
func (e *engine) flushOutbox() {
	if len(e.pendingAlerts) == 0 && len(e.pendingVotes) == 0 {
		return
	}
	c := e.c
	e.outSeq++
	req := &remoting.Request{}
	if len(e.pendingAlerts) > 0 {
		req.Alerts = &remoting.BatchedAlertMessage{Sender: c.me.Addr, Seq: e.outSeq, Alerts: e.pendingAlerts}
	}
	if len(e.pendingVotes) > 0 {
		req.VoteBatch = &remoting.FastRoundVoteBatch{Sender: c.me.Addr, Seq: e.outSeq, Votes: e.pendingVotes}
	}
	c.emetrics.BatchSizes.Observe(float64(len(e.pendingAlerts) + len(e.pendingVotes)))
	c.emetrics.BatchesSent.Add(1)
	e.pendingAlerts = nil
	e.pendingVotes = nil

	if c.settings.Broadcast == BroadcastGossip {
		// Gossip reaches a random fanout subset, so the sender cannot rely on
		// the network echoing the batch back: mark it seen and apply it
		// locally, then let the membership flood it.
		e.seenBatches[batchKey{origin: c.me.Addr, seq: e.outSeq}] = true
		c.broadcaster.Broadcast(req)
		e.addRumor(req)
		e.handleBatch(event{raw: req, batch: req.Alerts, votes: req.VoteBatch})
		return
	}
	// Unicast-to-all includes this process, so the batch comes back through
	// the transport like everyone else's.
	c.broadcaster.Broadcast(req)
}

// addRumor queues a batch for further gossip rounds on upcoming batch ticks.
func (e *engine) addRumor(req *remoting.Request) {
	remaining := e.c.settings.GossipRounds - 1
	if remaining <= 0 {
		return
	}
	if len(e.rumors) >= maxRumors {
		e.rumors = e.rumors[1:]
	}
	e.rumors = append(e.rumors, rumor{req: req, remaining: remaining})
}

// regossip pushes every buffered rumor to a fresh random fanout subset. Runs
// on each batch tick in gossip mode.
func (e *engine) regossip() {
	if len(e.rumors) == 0 {
		return
	}
	kept := e.rumors[:0]
	for _, r := range e.rumors {
		e.c.broadcaster.Broadcast(r.req)
		if r.remaining--; r.remaining > 0 {
			kept = append(kept, r)
		}
	}
	e.rumors = kept
}

// --- inbound protocol events -------------------------------------------------

// handleBatch applies one unified batch: gossip bookkeeping first, then
// alerts through cut detection (possibly casting this process' vote), then
// the batched fast-round votes.
func (e *engine) handleBatch(ev event) {
	c := e.c
	// Dedup and re-broadcast only exist for gossip: unicast-to-all delivers
	// each batch exactly once, so the default mode skips the bookkeeping on
	// its hot path entirely.
	if ev.network && c.settings.Broadcast == BroadcastGossip {
		key := batchKey{}
		if ev.batch != nil {
			key = batchKey{origin: ev.batch.Sender, seq: ev.batch.Seq}
		} else {
			key = batchKey{origin: ev.votes.Sender, seq: ev.votes.Seq}
		}
		if e.seenBatches[key] {
			c.emetrics.GossipDuplicates.Add(1)
			return
		}
		if len(e.seenBatches) >= maxSeenBatches {
			e.seenBatches = make(map[batchKey]bool)
		}
		e.seenBatches[key] = true
		if ev.raw != nil {
			// Re-broadcast unseen batches so gossip floods the membership,
			// as the broadcast package's contract requires, and keep pushing
			// them for the remaining gossip rounds.
			c.broadcaster.Broadcast(ev.raw)
			e.addRumor(ev.raw)
		}
	}
	if ev.batch != nil {
		e.handleAlerts(ev.batch)
	}
	if ev.votes != nil {
		for i := range ev.votes.Votes {
			e.consensus.HandleFastRoundVote(&ev.votes.Votes[i])
		}
	}
}

// handleAlerts feeds observer alerts into the cut detector and, when the
// aggregation rule fires, casts this process' consensus vote (§4.2, §4.3).
func (e *engine) handleAlerts(batch *remoting.BatchedAlertMessage) {
	now := e.c.clock.Now()
	currentConfig := e.view.ConfigurationID()
	var proposal []node.Endpoint
	downApplied := false
	for _, alert := range batch.Alerts {
		if alert.ConfigurationID != currentConfig {
			continue
		}
		var subject node.Endpoint
		if alert.Status == remoting.EdgeDown {
			ep, ok := e.view.Member(alert.EdgeDst)
			if !ok {
				continue
			}
			subject = ep
			downApplied = true
		} else {
			if e.view.Contains(alert.EdgeDst) {
				continue // JOIN alert about an existing member is invalid.
			}
			subject = node.Endpoint{Addr: alert.EdgeDst, ID: alert.JoinerID, Metadata: alert.Metadata}
		}
		proposal = append(proposal, e.cd.AggregateForProposal(alert, subject, now)...)
	}
	// Implicit alerts (§4.2, liveness) scan every unstable subject's would-be
	// observers — O(unstable x K^2) ring searches. Their outcome can only
	// change when a REMOVE alert made some observer unstable, so the scan is
	// skipped for join/vote-only batches; during a 1000-node bootstrap storm
	// (hundreds of unstable joiners, zero failures) this check was >80% of
	// all CPU. The reinforcement tick re-runs the scan as a backstop.
	if downApplied {
		proposal = append(proposal, e.cd.InvalidateFailingEdges(e.view, now)...)
	}
	e.propose(proposal)
}

// propose casts this process' consensus vote for a non-empty proposal if it
// has not voted in this configuration yet.
func (e *engine) propose(proposal []node.Endpoint) {
	if len(proposal) == 0 {
		return
	}
	cons := e.consensus
	if cons.HasProposed() {
		return
	}
	// Capture the index and size before proposing: a single-process cluster
	// decides inside Propose, which installs the next view.
	members := e.view.MemberAddrs()
	myIndex := sort.Search(len(members), func(i int) bool { return members[i] >= e.c.me.Addr })
	cons.Propose(dedupeEndpoints(proposal))
	e.scheduleFallback(cons, myIndex, len(members))
}

// handleSubjectFailed converts an edge failure detector verdict into an
// irrevocable REMOVE alert (enqueued for the next batch).
func (e *engine) handleSubjectFailed(subject node.Addr) {
	if !e.view.Contains(subject) || e.alertedEdges[subject] {
		return
	}
	rings := e.view.RingNumbers(e.c.me.Addr, subject)
	if len(rings) == 0 {
		return
	}
	e.alertedEdges[subject] = true
	e.addAlert(remoting.AlertMessage{
		EdgeSrc:         e.c.me.Addr,
		EdgeDst:         subject,
		Status:          remoting.EdgeDown,
		ConfigurationID: e.view.ConfigurationID(),
		RingNumbers:     rings,
	})
}

// handleLeave converts a graceful-leave announcement into REMOVE alerts on
// the rings where this process observes the leaver.
func (e *engine) handleLeave(msg *remoting.LeaveMessage) {
	e.handleSubjectFailed(msg.Sender)
}

// reinforce echoes REMOVE alerts for subjects stuck in the unstable report
// region longer than ReinforcementTimeout (§4.2, liveness), and re-runs the
// implicit-alert scan that handleAlerts skips for join/vote-only batches.
func (e *engine) reinforce() {
	c := e.c
	now := c.clock.Now()
	stuck := e.cd.UnstableLongerThan(now, c.settings.ReinforcementTimeout)
	for _, subject := range stuck {
		e.handleSubjectFailed(subject)
	}
	e.propose(e.cd.InvalidateFailingEdges(e.view, now))
}

// handlePreJoin serves phase 1 of the join protocol: a seed returns the
// joiner's temporary observers in the current configuration.
func (e *engine) handlePreJoin(ev *preJoinEvent) {
	msg := ev.msg
	resp := &remoting.PreJoinResponse{Sender: e.c.me.Addr}
	resp.Status = e.view.IsSafeToJoin(msg.Sender, msg.JoinerID)
	resp.ConfigurationID = e.view.ConfigurationID()
	switch resp.Status {
	case remoting.JoinSafeToJoin:
		resp.Observers = e.view.ExpectedObserversOf(msg.Sender)
	case remoting.JoinHostAlreadyInRing:
		// If the very same process (same logical ID) retries its join — for
		// example because the response to its phase-2 request was lost — the
		// view change admitting it already happened. Point it at its actual
		// observers; their phase-2 handler replies immediately with the
		// current configuration.
		if existing, ok := e.view.Member(msg.Sender); ok && existing.ID == msg.JoinerID {
			resp.Status = remoting.JoinSafeToJoin
			if obs, err := e.view.ObserversOf(msg.Sender); err == nil {
				resp.Observers = obs
			}
		}
	}
	ev.reply <- resp
}

// handleJoinPhase2 serves phase 2 of the join protocol on one of the joiner's
// temporary observers: it broadcasts a JOIN alert and parks the reply channel
// until the view change that admits the joiner is installed.
func (e *engine) handleJoinPhase2(ev *joinEvent) {
	msg := ev.msg
	c := e.c
	currentConfig := e.view.ConfigurationID()
	// If the joiner is already a member, the view change raced ahead of this
	// request (or it is a retry): answer immediately with the configuration.
	if existing, ok := e.view.Member(msg.Sender); ok && existing.ID == msg.JoinerID {
		ev.reply <- &remoting.JoinResponse{
			Sender:          c.me.Addr,
			Status:          remoting.JoinSafeToJoin,
			ConfigurationID: currentConfig,
			Members:         e.view.Members(),
		}
		return
	}
	if msg.ConfigurationID != currentConfig {
		ev.reply <- &remoting.JoinResponse{Sender: c.me.Addr, Status: remoting.JoinConfigChanged, ConfigurationID: currentConfig}
		return
	}
	rings := e.view.RingNumbers(c.me.Addr, msg.Sender)
	if len(rings) == 0 {
		// We are not one of the joiner's observers in this configuration.
		ev.reply <- &remoting.JoinResponse{Sender: c.me.Addr, Status: remoting.JoinConfigChanged, ConfigurationID: currentConfig}
		return
	}
	e.addAlert(remoting.AlertMessage{
		EdgeSrc:         c.me.Addr,
		EdgeDst:         msg.Sender,
		Status:          remoting.EdgeUp,
		ConfigurationID: currentConfig,
		RingNumbers:     rings,
		JoinerID:        msg.JoinerID,
		Metadata:        msg.Metadata,
	})
	e.joinWaiters[msg.Sender] = append(e.joinWaiters[msg.Sender], ev)
}

// handleFallback starts (or continues) the classical recovery path if the
// instance the timer was armed for is still current and undecided.
func (e *engine) handleFallback(cons *fastpaxos.FastPaxos) {
	if cons != e.consensus || cons.Decided() {
		return
	}
	cons.StartClassicalRound()
}

// scheduleFallback arms the classical-Paxos fallback for the given consensus
// instance: if it has not decided within the base delay plus a per-node
// jitter, this node asks the engine to start (and keep retrying) recovery
// rounds. The timer goroutine never touches protocol state itself.
func (e *engine) scheduleFallback(cons *fastpaxos.FastPaxos, myIndex, membershipSize int) {
	c := e.c
	base := c.settings.ConsensusFallbackBase
	jitterSteps := 1
	if membershipSize > 0 {
		jitterSteps = myIndex % 8
	}
	delay := base + time.Duration(jitterSteps)*base/8
	// The engine goroutine is wg-tracked, so the counter is non-zero here and
	// this Add cannot race Stop's Wait.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-c.stopCh:
			return
		case <-c.clock.After(delay):
		}
		for round := 0; round < 8; round++ {
			if cons.Decided() {
				return
			}
			if !c.enqueue(event{fallback: cons}) {
				return
			}
			select {
			case <-c.stopCh:
				return
			case <-c.clock.After(base):
			}
		}
	}()
}

// --- view changes -------------------------------------------------------------

// applyDecision is invoked by the consensus layer exactly once per
// configuration with the agreed multi-process cut, always on the engine
// goroutine. It installs the next configuration, resets the
// per-configuration protocol state, publishes the new snapshot, re-targets
// the failure-detector monitors, notifies subscribers, and answers joiners
// that were waiting on this view change.
func (e *engine) applyDecision(proposal []node.Endpoint) {
	c := e.c

	changes := make([]StatusChange, 0, len(proposal))
	for _, ep := range proposal {
		if existing, ok := e.view.Member(ep.Addr); ok {
			if err := e.view.RemoveMember(ep.Addr); err == nil {
				changes = append(changes, StatusChange{Endpoint: existing, Joined: false})
			}
		} else {
			if err := e.view.AddMember(ep); err == nil {
				changes = append(changes, StatusChange{Endpoint: ep, Joined: true})
			}
		}
	}

	e.viewChanges++
	newConfigID := e.view.ConfigurationID()
	members := e.view.Members()

	// Per-configuration state is reset: tallies never carry across views.
	e.cd.Clear()
	e.alertedEdges = make(map[node.Addr]bool)
	e.pendingAlerts = nil
	e.pendingVotes = nil
	// seenBatches and rumors survive the view change deliberately: (origin,
	// seq) keys are never reused, so dedup stays valid, and re-gossiping the
	// previous configuration's batches is what rescues members that have not
	// decided yet. Stale content is config-filtered on receipt.
	addrs := e.view.MemberAddrs()
	c.unicast.SetMembership(addrs)
	if c.broadcaster != c.unicast {
		c.broadcaster.SetMembership(addrs)
	}
	e.consensus = e.newConsensus()
	c.publishSnapshot(e.view, members, e.viewChanges)

	// Settle the parked joiners. Admitted ones get the new configuration.
	// A joiner the view change raced past keeps waiting if this node still
	// observes it in the new configuration: its JOIN alert is re-filed under
	// the new configuration ID so the next cut can include it, instead of
	// bouncing it back to phase 1 and burning one of its join attempts.
	joined := make(map[node.Addr]node.ID, len(changes))
	for _, change := range changes {
		if change.Joined {
			joined[change.Endpoint.Addr] = change.Endpoint.ID
		}
	}
	remaining := make(map[node.Addr][]*joinEvent)
	for addr, waiters := range e.joinWaiters {
		if joinedID, ok := joined[addr]; ok {
			// Only the incarnation that was actually admitted gets
			// SafeToJoin; a parked waiter with a different logical ID (e.g.
			// a fast restart racing its predecessor's join) must retry
			// phase 1, where it will be told the address is taken.
			admitted := &remoting.JoinResponse{
				Sender:          c.me.Addr,
				Status:          remoting.JoinSafeToJoin,
				ConfigurationID: newConfigID,
				Members:         members,
			}
			rejected := &remoting.JoinResponse{
				Sender:          c.me.Addr,
				Status:          remoting.JoinConfigChanged,
				ConfigurationID: newConfigID,
			}
			for _, w := range waiters {
				resp := admitted
				if w.msg.JoinerID != joinedID {
					resp = rejected
				}
				select {
				case w.reply <- resp:
				default:
				}
			}
			continue
		}
		rings := e.view.RingNumbers(c.me.Addr, addr)
		if len(rings) == 0 || e.view.Contains(addr) || waiters[0].refiles >= maxJoinRefiles {
			// No longer this joiner's observer, the address is taken by a
			// different process, or the re-file budget is spent: send it
			// back to phase 1.
			resp := &remoting.JoinResponse{
				Sender:          c.me.Addr,
				Status:          remoting.JoinConfigChanged,
				ConfigurationID: newConfigID,
			}
			for _, w := range waiters {
				select {
				case w.reply <- resp:
				default:
				}
			}
			continue
		}
		for _, w := range waiters {
			w.refiles++
		}
		msg := waiters[0].msg
		e.addAlert(remoting.AlertMessage{
			EdgeSrc:         c.me.Addr,
			EdgeDst:         addr,
			Status:          remoting.EdgeUp,
			ConfigurationID: newConfigID,
			RingNumbers:     rings,
			JoinerID:        msg.JoinerID,
			Metadata:        msg.Metadata,
		})
		remaining[addr] = waiters
	}
	e.joinWaiters = remaining

	// Monitors depend on the subject set, which changed with the view; the
	// monitor manager swaps them without blocking the engine.
	c.setMonitorSubjects(e.currentSubjects())

	c.notifier.publish(ViewChange{
		ConfigurationID: newConfigID,
		Members:         members,
		Changes:         changes,
	})
}

// currentSubjects returns the distinct subjects this process must monitor in
// the current configuration, or nil if it is no longer a member.
func (e *engine) currentSubjects() []node.Addr {
	if !e.view.Contains(e.c.me.Addr) {
		return nil
	}
	subjects, _ := e.view.UniqueSubjectsOf(e.c.me.Addr)
	return subjects
}

// dedupeEndpoints removes duplicate endpoints and sorts by address so every
// process that detected the same cut votes for a byte-identical proposal.
func dedupeEndpoints(in []node.Endpoint) []node.Endpoint {
	seen := make(map[node.Addr]bool, len(in))
	out := make([]node.Endpoint, 0, len(in))
	for _, ep := range in {
		if seen[ep.Addr] {
			continue
		}
		seen[ep.Addr] = true
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
