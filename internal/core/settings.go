// Package core implements the Rapid membership service (§3, §4 of the paper):
// the public API that applications use to join a cluster, receive strongly
// consistent view-change notifications, and leave. It composes the K-ring
// monitoring overlay (package view), pluggable edge failure detectors
// (package edgefd), multi-process cut detection (package cutdetect) and the
// leaderless view-change consensus (package fastpaxos) into a single service
// reachable over any transport.
package core

import (
	"time"

	"repro/internal/edgefd"
	"repro/internal/simclock"
)

// Settings are the tunables of a membership service instance. The zero value
// is not usable; start from DefaultSettings or ScaledSettings.
type Settings struct {
	// K is the number of observers per subject (ring count).
	K int
	// H is the high watermark: a subject with at least H distinct
	// observer reports is in stable report mode.
	H int
	// L is the low watermark: a subject with fewer than L reports is noise;
	// between L and H it is unstable and delays proposals.
	L int

	// ProbeInterval is the edge failure detector's probe period.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe RPC.
	ProbeTimeout time.Duration
	// FailureDetector builds the per-edge monitor; defaults to the paper's
	// ping-pong detector (40% of the last 10 probes).
	FailureDetector edgefd.Factory

	// BatchingWindow is how long alerts are buffered before being broadcast
	// as a single batched message (§6).
	BatchingWindow time.Duration

	// ConsensusFallbackBase is the base delay before an undecided node starts
	// the classical Paxos recovery round. Each node adds a deterministic
	// jitter so a single coordinator usually emerges.
	ConsensusFallbackBase time.Duration

	// ReinforcementTimeout is how long a subject may stay in the unstable
	// report region before this node's observers echo REMOVE alerts (§4.2).
	ReinforcementTimeout time.Duration
	// ReinforcementTick is how often the unstable set is checked.
	ReinforcementTick time.Duration

	// JoinAttempts bounds how many times a joiner retries the two-phase join.
	JoinAttempts int
	// JoinPhase2Timeout bounds how long a joiner (and the observer serving
	// it) waits for the view change that admits it.
	JoinPhase2Timeout time.Duration
	// JoinRetryDelay is the pause between join attempts.
	JoinRetryDelay time.Duration

	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// Metadata is application-supplied data attached to this process
	// (e.g. {"role": "backend"}), visible to all members.
	Metadata map[string]string
}

// DefaultSettings returns production-scale parameters matching the paper:
// {K, H, L} = {10, 9, 3}, 1-second probes with the 40%-of-last-10 detector,
// 100 ms alert batching.
func DefaultSettings() Settings {
	return Settings{
		K:                     10,
		H:                     9,
		L:                     3,
		ProbeInterval:         time.Second,
		ProbeTimeout:          500 * time.Millisecond,
		FailureDetector:       edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions()),
		BatchingWindow:        100 * time.Millisecond,
		ConsensusFallbackBase: 8 * time.Second,
		ReinforcementTimeout:  5 * time.Second,
		ReinforcementTick:     time.Second,
		JoinAttempts:          10,
		JoinPhase2Timeout:     12 * time.Second,
		JoinRetryDelay:        time.Second,
		Clock:                 simclock.NewReal(),
		Metadata:              nil,
	}
}

// ScaledSettings returns DefaultSettings with every duration divided by
// factor. The experiment harness uses this to run the paper's scenarios in
// compressed time (e.g. factor 50 turns 1-second probe intervals into 20 ms).
func ScaledSettings(factor float64) Settings {
	if factor <= 0 {
		factor = 1
	}
	s := DefaultSettings()
	scale := func(d time.Duration) time.Duration {
		scaled := time.Duration(float64(d) / factor)
		if scaled < time.Millisecond {
			scaled = time.Millisecond
		}
		return scaled
	}
	s.ProbeInterval = scale(s.ProbeInterval)
	s.ProbeTimeout = scale(s.ProbeTimeout)
	s.BatchingWindow = scale(s.BatchingWindow)
	s.ConsensusFallbackBase = scale(s.ConsensusFallbackBase)
	s.ReinforcementTimeout = scale(s.ReinforcementTimeout)
	s.ReinforcementTick = scale(s.ReinforcementTick)
	s.JoinPhase2Timeout = scale(s.JoinPhase2Timeout)
	s.JoinRetryDelay = scale(s.JoinRetryDelay)
	return s
}

// validate fills defaults for zero-valued fields and checks watermarks.
func (s *Settings) validate() error {
	if s.K <= 0 {
		s.K = 10
	}
	if s.H <= 0 {
		s.H = s.K - 1
		if s.H < 1 {
			s.H = 1
		}
	}
	if s.L <= 0 {
		s.L = 1
	}
	if s.L > s.H || s.H > s.K {
		return errInvalidWatermarks
	}
	if s.ProbeInterval <= 0 {
		s.ProbeInterval = time.Second
	}
	if s.ProbeTimeout <= 0 {
		s.ProbeTimeout = s.ProbeInterval / 2
	}
	if s.FailureDetector == nil {
		s.FailureDetector = edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions())
	}
	if s.BatchingWindow <= 0 {
		s.BatchingWindow = 100 * time.Millisecond
	}
	if s.ConsensusFallbackBase <= 0 {
		s.ConsensusFallbackBase = 8 * time.Second
	}
	if s.ReinforcementTimeout <= 0 {
		s.ReinforcementTimeout = 5 * time.Second
	}
	if s.ReinforcementTick <= 0 {
		s.ReinforcementTick = time.Second
	}
	if s.JoinAttempts <= 0 {
		s.JoinAttempts = 10
	}
	if s.JoinPhase2Timeout <= 0 {
		s.JoinPhase2Timeout = 12 * time.Second
	}
	if s.JoinRetryDelay <= 0 {
		s.JoinRetryDelay = time.Second
	}
	if s.Clock == nil {
		s.Clock = simclock.NewReal()
	}
	return nil
}
