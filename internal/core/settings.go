// Package core implements the Rapid membership service (§3, §4 of the paper):
// the public API that applications use to join a cluster, receive strongly
// consistent view-change notifications, and leave. It composes the K-ring
// monitoring overlay (package view), pluggable edge failure detectors
// (package edgefd), multi-process cut detection (package cutdetect) and the
// leaderless view-change consensus (package fastpaxos) into a single service
// reachable over any transport.
//
// Internally the service is a single-writer event-loop engine (engine.go):
// one goroutine owns all protocol state and consumes typed event queues,
// transport handlers are thin enqueuers, readers see atomic snapshots, and
// outbound alerts and consensus votes are coalesced into one batched wire
// message per batching window, disseminated by a Settings-selected
// broadcaster (unicast-to-all or gossip). Join phases travel on a separate
// control-plane priority queue that the engine drains first, so a seed
// serving a 1000-node bootstrap storm keeps answering joiners while
// thousands of alert/vote batches are backed up behind them.
//
// The control plane is load-adaptive (adaptive.go): the batching window is
// resized between BatchingWindowMin and BatchingWindowMax from the engine's
// queue depth and alert arrival rate (quiet clusters flush near-immediately,
// storming clusters send fewer, larger batches); past the event queue's
// high-water mark, inbound batches that reference only already-passed
// configurations are shed rather than blocking the transport (batches from
// unknown configurations only when the queue is entirely full); and the
// subscriber notification queue is bounded, coalescing view changes for slow
// subscribers (notifier.go). See docs/ARCHITECTURE.md for the full
// event-flow diagram.
package core

import (
	"fmt"
	"time"

	"repro/internal/edgefd"
	"repro/internal/simclock"
)

// BroadcastMode selects how batched alerts and consensus votes are
// disseminated to the membership.
type BroadcastMode string

const (
	// BroadcastUnicastToAll sends every batch directly to every member:
	// O(N) messages per batch from the sender, one hop. The paper's default.
	BroadcastUnicastToAll BroadcastMode = "unicast"
	// BroadcastGossip sends every batch to a random fanout subset; receivers
	// re-broadcast unseen batches, flooding the membership in O(log N) hops
	// at O(fanout) cost per process per batch.
	BroadcastGossip BroadcastMode = "gossip"
)

// Settings are the tunables of a membership service instance. The zero value
// is not usable; start from DefaultSettings or ScaledSettings.
type Settings struct {
	// K is the number of observers per subject (ring count).
	K int
	// H is the high watermark: a subject with at least H distinct
	// observer reports is in stable report mode.
	H int
	// L is the low watermark: a subject with fewer than L reports is noise;
	// between L and H it is unstable and delays proposals.
	L int

	// ProbeInterval is the edge failure detector's probe period.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe RPC.
	ProbeTimeout time.Duration
	// FailureDetector builds the per-edge monitor; defaults to the paper's
	// ping-pong detector (40% of the last 10 probes).
	FailureDetector edgefd.Factory

	// BatchingWindow is the legacy fixed flush window (§6). It now only seeds
	// the adaptive controller's defaults: a zero BatchingWindowMin defaults to
	// BatchingWindow/10 and a zero BatchingWindowMax to 4x BatchingWindow, so
	// existing callers that only set BatchingWindow keep a sensible adaptive
	// range centred on their old constant.
	BatchingWindow time.Duration
	// BatchingWindowMin is the floor of the adaptive flush window: a quiet
	// engine collapses its window to this value so joins and isolated alerts
	// are broadcast almost immediately.
	BatchingWindowMin time.Duration
	// BatchingWindowMax is the ceiling of the adaptive flush window: a
	// storming engine grows its window toward this value so alerts and votes
	// leave in fewer, larger wire batches. Must satisfy
	// 0 < BatchingWindowMin <= BatchingWindowMax.
	BatchingWindowMax time.Duration

	// Broadcast selects the dissemination strategy for batched alerts and
	// votes; defaults to BroadcastUnicastToAll. Consensus recovery messages
	// and leave announcements always use unicast-to-all, which needs no
	// re-broadcast cooperation to reach every member.
	Broadcast BroadcastMode
	// GossipFanout is how many random members each gossip hop forwards to;
	// only used with BroadcastGossip. Defaults to 8.
	GossipFanout int
	// GossipRounds is how many times each process pushes a batch it
	// originated or first received: one immediate broadcast plus re-gossip
	// on subsequent batch ticks. Multiple rounds give flooding its
	// with-high-probability coverage; one-shot forwarding can strand a
	// member without a consensus quorum. Defaults to 3.
	GossipRounds int

	// EventQueueSize bounds the engine's inbound event queue. Once the queue
	// crosses its high-water mark (3/4 of this size), inbound alert/vote
	// batches that reference only configurations this process already moved
	// past are shed — the protocol never revisits them — and when the queue
	// is entirely full, batches from unknown configurations are shed too, so
	// a storming member does not head-of-line-block its transport. Batches
	// for the current configuration (and all other protocol events) always
	// exert blocking backpressure. Defaults to 1024.
	EventQueueSize int

	// NotifierQueueBound caps the pending view-change notification queue. A
	// subscriber that blocks for more than this many view changes receives
	// coalesced notifications (ViewChange.Coalesced > 0) instead of growing
	// the queue without bound. Defaults to 64.
	NotifierQueueBound int

	// ConsensusFallbackBase is the base delay before an undecided node starts
	// the classical Paxos recovery round. Each node adds a deterministic
	// jitter so a single coordinator usually emerges.
	ConsensusFallbackBase time.Duration

	// ReinforcementTimeout is how long a subject may stay in the unstable
	// report region before this node's observers echo REMOVE alerts (§4.2).
	ReinforcementTimeout time.Duration
	// ReinforcementTick is how often the unstable set is checked.
	ReinforcementTick time.Duration

	// JoinAttempts bounds how many times a joiner retries the two-phase join.
	JoinAttempts int
	// JoinPhase2Timeout bounds how long a joiner (and the observer serving
	// it) waits for the view change that admits it.
	JoinPhase2Timeout time.Duration
	// JoinRetryDelay is the pause between join attempts.
	JoinRetryDelay time.Duration

	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// Metadata is application-supplied data attached to this process
	// (e.g. {"role": "backend"}), visible to all members.
	Metadata map[string]string
}

// DefaultSettings returns production-scale parameters matching the paper:
// {K, H, L} = {10, 9, 3}, 1-second probes with the 40%-of-last-10 detector,
// 100 ms alert batching.
func DefaultSettings() Settings {
	return Settings{
		K:                     10,
		H:                     9,
		L:                     3,
		ProbeInterval:         time.Second,
		ProbeTimeout:          500 * time.Millisecond,
		FailureDetector:       edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions()),
		BatchingWindow:        100 * time.Millisecond,
		BatchingWindowMin:     10 * time.Millisecond,
		BatchingWindowMax:     400 * time.Millisecond,
		ConsensusFallbackBase: 8 * time.Second,
		ReinforcementTimeout:  5 * time.Second,
		ReinforcementTick:     time.Second,
		JoinAttempts:          10,
		JoinPhase2Timeout:     12 * time.Second,
		JoinRetryDelay:        time.Second,
		Clock:                 simclock.NewReal(),
		Metadata:              nil,
	}
}

// ScaledSettings returns DefaultSettings with every duration divided by
// factor. The experiment harness uses this to run the paper's scenarios in
// compressed time (e.g. factor 50 turns 1-second probe intervals into 20 ms).
func ScaledSettings(factor float64) Settings {
	if factor <= 0 {
		factor = 1
	}
	s := DefaultSettings()
	scale := func(d time.Duration) time.Duration {
		scaled := time.Duration(float64(d) / factor)
		if scaled < time.Millisecond {
			scaled = time.Millisecond
		}
		return scaled
	}
	s.ProbeInterval = scale(s.ProbeInterval)
	s.ProbeTimeout = scale(s.ProbeTimeout)
	s.BatchingWindow = scale(s.BatchingWindow)
	s.BatchingWindowMin = scale(s.BatchingWindowMin)
	s.BatchingWindowMax = scale(s.BatchingWindowMax)
	s.ConsensusFallbackBase = scale(s.ConsensusFallbackBase)
	s.ReinforcementTimeout = scale(s.ReinforcementTimeout)
	s.ReinforcementTick = scale(s.ReinforcementTick)
	s.JoinPhase2Timeout = scale(s.JoinPhase2Timeout)
	s.JoinRetryDelay = scale(s.JoinRetryDelay)
	return s
}

// validate fills defaults for zero-valued fields and checks watermarks.
func (s *Settings) validate() error {
	if s.K <= 0 {
		s.K = 10
	}
	if s.H <= 0 {
		s.H = s.K - 1
		if s.H < 1 {
			s.H = 1
		}
	}
	if s.L <= 0 {
		s.L = 1
	}
	if s.L > s.H || s.H > s.K {
		return errInvalidWatermarks
	}
	if s.ProbeInterval <= 0 {
		s.ProbeInterval = time.Second
	}
	if s.ProbeTimeout <= 0 {
		s.ProbeTimeout = s.ProbeInterval / 2
	}
	if s.FailureDetector == nil {
		s.FailureDetector = edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions())
	}
	// The adaptive window range must be coherent: zero values take defaults
	// (derived from BatchingWindow so legacy single-knob callers keep a range
	// centred on their constant), but explicitly negative values or an
	// inverted floor/ceiling relation are configuration mistakes and are
	// rejected instead of silently rewritten.
	if s.BatchingWindow < 0 || s.BatchingWindowMin < 0 || s.BatchingWindowMax < 0 {
		return fmt.Errorf("core: negative batching window (window=%v floor=%v ceiling=%v)",
			s.BatchingWindow, s.BatchingWindowMin, s.BatchingWindowMax)
	}
	if s.BatchingWindow == 0 {
		s.BatchingWindow = 100 * time.Millisecond
	}
	if s.BatchingWindowMin == 0 {
		s.BatchingWindowMin = s.BatchingWindow / 10
		if s.BatchingWindowMin <= 0 {
			s.BatchingWindowMin = time.Millisecond
		}
	}
	if s.BatchingWindowMax == 0 {
		s.BatchingWindowMax = 4 * s.BatchingWindow
	}
	if s.BatchingWindowMin > s.BatchingWindowMax {
		return fmt.Errorf("core: batching window floor %v exceeds ceiling %v",
			s.BatchingWindowMin, s.BatchingWindowMax)
	}
	switch s.Broadcast {
	case "":
		s.Broadcast = BroadcastUnicastToAll
	case BroadcastUnicastToAll, BroadcastGossip:
	default:
		return fmt.Errorf("core: unknown broadcast mode %q", s.Broadcast)
	}
	if s.GossipFanout <= 0 {
		s.GossipFanout = 8
	}
	if s.GossipRounds <= 0 {
		s.GossipRounds = 3
	}
	if s.EventQueueSize <= 0 {
		s.EventQueueSize = 1024
	}
	if s.NotifierQueueBound <= 0 {
		s.NotifierQueueBound = 64
	}
	if s.ConsensusFallbackBase <= 0 {
		s.ConsensusFallbackBase = 8 * time.Second
	}
	if s.ReinforcementTimeout <= 0 {
		s.ReinforcementTimeout = 5 * time.Second
	}
	if s.ReinforcementTick <= 0 {
		s.ReinforcementTick = time.Second
	}
	if s.JoinAttempts <= 0 {
		s.JoinAttempts = 10
	}
	if s.JoinPhase2Timeout <= 0 {
		s.JoinPhase2Timeout = 12 * time.Second
	}
	if s.JoinRetryDelay <= 0 {
		s.JoinRetryDelay = time.Second
	}
	if s.Clock == nil {
		s.Clock = simclock.NewReal()
	}
	return nil
}
