package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/simnet"
)

func TestWindowControllerGrowsAndShrinks(t *testing.T) {
	const floor, ceiling = 10 * time.Millisecond, 160 * time.Millisecond
	w := newWindowController(floor, ceiling, 40*time.Millisecond)
	if w.window != 40*time.Millisecond {
		t.Fatalf("controller should start at the clamped legacy window, got %v", w.window)
	}
	if c := newWindowController(floor, ceiling, time.Millisecond); c.window != floor {
		t.Fatalf("start below the floor should clamp to it, got %v", c.window)
	}
	if c := newWindowController(floor, ceiling, time.Second); c.window != ceiling {
		t.Fatalf("start above the ceiling should clamp to it, got %v", c.window)
	}

	// A deep queue doubles the window per retune until the ceiling holds.
	for i, want := range []time.Duration{80, 160, 160} {
		if got := w.retune(512, 1024, 0); got != want*time.Millisecond {
			t.Fatalf("retune %d under deep queue: got %v, want %v", i, got, want*time.Millisecond)
		}
	}

	// Idle retunes collapse back to the floor and stay there.
	for i, want := range []time.Duration{80, 40, 20, 10, 10} {
		if got := w.retune(0, 1024, 0); got != want*time.Millisecond {
			t.Fatalf("idle retune %d: got %v, want %v", i, got, want*time.Millisecond)
		}
	}

	// The arrival threshold is a rate: at the floor a handful of events in
	// the short window already signals a storm (minGrowArrivals)...
	if got := w.retune(0, 1024, minGrowArrivals); got != 2*floor {
		t.Fatalf("arrival storm at the floor should grow the window: got %v", got)
	}
	// ...while the same absolute count does not move a ceiling-length window
	// (32*160/160 = 32 needed), so moderate load holds steady.
	w.window = ceiling
	if got := w.retune(4, 1024, growArrivals-1); got != ceiling {
		t.Fatalf("moderate load should hold the window at the ceiling, got %v", got)
	}
}

// TestAdaptiveWindowOnManualClock drives a live engine with a manual clock:
// idle flush ticks must collapse the window from its starting value to the
// floor, and a synthetic alert storm must then grow it to the ceiling.
func TestAdaptiveWindowOnManualClock(t *testing.T) {
	clk := simclock.NewManual(time.Unix(0, 0))
	net := simnet.New(simnet.Options{Seed: 99})
	s := DefaultSettings()
	s.Clock = clk
	s.BatchingWindow = 40 * time.Millisecond
	s.BatchingWindowMin = 10 * time.Millisecond
	s.BatchingWindowMax = 160 * time.Millisecond
	c, err := StartCluster("seed:1", s, net)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer func() {
		// Stop blocks on manual-clock sleepers (join retry etc.) only if any
		// exist; the engine itself exits via stopCh.
		go clk.Advance(time.Hour)
		c.Stop()
	}()

	// Wait until the engine armed its flush timer and reinforcement ticker,
	// so clock advances cannot race the loop's startup.
	if !waitUntil(t, 5*time.Second, func() bool { return clk.PendingWaiters() >= 2 }) {
		t.Fatal("engine never armed its timers")
	}
	if got := c.Stats().BatchWindow; got != s.BatchingWindow {
		t.Fatalf("window should start at the legacy BatchingWindow, got %v", got)
	}

	// storm sends enough current-configuration alert batches to cross the
	// controller's arrival threshold. The alerts name a subject that is not a
	// member, so the cut detector ignores their content entirely — the test
	// exercises arrival accounting, not cut detection.
	storm := func() {
		configID := c.ConfigurationID()
		for i := 0; i < 2*growArrivals; i++ {
			req := &remoting.Request{Alerts: &remoting.BatchedAlertMessage{
				Sender: "storm:1",
				Seq:    uint64(i),
				Alerts: []remoting.AlertMessage{{
					EdgeSrc:         "storm:1",
					EdgeDst:         "ghost:1",
					Status:          remoting.EdgeDown,
					ConfigurationID: configID,
					RingNumbers:     []int{0},
				}},
			}}
			if _, err := c.HandleRequest(context.Background(), "storm:1", req); err != nil {
				t.Fatalf("HandleRequest: %v", err)
			}
		}
	}

	// advanceUntil fires flush ticks (optionally re-storming before each) and
	// waits for the engine to publish the expected window.
	advanceUntil := func(want time.Duration, stormEachTick bool) {
		t.Helper()
		for i := 0; i < 20; i++ {
			if stormEachTick {
				storm()
				// The engine must have dispatched the storm before the flush
				// tick retunes, or arrivals would still be zero.
				if !waitUntil(t, 5*time.Second, func() bool { return c.Stats().QueueDepth == 0 }) {
					t.Fatal("engine did not drain the synthetic storm")
				}
			}
			window := c.Stats().BatchWindow
			clk.Advance(window)
			if !waitUntil(t, 5*time.Second, func() bool {
				return c.Stats().BatchWindow != window || window == want
			}) {
				t.Fatalf("flush tick did not retune the window from %v", window)
			}
			// Only advance again once the timer is re-armed for the new window.
			if !waitUntil(t, 5*time.Second, func() bool { return clk.PendingWaiters() >= 2 }) {
				t.Fatal("flush timer was not re-armed")
			}
			if c.Stats().BatchWindow == want {
				return
			}
		}
		t.Fatalf("window never reached %v (at %v)", want, c.Stats().BatchWindow)
	}

	advanceUntil(s.BatchingWindowMin, false) // idle: collapse to the floor
	advanceUntil(s.BatchingWindowMax, true)  // storm: grow to the ceiling

	if shed := c.Stats().ShedBatches; shed != 0 {
		t.Fatalf("current-configuration storm must not be shed, got %d", shed)
	}
}
