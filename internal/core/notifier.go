package core

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/node"
)

// notifier delivers view changes to subscribers in order from a dedicated
// goroutine, decoupling callbacks from the protocol engine so they can block
// safely. The pending queue is bounded: once a slow subscriber is `bound`
// view changes behind, further publications coalesce into the newest queued
// entry instead of growing the queue, so notifier memory is O(bound x N)
// rather than O(viewChanges x N) no matter how long a callback blocks. A
// coalesced notification carries the newest configuration and membership
// plus the net Changes across the gap, and marks the gap with
// ViewChange.Coalesced > 0.
type notifier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []ViewChange
	subs    []Subscriber
	stopped bool

	// bound caps len(queue); publish never blocks and never exceeds it.
	bound int
	// coalesced counts view changes merged away by the bound (EngineStats).
	coalesced *metrics.Counter
}

func newNotifier(bound int, coalesced *metrics.Counter) *notifier {
	if bound < 1 {
		bound = 1
	}
	n := &notifier{bound: bound, coalesced: coalesced}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// subscribe registers a callback for subsequent view changes.
func (n *notifier) subscribe(cb Subscriber) {
	n.mu.Lock()
	n.subs = append(n.subs, cb)
	n.mu.Unlock()
}

// publish enqueues a view change for delivery. It never blocks: at the queue
// bound the newest queued entry absorbs the publication instead.
func (n *notifier) publish(vc ViewChange) {
	n.mu.Lock()
	if len(n.queue) >= n.bound {
		n.queue[len(n.queue)-1] = coalesceViewChanges(n.queue[len(n.queue)-1], vc)
		n.coalesced.Add(1)
	} else {
		n.queue = append(n.queue, vc)
	}
	n.mu.Unlock()
	n.cond.Signal()
}

// depth returns the number of undelivered notifications (EngineStats).
func (n *notifier) depth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// stop discards undelivered view changes and lets the delivery goroutine
// exit. After stop returns, no new callback starts; at most the single
// callback already in flight keeps running (it may itself call Stop, so
// joining it here would deadlock).
func (n *notifier) stop() {
	n.mu.Lock()
	n.stopped = true
	n.queue = nil
	n.mu.Unlock()
	n.cond.Signal()
}

// run is the delivery loop. Callbacks run outside the lock, in publication
// order.
func (n *notifier) run() {
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.stopped {
			n.cond.Wait()
		}
		if len(n.queue) == 0 && n.stopped {
			n.mu.Unlock()
			return
		}
		vc := n.queue[0]
		n.queue = n.queue[1:]
		subs := append([]Subscriber(nil), n.subs...)
		n.mu.Unlock()
		for _, cb := range subs {
			cb(vc)
		}
	}
}

// coalesceViewChanges merges a newly published view change into the newest
// queued one. The result carries the new configuration and full membership
// (always a snapshot of the latest view), the net status changes across both
// notifications, and a Coalesced count marking how many separate view changes
// the subscriber will not see individually.
func coalesceViewChanges(old, vc ViewChange) ViewChange {
	return ViewChange{
		ConfigurationID: vc.ConfigurationID,
		Members:         vc.Members,
		Changes:         mergeStatusChanges(old.Changes, vc.Changes),
		Coalesced:       old.Coalesced + vc.Coalesced + 1,
	}
}

// mergeStatusChanges computes the net per-address transitions of two
// consecutive change sets, relative to the state the subscriber last saw:
//
//   - join then remove cancels out (the subscriber never saw the member);
//   - remove then join keeps both, in that order (the old incarnation left,
//     a new endpoint — possibly a restart under the same address — arrived);
//   - a repeated transition in the same direction keeps the newest endpoint.
//
// Each address contributes at most one remove followed by at most one join,
// in first-appearance order, so coalesced Changes stay O(distinct addresses).
func mergeStatusChanges(first, second []StatusChange) []StatusChange {
	type netChange struct {
		removed *StatusChange
		joined  *StatusChange
	}
	order := make([]node.Addr, 0, len(first)+len(second))
	byAddr := make(map[node.Addr]*netChange, len(first)+len(second))
	apply := func(ch StatusChange) {
		nc, ok := byAddr[ch.Endpoint.Addr]
		if !ok {
			nc = &netChange{}
			byAddr[ch.Endpoint.Addr] = nc
			order = append(order, ch.Endpoint.Addr)
		}
		if ch.Joined {
			nc.joined = &ch
			return
		}
		if nc.joined != nil {
			// The join the subscriber never saw is cancelled by this remove.
			nc.joined = nil
			return
		}
		nc.removed = &ch
	}
	for _, ch := range first {
		apply(ch)
	}
	for _, ch := range second {
		apply(ch)
	}
	out := make([]StatusChange, 0, len(order))
	for _, addr := range order {
		nc := byAddr[addr]
		if nc.removed != nil {
			out = append(out, *nc.removed)
		}
		if nc.joined != nil {
			out = append(out, *nc.joined)
		}
	}
	return out
}
