package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/node"
	"repro/internal/remoting"
)

// runJoinProtocol performs Rapid's two-phase join (§4.1, §6) from the
// joiner's side and returns the membership of the configuration that admitted
// this process.
//
// Phase 1: ask a seed for this joiner's K temporary observers in the seed's
// current configuration. Phase 2: contact those observers; each broadcasts a
// JOIN alert and replies once the view change that includes the joiner has
// been installed. If the configuration changes underneath the joiner, the
// whole sequence is retried.
func (c *Cluster) runJoinProtocol(seeds []node.Addr) ([]node.Endpoint, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: join requires at least one seed")
	}
	var lastErr error = ErrJoinFailed
	for attempt := 0; attempt < c.settings.JoinAttempts; attempt++ {
		select {
		case <-c.stopCh:
			return nil, ErrStopped
		default:
		}
		seed := seeds[attempt%len(seeds)]
		members, err := c.joinOnce(seed)
		if err == nil {
			return members, nil
		}
		lastErr = err
		if err == ErrAddressInUse {
			return nil, err
		}
		c.clock.Sleep(c.settings.JoinRetryDelay)
	}
	return nil, fmt.Errorf("%w: %v", ErrJoinFailed, lastErr)
}

// joinOnce runs one attempt of the two-phase join against a single seed.
func (c *Cluster) joinOnce(seed node.Addr) ([]node.Endpoint, error) {
	// Phase 1: obtain the configuration and this joiner's temporary observers.
	ctx, cancel := context.WithTimeout(context.Background(), c.settings.JoinPhase2Timeout)
	defer cancel()
	resp, err := c.client.Send(ctx, seed, &remoting.Request{PreJoin: &remoting.PreJoinRequest{
		Sender:   c.me.Addr,
		JoinerID: c.me.ID,
	}})
	if err != nil {
		return nil, fmt.Errorf("core: pre-join to seed %s: %w", seed, err)
	}
	if resp.PreJoin == nil {
		return nil, fmt.Errorf("core: malformed pre-join response from %s", seed)
	}
	switch resp.PreJoin.Status {
	case remoting.JoinSafeToJoin:
	case remoting.JoinHostAlreadyInRing:
		return nil, ErrAddressInUse
	case remoting.JoinUUIDAlreadyInRing:
		// Regenerate the logical identifier and let the caller retry.
		c.me.ID = node.NewID()
		return nil, fmt.Errorf("core: identifier collision, regenerated ID")
	default:
		return nil, fmt.Errorf("core: seed %s not ready: %s", seed, resp.PreJoin.Status)
	}
	observers := resp.PreJoin.Observers
	if len(observers) == 0 {
		return nil, fmt.Errorf("core: seed %s returned no observers", seed)
	}
	configID := resp.PreJoin.ConfigurationID

	// Phase 2: contact every distinct temporary observer; the first complete
	// response wins. Observers answer after the admitting view change.
	distinct := make([]node.Addr, 0, len(observers))
	seen := make(map[node.Addr]bool)
	for _, o := range observers {
		if !seen[o] {
			seen[o] = true
			distinct = append(distinct, o)
		}
	}

	type outcome struct {
		resp *remoting.JoinResponse
		err  error
	}
	results := make(chan outcome, len(distinct))
	var wg sync.WaitGroup
	for _, observer := range distinct {
		observer := observer
		wg.Add(1)
		go func() {
			defer wg.Done()
			joinCtx, joinCancel := context.WithTimeout(context.Background(), c.settings.JoinPhase2Timeout)
			defer joinCancel()
			r, err := c.client.Send(joinCtx, observer, &remoting.Request{Join: &remoting.JoinRequest{
				Sender:          c.me.Addr,
				JoinerID:        c.me.ID,
				ConfigurationID: configID,
				Metadata:        c.me.Metadata,
			}})
			if err != nil {
				results <- outcome{err: err}
				return
			}
			if r.Join == nil {
				results <- outcome{err: fmt.Errorf("core: malformed join response from %s", observer)}
				return
			}
			results <- outcome{resp: r.Join}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var lastErr error
	for out := range results {
		if out.err != nil {
			lastErr = out.err
			continue
		}
		switch out.resp.Status {
		case remoting.JoinSafeToJoin:
			if len(out.resp.Members) > 0 {
				return out.resp.Members, nil
			}
			lastErr = fmt.Errorf("core: join response carried no members")
		case remoting.JoinConfigChanged, remoting.JoinViewChangeInProgress:
			lastErr = fmt.Errorf("core: configuration changed during join (%s)", out.resp.Status)
		case remoting.JoinHostAlreadyInRing:
			return nil, ErrAddressInUse
		default:
			lastErr = fmt.Errorf("core: join rejected: %s", out.resp.Status)
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no observer answered the join request")
	}
	return nil, lastErr
}
