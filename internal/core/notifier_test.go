package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/simnet"
)

func ep(i int, joined bool) StatusChange {
	return StatusChange{
		Endpoint: node.Endpoint{Addr: addr(i), ID: node.ID{High: uint64(i), Low: uint64(i)}},
		Joined:   joined,
	}
}

func TestMergeStatusChanges(t *testing.T) {
	// Join then remove inside the gap cancels out: the subscriber never saw
	// the member, so the net transition is empty.
	got := mergeStatusChanges([]StatusChange{ep(1, true)}, []StatusChange{ep(1, false)})
	if len(got) != 0 {
		t.Fatalf("join+remove should cancel, got %v", got)
	}

	// Remove then rejoin keeps both transitions in order: the subscriber must
	// learn that the old incarnation left and a new endpoint arrived.
	rejoin := ep(2, true)
	rejoin.Endpoint.ID = node.ID{High: 99, Low: 99}
	got = mergeStatusChanges([]StatusChange{ep(2, false)}, []StatusChange{rejoin})
	if len(got) != 2 || got[0].Joined || !got[1].Joined || got[1].Endpoint.ID.High != 99 {
		t.Fatalf("remove+rejoin should keep both transitions, got %v", got)
	}

	// Unrelated addresses pass through in first-appearance order.
	got = mergeStatusChanges([]StatusChange{ep(1, true)}, []StatusChange{ep(2, false)})
	if len(got) != 2 || got[0].Endpoint.Addr != addr(1) || got[1].Endpoint.Addr != addr(2) {
		t.Fatalf("independent changes should be concatenated, got %v", got)
	}

	// Remove, rejoin, remove again: the rejoin cancels, the removal remains.
	got = mergeStatusChanges([]StatusChange{ep(3, false), ep(3, true)}, []StatusChange{ep(3, false)})
	if len(got) != 1 || got[0].Joined {
		t.Fatalf("remove+join+remove should net to one removal, got %v", got)
	}
}

// TestNotifierBoundsQueueAndCoalesces publishes far more view changes than
// the queue bound while the only subscriber is blocked: the pending queue
// must never exceed the bound, publish must never block, and once released
// the subscriber must see every view change accounted for — individually or
// inside a coalesced notification carrying the newest membership.
func TestNotifierBoundsQueueAndCoalesces(t *testing.T) {
	const bound, total = 4, 100
	var coalescedCounter metrics.Counter
	n := newNotifier(bound, &coalescedCounter)
	go n.run()
	defer n.stop()

	release := make(chan struct{})
	var mu sync.Mutex
	var got []ViewChange
	n.subscribe(func(vc ViewChange) {
		mu.Lock()
		got = append(got, vc)
		mu.Unlock()
		<-release
	})

	members := []node.Endpoint{{Addr: addr(0)}}
	start := time.Now()
	for i := 1; i <= total; i++ {
		n.publish(ViewChange{
			ConfigurationID: uint64(i),
			Members:         members,
			Changes:         []StatusChange{ep(i, true)},
		})
		if d := n.depth(); d > bound {
			t.Fatalf("queue depth %d exceeds bound %d", d, bound)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("publish blocked behind the slow subscriber (%v for %d publishes)", elapsed, total)
	}
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		accounted := 0
		for _, vc := range got {
			accounted += 1 + vc.Coalesced
		}
		last := ViewChange{}
		if len(got) > 0 {
			last = got[len(got)-1]
		}
		mu.Unlock()
		if accounted == total {
			if last.ConfigurationID != total {
				t.Fatalf("last delivery should carry the newest configuration, got %d", last.ConfigurationID)
			}
			if coalescedCounter.Value() == 0 || int(coalescedCounter.Value()) != total-len(got) {
				t.Fatalf("coalesced counter %d inconsistent with %d deliveries of %d publishes",
					coalescedCounter.Value(), len(got), total)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d view changes accounted for after release", accounted, total)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterNotifierCoalescesUnderBlockedSubscriber is the end-to-end
// version: a cluster whose only subscriber blocks through a series of real
// view changes must keep its pending-notification queue at the configured
// bound, keep installing views (the protocol path never blocks on the
// notifier), and deliver a coalesced notification once the subscriber wakes.
func TestClusterNotifierCoalescesUnderBlockedSubscriber(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 23})
	settings := testSettings()
	settings.NotifierQueueBound = 1
	node.SeedIDGenerator(23)
	seed, err := StartCluster(addr(0), settings, net)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var mu sync.Mutex
	var got []ViewChange
	seed.Subscribe(func(vc ViewChange) {
		mu.Lock()
		got = append(got, vc)
		mu.Unlock()
		<-release
	})
	clusters := []*Cluster{seed}
	defer func() { stopAll(clusters) }()

	const joins = 5
	for i := 1; i <= joins; i++ {
		c, err := JoinCluster(addr(i), []node.Addr{addr(0)}, settings, net)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		clusters = append(clusters, c)
	}
	if !waitUntil(t, 30*time.Second, func() bool { return seed.Size() == joins+1 }) {
		t.Fatalf("view changes stalled behind a blocked subscriber: size=%d", seed.Size())
	}
	stats := seed.Stats()
	if stats.NotifierDepth > 1 {
		t.Fatalf("notifier depth %d exceeds bound 1", stats.NotifierDepth)
	}
	if stats.NotifierCoalesced == 0 {
		t.Fatalf("expected coalesced view changes with bound 1 and %d joins, stats=%+v", joins, stats)
	}
	close(release)

	if !waitUntil(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		accounted := 0
		for _, vc := range got {
			accounted += 1 + vc.Coalesced
		}
		return accounted == joins && len(got) > 0 &&
			len(got[len(got)-1].Members) == joins+1
	}) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("released subscriber did not account for all view changes: %v", got)
	}
}
