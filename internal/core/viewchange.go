package core

import (
	"repro/internal/node"
	"repro/internal/remoting"
)

// onDecide is invoked by the consensus layer exactly once per configuration
// with the agreed multi-process cut. It installs the next configuration,
// resets the per-configuration protocol state, notifies subscribers, and
// answers any joiners that were waiting on this view change.
func (c *Cluster) onDecide(proposal []node.Endpoint) {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return
	}

	changes := make([]StatusChange, 0, len(proposal))
	for _, ep := range proposal {
		if existing, ok := c.view.Member(ep.Addr); ok {
			if err := c.view.RemoveMember(ep.Addr); err == nil {
				changes = append(changes, StatusChange{Endpoint: existing, Joined: false})
			}
		} else {
			if err := c.view.AddMember(ep); err == nil {
				changes = append(changes, StatusChange{Endpoint: ep, Joined: true})
			}
		}
	}

	c.viewChanges++
	newConfigID := c.view.ConfigurationID()
	members := c.view.Members()

	// Per-configuration state is reset: tallies never carry across views.
	c.cd.Clear()
	c.alertedEdges = make(map[node.Addr]bool)
	c.pendingAlerts = nil
	c.broadcaster.SetMembership(c.view.MemberAddrs())
	c.consensus = c.newConsensusLocked()

	// Collect join waiters to answer after releasing the lock.
	type waiterBatch struct {
		chans []chan *remoting.JoinResponse
		resp  *remoting.JoinResponse
	}
	var waiters []waiterBatch
	for _, change := range changes {
		if !change.Joined {
			continue
		}
		chans, ok := c.joinWaiters[change.Endpoint.Addr]
		if !ok {
			continue
		}
		delete(c.joinWaiters, change.Endpoint.Addr)
		waiters = append(waiters, waiterBatch{
			chans: chans,
			resp: &remoting.JoinResponse{
				Sender:          c.me.Addr,
				Status:          remoting.JoinSafeToJoin,
				ConfigurationID: newConfigID,
				Members:         members,
			},
		})
	}

	subscribers := append([]Subscriber(nil), c.subscribers...)
	vc := ViewChange{
		ConfigurationID: newConfigID,
		Members:         members,
		Changes:         changes,
	}
	c.mu.Unlock()

	// Monitors depend on the subject set, which changed with the view.
	c.restartMonitors()

	for _, w := range waiters {
		for _, ch := range w.chans {
			select {
			case ch <- w.resp:
			default:
			}
		}
	}
	for _, sub := range subscribers {
		sub(vc)
	}
}
