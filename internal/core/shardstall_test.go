package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simnet"
)

// countingHandler counts deliveries without ever blocking.
type countingHandler struct{ delivered atomic.Int64 }

func (h *countingHandler) HandleRequest(context.Context, node.Addr, *remoting.Request) (*remoting.Response, error) {
	h.delivered.Add(1)
	return remoting.AckResponse(), nil
}

// TestShardWorkerSurvivesOverloadedEndpoint is the head-of-line-blocking
// regression test for the sharded simnet: all endpoints of a single-shard
// network share one delivery worker, so before the engine grew overload
// shedding, a member whose event queue filled would block the worker inside
// its handler and starve every other endpoint on the shard. The victim here
// is a cluster whose engine never runs (built but not initialized), so its
// queue saturates deterministically; a flood of past-configuration batches
// into it must be shed at the high-water mark — never blocking the worker —
// and a bystander sharing the shard must receive all of its own traffic.
func TestShardWorkerSurvivesOverloadedEndpoint(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 3, Shards: 1}) // one shard: worst-case sharing
	defer net.Close()

	const queueSize = 8 // high water = 6
	victim, _, pastID := shedTestCluster(t, queueSize)
	if err := net.Register("overload-victim:1", victim); err != nil {
		t.Fatal(err)
	}

	bystander := &countingHandler{}
	if err := net.Register("bystander:1", bystander); err != nil {
		t.Fatal(err)
	}
	defer net.Deregister("bystander:1")

	sender := net.Client("sender:1")
	probe := &remoting.Request{Probe: &remoting.ProbeRequest{Sender: "sender:1"}}

	// Interleave a past-configuration flood to the victim with messages to
	// the bystander on the same shard. Without shedding, the worker would
	// block forever once the victim's queue filled and the bystander would
	// stop receiving.
	const floods, probes = 512, 64
	for i := 0; i < floods; i++ {
		sender.SendBestEffort("overload-victim:1", alertBatch(pastID, uint64(i)))
		if i%(floods/probes) == 0 {
			sender.SendBestEffort("bystander:1", probe)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if bystander.delivered.Load() >= probes && victim.Stats().ShedBatches == floods-6 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := bystander.delivered.Load(); got < probes {
		t.Fatalf("bystander received %d of %d messages: shard worker stalled behind the overloaded endpoint", got, probes)
	}
	// The victim's queue holds its six pre-high-water batches; every later
	// one must have been shed.
	stats := victim.Stats()
	if stats.QueueDepth != 6 || stats.ShedBatches != floods-6 {
		t.Fatalf("expected 6 queued + %d shed batches, got %+v", floods-6, stats)
	}
}
