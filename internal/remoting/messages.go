// Package remoting defines the wire-level message types exchanged by the
// membership service: join phases, edge alerts, failure-detector probes,
// Fast-Paxos votes, classical Paxos phases, and leave announcements. It also
// provides a compact hand-rolled binary codec (see codec.go) so that real
// transports (TCP) and the simulated network can account for message sizes.
//
// The set of messages mirrors the RPCs of the Rapid paper (§4, §6): JOIN is a
// two-phase protocol (pre-join to a seed, then join to the K temporary
// observers); REMOVE/JOIN alerts are batched and broadcast; consensus votes
// are counted for the Fast Paxos fast path with classical Paxos as fallback.
package remoting

import "repro/internal/node"

// EdgeStatus describes what an observer reports about an edge to a subject.
type EdgeStatus int

const (
	// EdgeDown is a REMOVE alert: the observer cannot reach the subject.
	EdgeDown EdgeStatus = iota
	// EdgeUp is a JOIN alert: the subject asked to join through this observer.
	EdgeUp
)

// String renders the edge status as the paper's alert names.
func (s EdgeStatus) String() string {
	if s == EdgeUp {
		return "JOIN"
	}
	return "REMOVE"
}

// JoinStatus is the outcome of a join phase.
type JoinStatus int

const (
	// JoinStatusUnknown is the zero value and never a valid response.
	JoinStatusUnknown JoinStatus = iota
	// JoinSafeToJoin indicates the joiner may proceed to phase 2.
	JoinSafeToJoin
	// JoinHostAlreadyInRing indicates the address is already a member.
	JoinHostAlreadyInRing
	// JoinUUIDAlreadyInRing indicates the logical ID was already used.
	JoinUUIDAlreadyInRing
	// JoinConfigChanged indicates the configuration moved; retry phase 1.
	JoinConfigChanged
	// JoinViewChangeInProgress asks the joiner to retry shortly.
	JoinViewChangeInProgress
)

// String names the join status.
func (s JoinStatus) String() string {
	switch s {
	case JoinSafeToJoin:
		return "SAFE_TO_JOIN"
	case JoinHostAlreadyInRing:
		return "HOSTNAME_ALREADY_IN_RING"
	case JoinUUIDAlreadyInRing:
		return "UUID_ALREADY_IN_RING"
	case JoinConfigChanged:
		return "CONFIG_CHANGED"
	case JoinViewChangeInProgress:
		return "VIEW_CHANGE_IN_PROGRESS"
	default:
		return "UNKNOWN"
	}
}

// NodeStatus is what a probed process reports about itself.
type NodeStatus int

const (
	// NodeOK means the process is a healthy member of its configuration.
	NodeOK NodeStatus = iota
	// NodeBootstrapping means the process is still joining; observers do not
	// treat unanswered probes during bootstrap as failures.
	NodeBootstrapping
)

// Rank orders Paxos rounds. Ranks are compared first by Round then by NodeIndex
// so that concurrent proposers use disjoint ranks.
type Rank struct {
	Round     uint64
	NodeIndex uint64
}

// Less reports whether r orders strictly before other.
func (r Rank) Less(other Rank) bool {
	if r.Round != other.Round {
		return r.Round < other.Round
	}
	return r.NodeIndex < other.NodeIndex
}

// Equal reports whether two ranks are identical.
func (r Rank) Equal(other Rank) bool { return r == other }

// IsZero reports whether the rank is unset.
func (r Rank) IsZero() bool { return r.Round == 0 && r.NodeIndex == 0 }

// PreJoinRequest is phase 1 of a join: the joiner asks a seed which processes
// are its temporary observers in the current configuration.
type PreJoinRequest struct {
	Sender   node.Addr
	JoinerID node.ID
}

// PreJoinResponse carries the join status, the configuration the seed is in,
// and the joiner's K temporary observers.
type PreJoinResponse struct {
	Sender          node.Addr
	Status          JoinStatus
	ConfigurationID uint64
	Observers       []node.Addr
}

// JoinRequest is phase 2 of a join, sent to each temporary observer, which
// will broadcast a JOIN alert about the joiner.
type JoinRequest struct {
	Sender          node.Addr
	JoinerID        node.ID
	ConfigurationID uint64
	RingNumbers     []int
	Metadata        map[string]string
}

// JoinResponse is returned to the joiner once the view change that includes
// it has been decided (or immediately with a non-OK status).
type JoinResponse struct {
	Sender          node.Addr
	Status          JoinStatus
	ConfigurationID uint64
	Members         []node.Endpoint
}

// AlertMessage is a single REMOVE or JOIN report about an edge from an
// observer to a subject, in a given configuration.
type AlertMessage struct {
	EdgeSrc         node.Addr // observer
	EdgeDst         node.Addr // subject
	Status          EdgeStatus
	ConfigurationID uint64
	RingNumbers     []int
	// JoinerID and Metadata accompany JOIN alerts so that every process can
	// construct the joiner's endpoint when the view change is applied.
	JoinerID node.ID
	Metadata map[string]string
}

// BatchedAlertMessage groups alerts generated within one batching window, as
// Rapid batches multiple alerts into a single message before sending (§6).
type BatchedAlertMessage struct {
	Sender node.Addr
	// Seq is the sender's outbound batch sequence number. Gossip broadcast
	// re-forwards batches, so receivers deduplicate on (Sender, Seq).
	Seq    uint64
	Alerts []AlertMessage
}

// ProbeRequest is an edge failure-detector probe from an observer.
type ProbeRequest struct {
	Sender node.Addr
}

// ProbeResponse acknowledges a probe with the subject's status.
type ProbeResponse struct {
	Sender node.Addr
	Status NodeStatus
}

// FastRoundPhase2b is a vote in the leaderless Fast Paxos round: the sender
// proposes (votes for) the membership-change Proposal it detected.
type FastRoundPhase2b struct {
	Sender          node.Addr
	ConfigurationID uint64
	Proposal        []node.Endpoint
}

// FastRoundVoteBatch groups fast-round votes flushed within one batching
// window. The membership service coalesces consensus votes and alerts into a
// single outbound wire message per window (§6 extended to the vote path): a
// Request may carry both an Alerts and a VoteBatch payload.
type FastRoundVoteBatch struct {
	Sender node.Addr
	// Seq is the sender's outbound batch sequence number, shared with the
	// Alerts payload flushed in the same window (gossip deduplication).
	Seq   uint64
	Votes []FastRoundPhase2b
}

// Phase1a is the classical Paxos prepare message of the recovery path.
type Phase1a struct {
	Sender          node.Addr
	ConfigurationID uint64
	Rank            Rank
}

// Phase1b is the promise: the highest rank accepted so far and its value.
type Phase1b struct {
	Sender          node.Addr
	ConfigurationID uint64
	Rnd             Rank
	VRnd            Rank
	VVal            []node.Endpoint
}

// Phase2a asks acceptors to accept a value at a rank.
type Phase2a struct {
	Sender          node.Addr
	ConfigurationID uint64
	Rank            Rank
	Value           []node.Endpoint
}

// Phase2b is an acceptance, gossiped to learners.
type Phase2b struct {
	Sender          node.Addr
	ConfigurationID uint64
	Rank            Rank
	Value           []node.Endpoint
}

// LeaveMessage announces a voluntary departure. Observers of the leaver
// convert it into REMOVE alerts so the view change is coordinated.
type LeaveMessage struct {
	Sender node.Addr
}

// GetViewRequest asks a logically centralized ensemble member (§5, Rapid-C)
// for the current configuration of the managed cluster.
type GetViewRequest struct {
	Sender node.Addr
	// KnownConfigurationID lets the ensemble answer cheaply ("unchanged")
	// when the caller is already up to date.
	KnownConfigurationID uint64
}

// GetViewResponse returns the ensemble's current configuration.
type GetViewResponse struct {
	Sender          node.Addr
	ConfigurationID uint64
	Members         []node.Endpoint
	// Unchanged is true when the caller's known configuration is current, in
	// which case Members is omitted.
	Unchanged bool
}

// CustomMessage is an escape hatch for other protocols sharing the same
// transports (the SWIM/Memberlist, ZooKeeper-style and gossip-FD baselines,
// and the end-to-end application workloads). Kind names the protocol-specific
// message; Data is an opaque payload encoded by the owning package.
type CustomMessage struct {
	Kind string
	Data []byte
}

// Request is the union of all RPC request payloads. Exactly one of the
// pointer fields is set, with one exception: the outbound batching path may
// combine Alerts and VoteBatch in a single request so that everything
// generated within one batching window travels as one wire message. Using a
// flat union avoids per-message type information on the wire and keeps
// encoding deterministic.
type Request struct {
	PreJoin   *PreJoinRequest
	Join      *JoinRequest
	Alerts    *BatchedAlertMessage
	Probe     *ProbeRequest
	FastRound *FastRoundPhase2b
	P1a       *Phase1a
	P1b       *Phase1b
	P2a       *Phase2a
	P2b       *Phase2b
	Leave     *LeaveMessage
	GetView   *GetViewRequest
	Custom    *CustomMessage
	VoteBatch *FastRoundVoteBatch
}

// Response is the union of all RPC response payloads.
type Response struct {
	PreJoin *PreJoinResponse
	Join    *JoinResponse
	Probe   *ProbeResponse
	View    *GetViewResponse
	Custom  *CustomMessage
	// Ack acknowledges one-way style messages (alerts, votes, paxos phases).
	Ack bool
}

// Kind returns a short label for the request type, used in logs and metrics.
func (r *Request) Kind() string {
	switch {
	case r == nil:
		return "nil"
	case r.PreJoin != nil:
		return "prejoin"
	case r.Join != nil:
		return "join"
	case r.Alerts != nil && r.VoteBatch != nil:
		return "alerts+votes"
	case r.Alerts != nil:
		return "alerts"
	case r.Probe != nil:
		return "probe"
	case r.FastRound != nil:
		return "fastround"
	case r.P1a != nil:
		return "phase1a"
	case r.P1b != nil:
		return "phase1b"
	case r.P2a != nil:
		return "phase2a"
	case r.P2b != nil:
		return "phase2b"
	case r.Leave != nil:
		return "leave"
	case r.GetView != nil:
		return "getview"
	case r.VoteBatch != nil:
		return "votebatch"
	case r.Custom != nil:
		return "custom:" + r.Custom.Kind
	default:
		return "empty"
	}
}

// AckResponse is the canonical acknowledgement response.
func AckResponse() *Response { return &Response{Ack: true} }
