package remoting

// The wire codec is a compact hand-rolled binary format. The previous codec
// was encoding/gob, which re-transmits type descriptors with every message
// (each Encoder/Decoder pair here is single-use), costing both CPU and the
// bandwidth that Table 2 of the paper accounts. The format:
//
//	byte 0   codec version (currently 2)
//	uvarint  field mask: bit i set means union field i is present
//	...      each present field's payload, in mask bit order
//
// Scalars are varint-encoded except hash-valued quantities (configuration
// identifiers, 128-bit node IDs), which are fixed-width little-endian: they
// are uniformly random, so a varint would on average be longer. Maps are
// encoded with sorted keys, and there is no per-message type information, so
// encoding is deterministic: equal messages produce identical bytes.
//
// Zero-length slices, maps and byte strings decode as nil, mirroring gob's
// behaviour of omitting zero values, so round-trips through this codec agree
// with round-trips through the old gob codec value-for-value.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/node"
)

// codecVersion tags every encoded message so the format can evolve. Version
// 2 added the batch Seq field and the FastRoundVoteBatch union member; a
// version-1 peer rejects version-2 frames outright instead of mis-decoding.
const codecVersion = 2

// ErrCodecVersion indicates a message encoded with an unknown format version.
var ErrCodecVersion = errors.New("remoting: unknown codec version")

// errTruncated indicates the buffer ended before the message did.
var errTruncated = errors.New("truncated message")

// Request union field bits, in encoding order.
const (
	reqPreJoin = 1 << iota
	reqJoin
	reqAlerts
	reqProbe
	reqFastRound
	reqP1a
	reqP1b
	reqP2a
	reqP2b
	reqLeave
	reqGetView
	reqCustom
	reqVoteBatch
)

// Response union field bits, in encoding order.
const (
	respPreJoin = 1 << iota
	respJoin
	respProbe
	respView
	respCustom
	respAck
)

// EncodeRequest serializes a request. The byte length of the result is what
// transports report to the bandwidth accounting used for Table 2 of the paper.
func EncodeRequest(req *Request) ([]byte, error) {
	return appendRequest(make([]byte, 0, 128), req), nil
}

// DecodeRequest deserializes a request previously produced by EncodeRequest.
func DecodeRequest(data []byte) (*Request, error) {
	d := decoder{buf: data}
	req := d.request()
	if d.err == nil && d.off != len(d.buf) {
		d.err = fmt.Errorf("%d trailing bytes", len(d.buf)-d.off)
	}
	if d.err != nil {
		if errors.Is(d.err, ErrCodecVersion) {
			return nil, fmt.Errorf("remoting: decode request: %w", d.err)
		}
		return nil, fmt.Errorf("remoting: decode request: invalid message: %w", d.err)
	}
	return req, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(resp *Response) ([]byte, error) {
	return appendResponse(make([]byte, 0, 64), resp), nil
}

// DecodeResponse deserializes a response previously produced by EncodeResponse.
func DecodeResponse(data []byte) (*Response, error) {
	d := decoder{buf: data}
	resp := d.response()
	if d.err == nil && d.off != len(d.buf) {
		d.err = fmt.Errorf("%d trailing bytes", len(d.buf)-d.off)
	}
	if d.err != nil {
		if errors.Is(d.err, ErrCodecVersion) {
			return nil, fmt.Errorf("remoting: decode response: %w", d.err)
		}
		return nil, fmt.Errorf("remoting: decode response: invalid message: %w", d.err)
	}
	return resp, nil
}

// sizeBufPool recycles scratch buffers for the Size functions, which need the
// encoded length but not the bytes.
var sizeBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// RequestSize returns the encoded size of a request in bytes. The simulated
// network uses this for byte accounting without shipping encoded bytes
// around; a pooled scratch buffer keeps it allocation-free at steady state.
func RequestSize(req *Request) int {
	bp := sizeBufPool.Get().(*[]byte)
	b := appendRequest((*bp)[:0], req)
	n := len(b)
	*bp = b[:0]
	sizeBufPool.Put(bp)
	return n
}

// ResponseSize returns the encoded size of a response in bytes.
func ResponseSize(resp *Response) int {
	bp := sizeBufPool.Get().(*[]byte)
	b := appendResponse((*bp)[:0], resp)
	n := len(b)
	*bp = b[:0]
	sizeBufPool.Put(bp)
	return n
}

// --- encoding ----------------------------------------------------------------

func appendRequest(b []byte, req *Request) []byte {
	b = append(b, codecVersion)
	var mask uint64
	if req != nil {
		if req.PreJoin != nil {
			mask |= reqPreJoin
		}
		if req.Join != nil {
			mask |= reqJoin
		}
		if req.Alerts != nil {
			mask |= reqAlerts
		}
		if req.Probe != nil {
			mask |= reqProbe
		}
		if req.FastRound != nil {
			mask |= reqFastRound
		}
		if req.P1a != nil {
			mask |= reqP1a
		}
		if req.P1b != nil {
			mask |= reqP1b
		}
		if req.P2a != nil {
			mask |= reqP2a
		}
		if req.P2b != nil {
			mask |= reqP2b
		}
		if req.Leave != nil {
			mask |= reqLeave
		}
		if req.GetView != nil {
			mask |= reqGetView
		}
		if req.Custom != nil {
			mask |= reqCustom
		}
		if req.VoteBatch != nil {
			mask |= reqVoteBatch
		}
	}
	b = binary.AppendUvarint(b, mask)
	if mask == 0 {
		return b
	}
	if req.PreJoin != nil {
		b = appendString(b, string(req.PreJoin.Sender))
		b = appendID(b, req.PreJoin.JoinerID)
	}
	if req.Join != nil {
		m := req.Join
		b = appendString(b, string(m.Sender))
		b = appendID(b, m.JoinerID)
		b = appendU64(b, m.ConfigurationID)
		b = appendInts(b, m.RingNumbers)
		b = appendMetadata(b, m.Metadata)
	}
	if req.Alerts != nil {
		m := req.Alerts
		b = appendString(b, string(m.Sender))
		b = binary.AppendUvarint(b, m.Seq)
		b = binary.AppendUvarint(b, uint64(len(m.Alerts)))
		for i := range m.Alerts {
			b = appendAlert(b, &m.Alerts[i])
		}
	}
	if req.Probe != nil {
		b = appendString(b, string(req.Probe.Sender))
	}
	if req.FastRound != nil {
		m := req.FastRound
		b = appendString(b, string(m.Sender))
		b = appendU64(b, m.ConfigurationID)
		b = appendEndpoints(b, m.Proposal)
	}
	if req.P1a != nil {
		m := req.P1a
		b = appendString(b, string(m.Sender))
		b = appendU64(b, m.ConfigurationID)
		b = appendRank(b, m.Rank)
	}
	if req.P1b != nil {
		m := req.P1b
		b = appendString(b, string(m.Sender))
		b = appendU64(b, m.ConfigurationID)
		b = appendRank(b, m.Rnd)
		b = appendRank(b, m.VRnd)
		b = appendEndpoints(b, m.VVal)
	}
	if req.P2a != nil {
		m := req.P2a
		b = appendString(b, string(m.Sender))
		b = appendU64(b, m.ConfigurationID)
		b = appendRank(b, m.Rank)
		b = appendEndpoints(b, m.Value)
	}
	if req.P2b != nil {
		m := req.P2b
		b = appendString(b, string(m.Sender))
		b = appendU64(b, m.ConfigurationID)
		b = appendRank(b, m.Rank)
		b = appendEndpoints(b, m.Value)
	}
	if req.Leave != nil {
		b = appendString(b, string(req.Leave.Sender))
	}
	if req.GetView != nil {
		b = appendString(b, string(req.GetView.Sender))
		b = appendU64(b, req.GetView.KnownConfigurationID)
	}
	if req.Custom != nil {
		b = appendString(b, req.Custom.Kind)
		b = appendBytes(b, req.Custom.Data)
	}
	if req.VoteBatch != nil {
		m := req.VoteBatch
		b = appendString(b, string(m.Sender))
		b = binary.AppendUvarint(b, m.Seq)
		b = binary.AppendUvarint(b, uint64(len(m.Votes)))
		for i := range m.Votes {
			v := &m.Votes[i]
			b = appendString(b, string(v.Sender))
			b = appendU64(b, v.ConfigurationID)
			b = appendEndpoints(b, v.Proposal)
		}
	}
	return b
}

func appendResponse(b []byte, resp *Response) []byte {
	b = append(b, codecVersion)
	var mask uint64
	if resp != nil {
		if resp.PreJoin != nil {
			mask |= respPreJoin
		}
		if resp.Join != nil {
			mask |= respJoin
		}
		if resp.Probe != nil {
			mask |= respProbe
		}
		if resp.View != nil {
			mask |= respView
		}
		if resp.Custom != nil {
			mask |= respCustom
		}
		if resp.Ack {
			mask |= respAck
		}
	}
	b = binary.AppendUvarint(b, mask)
	if mask == 0 {
		return b
	}
	if resp.PreJoin != nil {
		m := resp.PreJoin
		b = appendString(b, string(m.Sender))
		b = binary.AppendUvarint(b, uint64(m.Status))
		b = appendU64(b, m.ConfigurationID)
		b = appendAddrs(b, m.Observers)
	}
	if resp.Join != nil {
		m := resp.Join
		b = appendString(b, string(m.Sender))
		b = binary.AppendUvarint(b, uint64(m.Status))
		b = appendU64(b, m.ConfigurationID)
		b = appendEndpoints(b, m.Members)
	}
	if resp.Probe != nil {
		m := resp.Probe
		b = appendString(b, string(m.Sender))
		b = binary.AppendUvarint(b, uint64(m.Status))
	}
	if resp.View != nil {
		m := resp.View
		b = appendString(b, string(m.Sender))
		b = appendU64(b, m.ConfigurationID)
		b = appendEndpoints(b, m.Members)
		b = appendBool(b, m.Unchanged)
	}
	if resp.Custom != nil {
		b = appendString(b, resp.Custom.Kind)
		b = appendBytes(b, resp.Custom.Data)
	}
	return b
}

func appendAlert(b []byte, a *AlertMessage) []byte {
	b = appendString(b, string(a.EdgeSrc))
	b = appendString(b, string(a.EdgeDst))
	b = binary.AppendUvarint(b, uint64(a.Status))
	b = appendU64(b, a.ConfigurationID)
	b = appendInts(b, a.RingNumbers)
	b = appendID(b, a.JoinerID)
	b = appendMetadata(b, a.Metadata)
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, data []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

// appendU64 writes a fixed-width little-endian 64-bit value; used for
// hash-valued fields where varints would be counterproductive.
func appendU64(b []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, x)
}

func appendID(b []byte, id node.ID) []byte {
	b = appendU64(b, id.High)
	return appendU64(b, id.Low)
}

func appendRank(b []byte, r Rank) []byte {
	b = binary.AppendUvarint(b, r.Round)
	return binary.AppendUvarint(b, r.NodeIndex)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendInts(b []byte, xs []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = binary.AppendVarint(b, int64(x))
	}
	return b
}

func appendAddrs(b []byte, addrs []node.Addr) []byte {
	b = binary.AppendUvarint(b, uint64(len(addrs)))
	for _, a := range addrs {
		b = appendString(b, string(a))
	}
	return b
}

func appendEndpoints(b []byte, eps []node.Endpoint) []byte {
	b = binary.AppendUvarint(b, uint64(len(eps)))
	for i := range eps {
		b = appendString(b, string(eps[i].Addr))
		b = appendID(b, eps[i].ID)
		b = appendMetadata(b, eps[i].Metadata)
	}
	return b
}

// appendMetadata encodes a string map with sorted keys so that encoding is
// deterministic (gob's map encoding was not).
func appendMetadata(b []byte, md map[string]string) []byte {
	b = binary.AppendUvarint(b, uint64(len(md)))
	if len(md) == 0 {
		return b
	}
	keys := make([]string, 0, len(md))
	for k := range md {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = appendString(b, k)
		b = appendString(b, md[k])
	}
	return b
}

// --- decoding ----------------------------------------------------------------

// decoder is a cursor over an encoded message. The first error sticks; all
// reads after an error return zero values, so call sites stay linear.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(errTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(errTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(errTruncated)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(errTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// count reads a collection length and bounds it by the bytes remaining (every
// element occupies at least one byte), so corrupt input cannot force a huge
// allocation.
func (d *decoder) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(errTruncated)
		return 0
	}
	return int(n)
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) addr() node.Addr { return node.Addr(d.string()) }

func (d *decoder) id() node.ID {
	high := d.u64()
	low := d.u64()
	return node.ID{High: high, Low: low}
}

func (d *decoder) rank() Rank {
	round := d.uvarint()
	idx := d.uvarint()
	return Rank{Round: round, NodeIndex: idx}
}

func (d *decoder) ints() []int {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.varint())
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) addrs() []node.Addr {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]node.Addr, n)
	for i := range out {
		out[i] = d.addr()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) endpoints() []node.Endpoint {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]node.Endpoint, n)
	for i := range out {
		out[i].Addr = d.addr()
		out[i].ID = d.id()
		out[i].Metadata = d.metadata()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) metadata() map[string]string {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := d.string()
		out[k] = d.string()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) version() {
	if v := d.byte(); d.err == nil && v != codecVersion {
		d.fail(fmt.Errorf("%w: %d", ErrCodecVersion, v))
	}
}

func (d *decoder) request() *Request {
	d.version()
	mask := d.uvarint()
	req := &Request{}
	if d.err != nil {
		return req
	}
	if mask&reqPreJoin != 0 {
		req.PreJoin = &PreJoinRequest{Sender: d.addr(), JoinerID: d.id()}
	}
	if mask&reqJoin != 0 {
		req.Join = &JoinRequest{
			Sender:          d.addr(),
			JoinerID:        d.id(),
			ConfigurationID: d.u64(),
			RingNumbers:     d.ints(),
			Metadata:        d.metadata(),
		}
	}
	if mask&reqAlerts != 0 {
		m := &BatchedAlertMessage{Sender: d.addr(), Seq: d.uvarint()}
		n := d.count()
		if n > 0 {
			m.Alerts = make([]AlertMessage, n)
			for i := range m.Alerts {
				m.Alerts[i] = AlertMessage{
					EdgeSrc:         d.addr(),
					EdgeDst:         d.addr(),
					Status:          EdgeStatus(d.uvarint()),
					ConfigurationID: d.u64(),
					RingNumbers:     d.ints(),
					JoinerID:        d.id(),
					Metadata:        d.metadata(),
				}
			}
			if d.err != nil {
				m.Alerts = nil
			}
		}
		req.Alerts = m
	}
	if mask&reqProbe != 0 {
		req.Probe = &ProbeRequest{Sender: d.addr()}
	}
	if mask&reqFastRound != 0 {
		req.FastRound = &FastRoundPhase2b{
			Sender:          d.addr(),
			ConfigurationID: d.u64(),
			Proposal:        d.endpoints(),
		}
	}
	if mask&reqP1a != 0 {
		req.P1a = &Phase1a{Sender: d.addr(), ConfigurationID: d.u64(), Rank: d.rank()}
	}
	if mask&reqP1b != 0 {
		req.P1b = &Phase1b{
			Sender:          d.addr(),
			ConfigurationID: d.u64(),
			Rnd:             d.rank(),
			VRnd:            d.rank(),
			VVal:            d.endpoints(),
		}
	}
	if mask&reqP2a != 0 {
		req.P2a = &Phase2a{
			Sender:          d.addr(),
			ConfigurationID: d.u64(),
			Rank:            d.rank(),
			Value:           d.endpoints(),
		}
	}
	if mask&reqP2b != 0 {
		req.P2b = &Phase2b{
			Sender:          d.addr(),
			ConfigurationID: d.u64(),
			Rank:            d.rank(),
			Value:           d.endpoints(),
		}
	}
	if mask&reqLeave != 0 {
		req.Leave = &LeaveMessage{Sender: d.addr()}
	}
	if mask&reqGetView != 0 {
		req.GetView = &GetViewRequest{Sender: d.addr(), KnownConfigurationID: d.u64()}
	}
	if mask&reqCustom != 0 {
		req.Custom = &CustomMessage{Kind: d.string(), Data: d.bytes()}
	}
	if mask&reqVoteBatch != 0 {
		m := &FastRoundVoteBatch{Sender: d.addr(), Seq: d.uvarint()}
		n := d.count()
		if n > 0 {
			m.Votes = make([]FastRoundPhase2b, n)
			for i := range m.Votes {
				m.Votes[i] = FastRoundPhase2b{
					Sender:          d.addr(),
					ConfigurationID: d.u64(),
					Proposal:        d.endpoints(),
				}
			}
			if d.err != nil {
				m.Votes = nil
			}
		}
		req.VoteBatch = m
	}
	if mask&^uint64((reqVoteBatch<<1)-1) != 0 {
		d.fail(fmt.Errorf("unknown request fields in mask %#x", mask))
	}
	return req
}

func (d *decoder) response() *Response {
	d.version()
	mask := d.uvarint()
	resp := &Response{}
	if d.err != nil {
		return resp
	}
	if mask&respPreJoin != 0 {
		resp.PreJoin = &PreJoinResponse{
			Sender:          d.addr(),
			Status:          JoinStatus(d.uvarint()),
			ConfigurationID: d.u64(),
			Observers:       d.addrs(),
		}
	}
	if mask&respJoin != 0 {
		resp.Join = &JoinResponse{
			Sender:          d.addr(),
			Status:          JoinStatus(d.uvarint()),
			ConfigurationID: d.u64(),
			Members:         d.endpoints(),
		}
	}
	if mask&respProbe != 0 {
		resp.Probe = &ProbeResponse{Sender: d.addr(), Status: NodeStatus(d.uvarint())}
	}
	if mask&respView != 0 {
		resp.View = &GetViewResponse{
			Sender:          d.addr(),
			ConfigurationID: d.u64(),
			Members:         d.endpoints(),
			Unchanged:       d.bool(),
		}
	}
	if mask&respCustom != 0 {
		resp.Custom = &CustomMessage{Kind: d.string(), Data: d.bytes()}
	}
	resp.Ack = mask&respAck != 0
	if mask&^uint64((respAck<<1)-1) != 0 {
		d.fail(fmt.Errorf("unknown response fields in mask %#x", mask))
	}
	return resp
}
