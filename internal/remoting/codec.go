package remoting

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// EncodeRequest serializes a request with encoding/gob. The byte length of
// the result is what transports report to the bandwidth accounting used for
// Table 2 of the paper.
func EncodeRequest(req *Request) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, fmt.Errorf("remoting: encode request: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRequest deserializes a request previously produced by EncodeRequest.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return nil, fmt.Errorf("remoting: decode request: %w", err)
	}
	return &req, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(resp *Response) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, fmt.Errorf("remoting: encode response: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResponse deserializes a response previously produced by EncodeResponse.
func DecodeResponse(data []byte) (*Response, error) {
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("remoting: decode response: %w", err)
	}
	return &resp, nil
}

// RequestSize returns the encoded size of a request in bytes, or 0 if the
// request cannot be encoded. The simulated network uses this for byte
// accounting without shipping encoded bytes around.
func RequestSize(req *Request) int {
	data, err := EncodeRequest(req)
	if err != nil {
		return 0
	}
	return len(data)
}

// ResponseSize returns the encoded size of a response in bytes.
func ResponseSize(resp *Response) int {
	data, err := EncodeResponse(resp)
	if err != nil {
		return 0
	}
	return len(data)
}
