package remoting

// Cross-codec tests: the binary codec must agree value-for-value with the
// old encoding/gob codec (kept below as a test-only reference), must encode
// deterministically, and must reject corrupt input without panicking or
// over-allocating.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/node"
)

// --- reference implementation: the pre-binary-codec gob codec ----------------

func gobEncodeRequest(req *Request) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

func gobEncodeResponse(resp *Response) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecodeResponse(data []byte) (*Response, error) {
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// --- randomized message generation ------------------------------------------

func randAddr(r *rand.Rand) node.Addr {
	return node.Addr(fmt.Sprintf("10.%d.%d.%d:%d", r.Intn(256), r.Intn(256), r.Intn(256), 1+r.Intn(65535)))
}

func randID(r *rand.Rand) node.ID {
	return node.ID{High: r.Uint64(), Low: r.Uint64()}
}

func randMetadata(r *rand.Rand) map[string]string {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	md := make(map[string]string, n)
	for i := 0; i < n; i++ {
		md[fmt.Sprintf("key-%d", r.Intn(10))] = fmt.Sprintf("val-%d", r.Intn(100))
	}
	return md
}

func randInts(r *rand.Rand) []int {
	n := r.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(10)
	}
	return out
}

func randEndpoints(r *rand.Rand) []node.Endpoint {
	n := r.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]node.Endpoint, n)
	for i := range out {
		out[i] = node.Endpoint{Addr: randAddr(r), ID: randID(r), Metadata: randMetadata(r)}
	}
	return out
}

func randAddrs(r *rand.Rand) []node.Addr {
	n := r.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]node.Addr, n)
	for i := range out {
		out[i] = randAddr(r)
	}
	return out
}

func randRank(r *rand.Rand) Rank {
	return Rank{Round: uint64(r.Intn(100)), NodeIndex: uint64(r.Intn(64))}
}

func randAlert(r *rand.Rand) AlertMessage {
	a := AlertMessage{
		EdgeSrc:         randAddr(r),
		EdgeDst:         randAddr(r),
		Status:          EdgeStatus(r.Intn(2)),
		ConfigurationID: r.Uint64(),
		RingNumbers:     randInts(r),
	}
	if a.Status == EdgeUp {
		a.JoinerID = randID(r)
		a.Metadata = randMetadata(r)
	}
	return a
}

func randAlertBatch(r *rand.Rand) *BatchedAlertMessage {
	m := &BatchedAlertMessage{Sender: randAddr(r), Seq: uint64(r.Intn(1 << 20))}
	for i, n := 0, r.Intn(6); i < n; i++ {
		m.Alerts = append(m.Alerts, randAlert(r))
	}
	return m
}

func randVoteBatch(r *rand.Rand) *FastRoundVoteBatch {
	m := &FastRoundVoteBatch{Sender: randAddr(r), Seq: uint64(r.Intn(1 << 20))}
	for i, n := 0, r.Intn(4); i < n; i++ {
		m.Votes = append(m.Votes, FastRoundPhase2b{
			Sender:          randAddr(r),
			ConfigurationID: r.Uint64(),
			Proposal:        randEndpoints(r),
		})
	}
	return m
}

func randRequest(r *rand.Rand) *Request {
	req := &Request{}
	switch r.Intn(14) {
	case 0:
		req.PreJoin = &PreJoinRequest{Sender: randAddr(r), JoinerID: randID(r)}
	case 1:
		req.Join = &JoinRequest{
			Sender:          randAddr(r),
			JoinerID:        randID(r),
			ConfigurationID: r.Uint64(),
			RingNumbers:     randInts(r),
			Metadata:        randMetadata(r),
		}
	case 2:
		req.Alerts = randAlertBatch(r)
	case 3:
		req.Probe = &ProbeRequest{Sender: randAddr(r)}
	case 4:
		req.FastRound = &FastRoundPhase2b{Sender: randAddr(r), ConfigurationID: r.Uint64(), Proposal: randEndpoints(r)}
	case 5:
		req.P1a = &Phase1a{Sender: randAddr(r), ConfigurationID: r.Uint64(), Rank: randRank(r)}
	case 6:
		req.P1b = &Phase1b{Sender: randAddr(r), ConfigurationID: r.Uint64(), Rnd: randRank(r), VRnd: randRank(r), VVal: randEndpoints(r)}
	case 7:
		req.P2a = &Phase2a{Sender: randAddr(r), ConfigurationID: r.Uint64(), Rank: randRank(r), Value: randEndpoints(r)}
	case 8:
		req.P2b = &Phase2b{Sender: randAddr(r), ConfigurationID: r.Uint64(), Rank: randRank(r), Value: randEndpoints(r)}
	case 9:
		req.Leave = &LeaveMessage{Sender: randAddr(r)}
	case 10:
		req.GetView = &GetViewRequest{Sender: randAddr(r), KnownConfigurationID: r.Uint64()}
	case 11:
		data := make([]byte, r.Intn(32))
		r.Read(data)
		if len(data) == 0 {
			data = nil
		}
		req.Custom = &CustomMessage{Kind: fmt.Sprintf("proto-%d", r.Intn(5)), Data: data}
	case 12:
		req.VoteBatch = randVoteBatch(r)
	case 13:
		// The unified outbound batch: alerts and votes in one wire message.
		req.Alerts = randAlertBatch(r)
		req.VoteBatch = randVoteBatch(r)
	}
	return req
}

func randResponse(r *rand.Rand) *Response {
	resp := &Response{}
	switch r.Intn(6) {
	case 0:
		resp.PreJoin = &PreJoinResponse{
			Sender:          randAddr(r),
			Status:          JoinStatus(r.Intn(6)),
			ConfigurationID: r.Uint64(),
			Observers:       randAddrs(r),
		}
	case 1:
		resp.Join = &JoinResponse{
			Sender:          randAddr(r),
			Status:          JoinStatus(r.Intn(6)),
			ConfigurationID: r.Uint64(),
			Members:         randEndpoints(r),
		}
	case 2:
		resp.Probe = &ProbeResponse{Sender: randAddr(r), Status: NodeStatus(r.Intn(2))}
	case 3:
		resp.View = &GetViewResponse{
			Sender:          randAddr(r),
			ConfigurationID: r.Uint64(),
			Members:         randEndpoints(r),
			Unchanged:       r.Intn(2) == 0,
		}
	case 4:
		resp.Custom = &CustomMessage{Kind: "k", Data: []byte{1, 2, 3}}
	case 5:
		resp.Ack = true
	}
	return resp
}

// --- cross-codec agreement ---------------------------------------------------

// TestRequestCrossCodecAgreement round-trips randomized requests through both
// the old gob codec and the new binary codec and requires identical decoded
// values (gob normalizes empty slices/maps to nil; so does the binary codec).
func TestRequestCrossCodecAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		req := randRequest(r)

		gobData, err := gobEncodeRequest(req)
		if err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		viaGob, err := gobDecodeRequest(gobData)
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}

		binData, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		viaBin, err := DecodeRequest(binData)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}

		if !reflect.DeepEqual(viaGob, viaBin) {
			t.Fatalf("codec disagreement on %s request:\n gob: %+v\n bin: %+v", req.Kind(), viaGob, viaBin)
		}
		if len(binData) >= len(gobData) {
			t.Errorf("binary encoding of %s request is %d bytes, gob was %d: compactness regressed",
				req.Kind(), len(binData), len(gobData))
		}
	}
}

// TestResponseCrossCodecAgreement is the response-side twin.
func TestResponseCrossCodecAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		resp := randResponse(r)

		gobData, err := gobEncodeResponse(resp)
		if err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		viaGob, err := gobDecodeResponse(gobData)
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}

		binData, err := EncodeResponse(resp)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		viaBin, err := DecodeResponse(binData)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}

		if !reflect.DeepEqual(viaGob, viaBin) {
			t.Fatalf("codec disagreement on response:\n gob: %+v\n bin: %+v", viaGob, viaBin)
		}
	}
}

// TestEncodingIsDeterministic requires byte-identical output across repeated
// encodes, including for messages containing maps (gob did not guarantee
// this; the binary codec sorts map keys).
func TestEncodingIsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		req := randRequest(r)
		a, _ := EncodeRequest(req)
		b, _ := EncodeRequest(req)
		if !bytes.Equal(a, b) {
			t.Fatalf("non-deterministic encoding of %s request", req.Kind())
		}
	}
}

// TestSizeMatchesEncodedLength keeps the bandwidth accounting honest.
func TestSizeMatchesEncodedLength(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		req := randRequest(r)
		data, _ := EncodeRequest(req)
		if RequestSize(req) != len(data) {
			t.Fatalf("RequestSize(%s) = %d, encoded length %d", req.Kind(), RequestSize(req), len(data))
		}
		resp := randResponse(r)
		rdata, _ := EncodeResponse(resp)
		if ResponseSize(resp) != len(rdata) {
			t.Fatalf("ResponseSize = %d, encoded length %d", ResponseSize(resp), len(rdata))
		}
	}
}

// TestEmptyMessagesRoundTrip covers the degenerate unions.
func TestEmptyMessagesRoundTrip(t *testing.T) {
	for _, req := range []*Request{nil, {}} {
		data, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind() != "empty" {
			t.Fatalf("empty request decoded as %q", got.Kind())
		}
	}
	data, err := EncodeResponse(AckResponse())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Ack {
		t.Fatal("Ack lost in round trip")
	}
}

// TestDecodeRejectsUnknownVersion pins the versioning behaviour.
func TestDecodeRejectsUnknownVersion(t *testing.T) {
	data, _ := EncodeRequest(&Request{Probe: &ProbeRequest{Sender: "a:1"}})
	data[0] = 99
	if _, err := DecodeRequest(data); err == nil {
		t.Fatal("decoding a future codec version should fail")
	}
}

// TestDecodeRejectsTrailingBytes pins strict framing.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data, _ := EncodeRequest(&Request{Probe: &ProbeRequest{Sender: "a:1"}})
	if _, err := DecodeRequest(append(data, 0)); err == nil {
		t.Fatal("decoding a message with trailing bytes should fail")
	}
}

// TestDecodeCorruptInputNeverPanics truncates and bit-flips valid encodings:
// every mutation must either decode cleanly or fail with an error — never
// panic, and never allocate unboundedly (collection counts are bounded by the
// remaining input length).
func TestDecodeCorruptInputNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		req := randRequest(r)
		data, _ := EncodeRequest(req)
		for cut := 0; cut < len(data); cut++ {
			_, _ = DecodeRequest(data[:cut])
		}
		for flip := 0; flip < 20 && len(data) > 0; flip++ {
			mutated := append([]byte(nil), data...)
			mutated[r.Intn(len(mutated))] ^= byte(1 << r.Intn(8))
			_, _ = DecodeRequest(mutated)
		}
	}
}

// TestAlertEncodingAllocs bounds the alert hot path's allocations: one for
// the output buffer on encode, and a handful of small slices on decode.
func TestAlertEncodingAllocs(t *testing.T) {
	batch := &Request{Alerts: &BatchedAlertMessage{Sender: "a:1"}}
	for i := 0; i < 8; i++ {
		batch.Alerts.Alerts = append(batch.Alerts.Alerts, AlertMessage{
			EdgeSrc: "a:1", EdgeDst: node.Addr(fmt.Sprintf("b%d:1", i)),
			Status: EdgeDown, ConfigurationID: 42, RingNumbers: []int{1, 5},
		})
	}
	encAllocs := testing.AllocsPerRun(200, func() {
		if _, err := EncodeRequest(batch); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 4 {
		t.Errorf("EncodeRequest allocates %.0f times per 8-alert batch, want <= 4", encAllocs)
	}
	sizeAllocs := testing.AllocsPerRun(200, func() {
		if RequestSize(batch) <= 0 {
			t.Fatal("bad size")
		}
	})
	if sizeAllocs > 0 {
		t.Errorf("RequestSize allocates %.0f times, want 0 (pooled scratch buffer)", sizeAllocs)
	}
}
