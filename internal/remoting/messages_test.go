package remoting

import (
	"testing"
	"testing/quick"

	"repro/internal/node"
)

func TestRankOrdering(t *testing.T) {
	cases := []struct {
		a, b Rank
		less bool
	}{
		{Rank{1, 0}, Rank{2, 0}, true},
		{Rank{2, 0}, Rank{1, 9}, false},
		{Rank{1, 1}, Rank{1, 2}, true},
		{Rank{1, 2}, Rank{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("(%v).Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Rank{}).IsZero() {
		t.Error("zero rank should be IsZero")
	}
	if (Rank{1, 0}).IsZero() {
		t.Error("non-zero rank should not be IsZero")
	}
}

func TestRankTotalOrderProperty(t *testing.T) {
	trichotomy := func(a, b Rank) bool {
		less, greater, equal := a.Less(b), b.Less(a), a.Equal(b)
		count := 0
		for _, v := range []bool{less, greater, equal} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(trichotomy, nil); err != nil {
		t.Errorf("rank ordering is not a total order: %v", err)
	}
}

func TestEdgeStatusString(t *testing.T) {
	if EdgeDown.String() != "REMOVE" || EdgeUp.String() != "JOIN" {
		t.Error("EdgeStatus strings do not match the paper's alert names")
	}
}

func TestJoinStatusString(t *testing.T) {
	statuses := map[JoinStatus]string{
		JoinSafeToJoin:           "SAFE_TO_JOIN",
		JoinHostAlreadyInRing:    "HOSTNAME_ALREADY_IN_RING",
		JoinUUIDAlreadyInRing:    "UUID_ALREADY_IN_RING",
		JoinConfigChanged:        "CONFIG_CHANGED",
		JoinViewChangeInProgress: "VIEW_CHANGE_IN_PROGRESS",
		JoinStatusUnknown:        "UNKNOWN",
	}
	for s, want := range statuses {
		if s.String() != want {
			t.Errorf("JoinStatus(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestRequestKind(t *testing.T) {
	cases := []struct {
		req  *Request
		want string
	}{
		{nil, "nil"},
		{&Request{}, "empty"},
		{&Request{PreJoin: &PreJoinRequest{}}, "prejoin"},
		{&Request{Join: &JoinRequest{}}, "join"},
		{&Request{Alerts: &BatchedAlertMessage{}}, "alerts"},
		{&Request{Probe: &ProbeRequest{}}, "probe"},
		{&Request{FastRound: &FastRoundPhase2b{}}, "fastround"},
		{&Request{P1a: &Phase1a{}}, "phase1a"},
		{&Request{P1b: &Phase1b{}}, "phase1b"},
		{&Request{P2a: &Phase2a{}}, "phase2a"},
		{&Request{P2b: &Phase2b{}}, "phase2b"},
		{&Request{Leave: &LeaveMessage{}}, "leave"},
	}
	for _, c := range cases {
		if got := c.req.Kind(); got != c.want {
			t.Errorf("Kind() = %q, want %q", got, c.want)
		}
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	req := &Request{
		Alerts: &BatchedAlertMessage{
			Sender: "10.0.0.1:1",
			Alerts: []AlertMessage{
				{
					EdgeSrc:         "10.0.0.1:1",
					EdgeDst:         "10.0.0.2:1",
					Status:          EdgeDown,
					ConfigurationID: 777,
					RingNumbers:     []int{0, 3, 7},
				},
				{
					EdgeSrc:         "10.0.0.1:1",
					EdgeDst:         "10.0.0.9:1",
					Status:          EdgeUp,
					ConfigurationID: 777,
					RingNumbers:     []int{1},
					JoinerID:        node.ID{High: 4, Low: 5},
					Metadata:        map[string]string{"role": "backend"},
				},
			},
		},
	}
	data, err := EncodeRequest(req)
	if err != nil {
		t.Fatalf("EncodeRequest: %v", err)
	}
	got, err := DecodeRequest(data)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if got.Kind() != "alerts" {
		t.Fatalf("decoded kind = %q", got.Kind())
	}
	if len(got.Alerts.Alerts) != 2 {
		t.Fatalf("decoded %d alerts, want 2", len(got.Alerts.Alerts))
	}
	if got.Alerts.Alerts[1].Metadata["role"] != "backend" {
		t.Error("metadata did not survive the round trip")
	}
	if got.Alerts.Alerts[0].Status != EdgeDown || got.Alerts.Alerts[1].Status != EdgeUp {
		t.Error("edge statuses did not survive the round trip")
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := &Response{
		Join: &JoinResponse{
			Sender:          "seed:1",
			Status:          JoinSafeToJoin,
			ConfigurationID: 42,
			Members: []node.Endpoint{
				{Addr: "a:1", ID: node.ID{High: 1, Low: 2}},
				{Addr: "b:1", ID: node.ID{High: 3, Low: 4}, Metadata: map[string]string{"x": "y"}},
			},
		},
	}
	data, err := EncodeResponse(resp)
	if err != nil {
		t.Fatalf("EncodeResponse: %v", err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if got.Join == nil || len(got.Join.Members) != 2 {
		t.Fatalf("decoded response missing members: %+v", got)
	}
	if got.Join.Members[1].Metadata["x"] != "y" {
		t.Error("member metadata lost in round trip")
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	if _, err := DecodeRequest([]byte("not gob")); err == nil {
		t.Error("DecodeRequest should fail on garbage input")
	}
	if _, err := DecodeResponse([]byte{0x01, 0x02}); err == nil {
		t.Error("DecodeResponse should fail on garbage input")
	}
}

func TestSizesArePositive(t *testing.T) {
	req := &Request{Probe: &ProbeRequest{Sender: "x:1"}}
	if RequestSize(req) <= 0 {
		t.Error("RequestSize should be positive for a valid request")
	}
	if ResponseSize(AckResponse()) <= 0 {
		t.Error("ResponseSize should be positive for a valid response")
	}
}

func TestBatchedAlertSizeGrowsSublinearly(t *testing.T) {
	// Batching should amortize per-message overhead: the encoded size of a
	// 10-alert batch must be well under 10x the size of a 1-alert batch.
	single := &Request{Alerts: &BatchedAlertMessage{
		Sender: "a:1",
		Alerts: []AlertMessage{{EdgeSrc: "a:1", EdgeDst: "b:1", ConfigurationID: 1}},
	}}
	batch := &Request{Alerts: &BatchedAlertMessage{Sender: "a:1"}}
	for i := 0; i < 10; i++ {
		batch.Alerts.Alerts = append(batch.Alerts.Alerts, AlertMessage{
			EdgeSrc: "a:1", EdgeDst: node.Addr(string(rune('b'+i)) + ":1"), ConfigurationID: 1,
		})
	}
	s1, s10 := RequestSize(single), RequestSize(batch)
	if s10 >= 10*s1 {
		t.Errorf("batched size %d should be < 10x single size %d", s10, s1)
	}
}
