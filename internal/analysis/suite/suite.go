// Package suite assembles rapid-vet's full analyzer set. It exists so the
// vettool binary and the self-vet test agree on what "the suite" is without
// the framework package importing its own analyzers.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/poolcheck"
	"repro/internal/analysis/simclockcheck"
	"repro/internal/analysis/singlewriter"
	"repro/internal/analysis/snapshotcheck"
)

// All returns every analyzer rapid-vet enforces, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		simclockcheck.Analyzer,
		singlewriter.Analyzer,
		poolcheck.Analyzer,
		snapshotcheck.Analyzer,
	}
}
