package snapshotcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotcheck"
)

func TestSnapshotImmutability(t *testing.T) {
	// Point the curated source tables at the fixture's types for the duration
	// of the test, then restore them.
	methods, fields := snapshotcheck.ReadOnlyMethods, snapshotcheck.ReadOnlyFields
	defer func() {
		snapshotcheck.ReadOnlyMethods, snapshotcheck.ReadOnlyFields = methods, fields
	}()
	snapshotcheck.ReadOnlyMethods = append(snapshotcheck.ReadOnlyMethods[:len(methods):len(methods)],
		snapshotcheck.MethodSource{PkgPath: "fixture/registry", TypeName: "Registry", Method: "Members"})
	snapshotcheck.ReadOnlyFields = append(snapshotcheck.ReadOnlyFields[:len(fields):len(fields)],
		snapshotcheck.FieldSource{PkgPath: "fixture/registry", TypeName: "Change", Field: "Members"},
		snapshotcheck.FieldSource{PkgPath: "fixture/registry", TypeName: "Change", Field: "Meta"})

	analysistest.Run(t, "testdata/src/registry", "fixture/registry", snapshotcheck.Analyzer)
}
