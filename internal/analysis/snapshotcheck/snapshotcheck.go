// Package snapshotcheck enforces snapshot immutability: the slices and maps
// handed out by the membership snapshot accessors are shared — one
// ViewChange.Members slice goes to every subscriber and join response — so
// callers must treat them as read-only. Enforcing this at vet time is also
// what lets accessors that defensively copy today (Cluster.Members) drop the
// O(N) copy later (the ROADMAP's copy-on-write member lists) without
// auditing every caller first.
//
// The check tracks expressions whose value comes from a curated set of
// read-only sources — accessor methods and snapshot-carrying struct fields —
// directly or through a local variable, and reports element writes, map
// writes/deletes, appends, and in-place sorts of them. A caller that needs a
// mutable copy must clone first (append([]T(nil), s...)); a deliberate
// exception carries //lint:allow snapshot <reason>.
package snapshotcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// MethodSource identifies an accessor method whose result is read-only.
type MethodSource struct {
	PkgPath, TypeName, Method string
}

// FieldSource identifies a struct field whose value is read-only for
// everyone but the engine that published it.
type FieldSource struct {
	PkgPath, TypeName, Field string
}

// ReadOnlyMethods is the curated accessor set. Tests may append fixture
// entries before running the analyzer.
var ReadOnlyMethods = []MethodSource{
	{"repro/internal/core", "Cluster", "Members"},
	{"repro/internal/core", "Cluster", "Metadata"},
	{"repro/internal/view", "View", "Members"},
	{"repro/internal/view", "View", "MemberAddrs"},
	{"repro/internal/harness", "Fleet", "RapidStats"},
}

// ReadOnlyFields is the curated field set: data published once and read by
// many goroutines.
var ReadOnlyFields = []FieldSource{
	{"repro/internal/core", "ViewChange", "Members"},
	{"repro/internal/core", "ViewChange", "Changes"},
	{"repro/internal/core", "snapshot", "members"},
	{"repro/internal/core", "snapshot", "byAddr"},
	{"repro/internal/core", "snapshot", "pastConfigs"},
}

// sorters are the standard in-place sorts whose first argument is mutated.
var sorters = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true, "Reverse": true},
}

// Analyzer is the snapshot-immutability check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshot",
	Doc:  "results of snapshot accessors (Members, Metadata, RapidStats, ViewChange fields) must not be mutated; clone before writing",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: locals assigned (directly) from a read-only source.
	readOnlyVars := make(map[types.Object]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			src, ok := sourceOf(pass, rhs, readOnlyVars)
			if !ok {
				continue
			}
			if id, isIdent := as.Lhs[i].(*ast.Ident); isIdent && id.Name != "_" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					readOnlyVars[obj] = src
				}
			}
		}
		return true
	})

	report := func(pos ast.Node, verb, src string) {
		pass.Reportf(pos.Pos(),
			"%s %s, which is a shared membership snapshot: clone it first with append([]T(nil), s...) (or annotate //lint:allow snapshot <reason>)",
			verb, src)
	}

	// Pass 2: mutations.
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if src, ro := sourceOf(pass, idx.X, readOnlyVars); ro {
						report(lhs, "assigns into", src)
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := v.X.(*ast.IndexExpr); ok {
				if src, ro := sourceOf(pass, idx.X, readOnlyVars); ro {
					report(v, "mutates an element of", src)
				}
			}
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "delete" && len(v.Args) == 2 && isBuiltin(pass, fun) {
					if src, ro := sourceOf(pass, v.Args[0], readOnlyVars); ro {
						report(v, "deletes from", src)
					}
				}
				if fun.Name == "append" && len(v.Args) > 0 && isBuiltin(pass, fun) {
					if src, ro := sourceOf(pass, v.Args[0], readOnlyVars); ro {
						report(v, "appends to", src)
					}
				}
			case *ast.SelectorExpr:
				if pkg, ok := fun.X.(*ast.Ident); ok && len(v.Args) > 0 {
					if obj, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); isPkg && sorters[obj.Imported().Path()][fun.Sel.Name] {
						if src, ro := sourceOf(pass, v.Args[0], readOnlyVars); ro {
							report(v, "sorts in place", src)
						}
					}
				}
			}
		}
		return true
	})
}

// sourceOf reports whether expr's value comes from a read-only source and
// names the source for the diagnostic.
func sourceOf(pass *analysis.Pass, expr ast.Expr, readOnlyVars map[types.Object]string) (string, bool) {
	for {
		if p, ok := expr.(*ast.ParenExpr); ok {
			expr = p.X
			continue
		}
		break
	}
	switch v := expr.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(v); obj != nil {
			if src, ok := readOnlyVars[obj]; ok {
				return src, true
			}
		}
	case *ast.CallExpr:
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil {
			return "", false
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		recv := recvTypeName(fn)
		for _, m := range ReadOnlyMethods {
			if fn.Pkg().Path() == m.PkgPath && recv == m.TypeName && fn.Name() == m.Method {
				return m.TypeName + "." + m.Method + "()", true
			}
		}
	case *ast.SelectorExpr:
		selection := pass.TypesInfo.Selections[v]
		if selection == nil {
			return "", false
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok || !field.IsField() || field.Pkg() == nil {
			return "", false
		}
		owner := fieldOwnerName(selection)
		for _, fs := range ReadOnlyFields {
			if field.Pkg().Path() == fs.PkgPath && owner == fs.TypeName && field.Name() == fs.Field {
				return fs.TypeName + "." + fs.Field, true
			}
		}
	}
	return "", false
}

func recvTypeName(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func fieldOwnerName(selection *types.Selection) string {
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
