// Package registry is a rapid-vet fixture for the snapshot-immutability
// check. The test registers Registry.Members and the Change fields as
// read-only sources before running the analyzer.
package registry

import "sort"

// Change mimics core.ViewChange: one slice and map shared by every reader.
type Change struct {
	Members []string
	Meta    map[string]string
}

// Registry mimics a snapshot holder like core.Cluster.
type Registry struct {
	change Change
}

// Members returns the shared member list.
func (r *Registry) Members() []string { return r.change.Members }

func mutateDirect(r *Registry) {
	r.Members()[0] = "x" // want `assigns into Registry.Members\(\)`
}

func mutateVar(r *Registry) {
	m := r.Members()
	m[0] = "x"         // want `assigns into Registry.Members\(\)`
	sort.Strings(m)    // want `sorts in place Registry.Members\(\)`
	_ = append(m, "y") // want `appends to Registry.Members\(\)`
}

func mutateField(c *Change) {
	c.Members[0] = "x"  // want `assigns into Change.Members`
	delete(c.Meta, "k") // want `deletes from Change.Meta`
}

func cloneFirst(r *Registry) []string {
	m := append([]string(nil), r.Members()...)
	sort.Strings(m) // a clone is the caller's to mutate
	return m
}

func readOnly(r *Registry) int {
	m := r.Members()
	return len(m) // reads never trip the check
}

func allowed(r *Registry) {
	m := r.Members()
	m[0] = "x" //lint:allow snapshot fixture demonstrates the escape hatch
}
