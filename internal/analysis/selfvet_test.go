package analysis_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsVetClean builds rapid-vet and runs it over the whole repo: the
// tree must satisfy its own invariants. This is the local equivalent of the
// CI rapid-vet job, so an invariant regression fails `go test ./...` even
// where CI is not running.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree vet sweep runs in the plain test lane only")
	}

	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	if root == "." || root == "/" {
		t.Fatalf("cannot locate module root from GOMOD %q", gomod)
	}

	tool := filepath.Join(t.TempDir(), "rapid-vet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/rapid-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rapid-vet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var out bytes.Buffer
	vet.Stdout = &out
	vet.Stderr = &out
	if err := vet.Run(); err != nil {
		t.Fatalf("the repo violates its own invariants (go vet -vettool=rapid-vet ./...):\n%s", out.String())
	}
	_ = os.Remove(tool)
}
