// Package analysistest runs rapid-vet analyzers over fixture packages and
// checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library alone.
//
// A fixture is a directory of .go files (conventionally testdata/src/<name>,
// which the go tool ignores, so fixtures may contain deliberate violations
// without breaking the build). Expectations are written on the offending
// line:
//
//	return time.Now() // want `time.Now in protocol package`
//
// Each quoted string after "want" is a regexp that must match the message of
// a distinct diagnostic reported on that line; diagnostics with no matching
// want, and wants with no matching diagnostic, both fail the test. Fixtures
// typecheck with the source importer, so they may import anything in the
// standard library but nothing else.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted expectation regexps from a // want comment:
// double-quoted Go strings or backquoted raw strings.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one // want regexp anchored to a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run analyzes the fixture package in dir under the given import path and
// compares diagnostics against the fixture's // want comments. The import
// path matters: simclockcheck keys off it, so protocol fixtures use paths
// like "fixture/core".
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()

	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", importPath, err)
	}

	diags, err := analysis.NewUnit(fset, files, pkg, info).Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	expects := collectWants(t, fset, files)

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line whose
// regexp matches its message.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment in the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRe.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: // want comment with no quoted regexp", pos)
				}
				for _, q := range quoted {
					text := q
					if strings.HasPrefix(q, `"`) {
						var err error
						text, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					} else {
						text = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	return out
}
