package singlewriter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/singlewriter"
)

func TestSingleWriter(t *testing.T) {
	analysistest.Run(t, "testdata/src/engine", "fixture/engine", singlewriter.Analyzer)
}
