// Package engine is a rapid-vet fixture for the single-writer check: a
// miniature event-loop owner with marked fields, an entry root, and the
// access shapes the analyzer must and must not flag.
package engine

type engine struct {
	view    int // engine-owned
	applied int
}

// newEngine builds the engine. engine-entry: construction happens-before the
// loop goroutine starts.
func newEngine() *engine {
	return &engine{view: 1}
}

// run is the event loop. engine-entry: the single-writer goroutine itself.
func (e *engine) run() {
	e.view++ // an entry root owns the field
	e.step()
	go e.publish()
	go func() {
		e.view = 0 // want `function literal accesses engine-owned field "view"`
	}()
	defer func() {
		e.view++ // a deferred literal runs on the loop goroutine
	}()
	sink(e.step) // a method value handed to a callback slot keeps step reachable
}

func (e *engine) step() {
	e.view++ // reachable from run through the call graph
}

func (e *engine) publish() {
	_ = e.view // want `method publish accesses engine-owned field "view"`
}

// Handler runs on a caller goroutine, not the loop.
func (e *engine) Handler() int {
	return e.view // want `method Handler accesses engine-owned field "view"`
}

func (e *engine) Applied() int {
	return e.applied // unmarked fields are out of scope
}

// Allowed documents a deliberate exception.
func (e *engine) Allowed() int {
	return e.view //lint:allow singlewriter fixture demonstrates the escape hatch
}

func reset(e *engine) {
	*e = engine{view: 0} // want `function reset accesses engine-owned field "view"`
}

func sink(func()) {}
