// Package singlewriter enforces the engine's ownership invariant from PR 2:
// all protocol state is mutated only by the single-writer engine goroutine.
// Struct fields whose comment carries the marker "engine-owned" may only be
// read or written from functions reachable — through same-package static
// calls — from a function whose doc comment carries "engine-entry" (the
// engine loop itself, plus constructors that run before the loop goroutine
// starts and therefore happen-before it).
//
// Function literals declared inside a reachable function inherit its
// reachability (deferred closures, sort comparators and locally-called
// helpers run on the same goroutine) EXCEPT literals launched directly with a
// `go` statement: those are new goroutines, and an engine-owned access inside
// them is exactly the race this analyzer exists to catch. Handlers and public
// accessors that need protocol state must go through the event queue or the
// atomically published snapshot; a deliberate exception carries
// //lint:allow singlewriter <reason>.
package singlewriter

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// FieldMarker tags a struct field as owned by the engine goroutine.
const FieldMarker = "engine-owned"

// EntryMarker tags a function as a root of the engine goroutine's call graph
// (the loop itself or pre-loop construction).
const EntryMarker = "engine-entry"

// Analyzer is the single-writer-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "singlewriter",
	Doc:  "engine-owned struct fields may only be accessed from functions reachable from an engine-entry root",
	Run:  run,
}

// funcNode is one node of the intra-package call graph: a declared function
// or a function literal.
type funcNode struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	// callees are same-package functions this node calls directly.
	callees []*funcNode
	// children are literals declared in this node's body that inherit its
	// reachability (everything except go-launched literals).
	children  []*funcNode
	reachable bool
}

func (n *funcNode) body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

func run(pass *analysis.Pass) error {
	owned := collectOwnedFields(pass)
	if len(owned) == 0 {
		return nil
	}

	// Build the call graph: declared functions first (so calls can resolve to
	// them), then wire up literals.
	byObj := make(map[types.Object]*funcNode)
	var nodes []*funcNode
	var roots []*funcNode
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &funcNode{decl: fd}
			nodes = append(nodes, n)
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				byObj[obj] = n
			}
			if hasMarker(fd.Doc, EntryMarker) {
				roots = append(roots, n)
			}
		}
	}
	for _, n := range nodes {
		nodes = append(nodes, wireBody(pass, n, byObj)...)
	}

	// Propagate reachability from the entry roots.
	var mark func(n *funcNode)
	mark = func(n *funcNode) {
		if n.reachable {
			return
		}
		n.reachable = true
		for _, c := range n.callees {
			mark(c)
		}
		for _, c := range n.children {
			mark(c)
		}
	}
	for _, r := range roots {
		mark(r)
	}

	// Report engine-owned accesses in unreachable nodes. Each node only scans
	// its own statements (literals are visited as their own nodes).
	for _, n := range nodes {
		if n.reachable {
			continue
		}
		where := "function literal"
		if n.decl != nil {
			where = funcTitle(n.decl)
		}
		inspectShallow(n.body(), func(node ast.Node) {
			name, ok := ownedAccess(pass, node, owned)
			if !ok {
				return
			}
			pass.Reportf(node.Pos(),
				"%s accesses engine-owned field %q but is not reachable from an %s root: route through the event queue or the published snapshot (or annotate //lint:allow singlewriter <reason>)",
				where, name, EntryMarker)
		})
	}
	return nil
}

// collectOwnedFields returns the *types.Var of every struct field whose
// comment (doc or trailing) contains the engine-owned marker.
func collectOwnedFields(pass *analysis.Pass) map[types.Object]string {
	owned := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc, FieldMarker) && !hasMarker(field.Comment, FieldMarker) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						owned[obj] = name.Name
					}
				}
			}
			return true
		})
	}
	return owned
}

// wireBody resolves n's call/reference edges and nested literals, returning
// the literal nodes it created (recursively). Any reference to a
// same-package function — a call, or a function/method value handed to a
// callback slot — counts as an edge, because callbacks registered by engine
// code (the consensus VoteSink and OnDecide hooks) are invoked on the engine
// goroutine. The single exception is the target of a `go` statement: that is
// a new goroutine by definition, so neither a `go`-launched literal nor a
// `go m.method()` target inherits reachability.
func wireBody(pass *analysis.Pass, n *funcNode, byObj map[types.Object]*funcNode) []*funcNode {
	var created []*funcNode
	var walk func(node ast.Node, parent *funcNode)
	walk = func(node ast.Node, parent *funcNode) {
		switch v := node.(type) {
		case *ast.GoStmt:
			for _, arg := range v.Call.Args {
				walk(arg, parent)
			}
			switch fun := v.Call.Fun.(type) {
			case *ast.FuncLit:
				child := &funcNode{lit: fun}
				created = append(created, child)
				walk(fun.Body, child)
			case *ast.SelectorExpr:
				// The receiver is evaluated on the launching goroutine; only
				// the method itself runs on the new one.
				walk(fun.X, parent)
			}
			return
		case *ast.FuncLit:
			child := &funcNode{lit: v}
			parent.children = append(parent.children, child)
			created = append(created, child)
			walk(v.Body, child)
			return
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				if callee := byObj[obj]; callee != nil {
					parent.callees = append(parent.callees, callee)
				}
			}
			return
		}
		if node != nil {
			for _, c := range childNodes(node) {
				walk(c, parent)
			}
		}
	}
	walk(n.body(), n)
	return created
}

// ownedAccess reports whether node is a use of an engine-owned field: a
// selector expression resolving to the field, or a composite-literal key for
// it.
func ownedAccess(pass *analysis.Pass, node ast.Node, owned map[types.Object]string) (string, bool) {
	switch v := node.(type) {
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[v]; sel != nil {
			if name, ok := owned[sel.Obj()]; ok {
				return name, true
			}
		}
	case *ast.KeyValueExpr:
		if key, ok := v.Key.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[key]; obj != nil {
				if name, ok := owned[obj]; ok {
					return name, true
				}
			}
		}
	}
	return "", false
}

// inspectShallow visits every node in body but does not descend into function
// literals (they are separate graph nodes).
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// childNodes returns the direct AST children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

func funcTitle(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
