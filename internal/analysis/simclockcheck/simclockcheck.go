// Package simclockcheck enforces the repo's determinism invariant: protocol
// code never reads the wall clock or arms real timers directly. Every
// duration must flow through simclock.Clock, which is what lets simnet runs
// replay deterministically from a seed (PR 3's
// TestDeterministicTraceAcrossShards) and lets unit tests drive timeouts with
// a manual clock instead of sleeping.
//
// The check forbids the time functions that observe or schedule real time
// (time.Now, Sleep, Since, Until, After, AfterFunc, Tick, NewTimer,
// NewTicker) in the protocol packages; pure data uses of package time
// (time.Duration, time.Millisecond, time.Time values) stay legal. Wall-clock
// sites that are legitimately real-time — the tcpnet transport, harness
// measurement, cmd binaries — either live outside the protocol set or carry
// an explicit //lint:allow simclock <reason>.
package simclockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// forbidden are the time package functions that observe or schedule real
// time. Everything else in package time is timeless data manipulation.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// protocolLeaves are the final import-path segments of the packages whose
// code must be deterministic under simnet. A package also qualifies when any
// path segment is "apps" (the §7 workload models). The names — not full
// paths — are matched so that analysistest fixtures named after a protocol
// package exercise the real configuration.
var protocolLeaves = map[string]bool{
	"core":        true,
	"cutdetect":   true,
	"fastpaxos":   true,
	"edgefd":      true,
	"gossipfd":    true,
	"broadcast":   true,
	"simnet":      true,
	"experiments": true,
}

// Analyzer is the simclock-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock time functions in protocol packages; all time must flow through simclock.Clock",
	Run:  run,
}

// IsProtocolPackage reports whether the import path belongs to the
// deterministic protocol set.
func IsProtocolPackage(path string) bool {
	segments := strings.Split(path, "/")
	for _, s := range segments {
		if s == "apps" {
			return true
		}
	}
	return protocolLeaves[segments[len(segments)-1]]
}

func run(pass *analysis.Pass) error {
	if !IsProtocolPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Map the local name of the "time" import in this file; it is almost
		// always "time" but aliasing must not defeat the check.
		timeName := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "time" {
				continue
			}
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		}
		if timeName == "" || timeName == "_" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || ident.Name != timeName {
				return true
			}
			// The identifier must resolve to the package, not a local variable
			// shadowing it.
			if obj := pass.TypesInfo.Uses[ident]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"time.%s in protocol package %s: use simclock.Clock so simnet runs stay deterministic (or annotate //lint:allow simclock <reason>)",
				sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
