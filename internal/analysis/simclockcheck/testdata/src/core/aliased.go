package core

import tm "time"

func aliased() tm.Time {
	return tm.Now() // want `time.Now in protocol package`
}
