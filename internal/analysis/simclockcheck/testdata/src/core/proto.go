// Package core is a rapid-vet fixture whose import path ends in a protocol
// leaf, so the simclock check applies in full.
package core

import "time"

// Pure data uses of package time stay legal everywhere.
const tick = 50 * time.Millisecond

func deadline() time.Time {
	return time.Now() // want `time.Now in protocol package`
}

func wait() {
	time.Sleep(tick) // want `time.Sleep in protocol package`
}

func measured() time.Duration {
	start := time.Now()      //lint:allow simclock fixture demonstrates the inline escape hatch
	return time.Since(start) // want `time.Since in protocol package`
}

func standalone() <-chan time.Time {
	//lint:allow simclock fixture demonstrates the standalone escape hatch
	return time.After(tick)
}

type stopwatch struct{}

func (stopwatch) Now() int { return 0 }

func shadowed() int {
	time := stopwatch{}
	return time.Now() // a local shadowing the package is not a wall-clock read
}
