// Package util is a rapid-vet fixture outside the protocol set: wall-clock
// reads are legal here.
package util

import "time"

func Stamp() time.Time {
	return time.Now()
}
