package simclockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simclockcheck"
)

func TestProtocolPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/core", "fixture/core", simclockcheck.Analyzer)
}

func TestNonProtocolPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/util", "fixture/util", simclockcheck.Analyzer)
}

func TestIsProtocolPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core":        true,
		"repro/internal/apps/txn":    true,
		"repro/internal/experiments": true,
		"repro/internal/tcpnet":      false,
		"repro/internal/harness":     false,
		"repro/cmd/rapid":            false,
		"fixture/core":               true,
	} {
		if got := simclockcheck.IsProtocolPackage(path); got != want {
			t.Errorf("IsProtocolPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
