package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestDirectiveNeedsReason: an allowlist directive without a reason is itself
// a diagnostic — the reason is the reviewable artifact.
func TestDirectiveNeedsReason(t *testing.T) {
	const src = `package p

func f() int {
	//lint:allow simclock
	return 0
}
`
	u := parseUnit(t, src)
	diags, err := u.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" {
		t.Fatalf("want one lintdirective diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// TestDirectiveMalformed: a directive naming no check at all is flagged too.
func TestDirectiveMalformed(t *testing.T) {
	const src = `package p

//lint:allow
func f() {}
`
	u := parseUnit(t, src)
	diags, err := u.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("want one malformed-directive diagnostic, got %v", diags)
	}
}

// TestDirectiveScope: an inline directive covers its own line; a standalone
// one covers the line below.
func TestDirectiveScope(t *testing.T) {
	const src = `package p

func f() int { //lint:allow democheck covers this line
	return 0
}

func g() int {
	//lint:allow democheck covers the next line
	return 1
}
`
	u := parseUnit(t, src)
	if _, err := u.Run(nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line int
		want bool
	}{
		{3, true},  // f's signature line, inline directive
		{4, false}, // f's body is not covered
		{8, false}, // the standalone directive's own line
		{9, true},  // the line below it
	}
	for _, c := range cases {
		pos := token.Position{Filename: "fixture.go", Line: c.line}
		if got := u.allowed("democheck", pos); got != c.want {
			t.Errorf("allowed(democheck, line %d) = %v, want %v", c.line, got, c.want)
		}
	}
}

func parseUnit(t *testing.T, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return NewUnit(fset, []*ast.File{f}, nil, NewTypesInfo())
}
