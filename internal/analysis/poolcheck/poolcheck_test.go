package poolcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolcheck"
)

func TestPoolDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src/pool", "fixture/pool", poolcheck.Analyzer)
}
