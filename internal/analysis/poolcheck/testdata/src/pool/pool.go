// Package pool is a rapid-vet fixture for the pooled-buffer check: leaks,
// use-after-Put, and the ownership transfers that are legal.
package pool

import "sync"

var bufs = sync.Pool{New: func() interface{} { b := make([]byte, 0, 64); return &b }}

func leak() int {
	b := bufs.Get().(*[]byte) // want `never released with Put and never escapes`
	return len(*b)
}

func roundTrip() int {
	b := bufs.Get().(*[]byte)
	n := len(*b)
	bufs.Put(b)
	return n
}

func useAfterPut() int {
	b := bufs.Get().(*[]byte)
	bufs.Put(b)
	return len(*b) // want `used after being released to its sync.Pool`
}

func deferred() int {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return len(*b) // a deferred Put runs at function exit, after every use
}

func handOff() {
	b := bufs.Get().(*[]byte)
	consume(b) // the callee owns the buffer now; releasing is its problem
}

func consume(b *[]byte) {
	bufs.Put(b)
}

func allowedLeak() int {
	b := bufs.Get().(*[]byte) //lint:allow poolcheck fixture demonstrates the escape hatch
	return len(*b)
}
