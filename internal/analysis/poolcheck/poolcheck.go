// Package poolcheck enforces the pooled-buffer discipline behind the repo's
// zero-alloc hot paths (remoting's size buffers, simnet's delivery events):
// a value obtained from a sync.Pool must either be returned to a pool in the
// same function or escape it (handed to another function, stored, sent, or
// returned) — and it must never be used after it has been Put back, because
// by then another goroutine may own it.
//
// The analysis is intraprocedural and deliberately modest: it does not chase
// values across function boundaries (a value that escapes is that function's
// responsibility) and treats "some release or escape exists" as satisfying
// the release-on-every-path obligation. Within those limits it catches the
// two real regressions — a leaked Get that silently degrades the pool into
// an allocator, and a use-after-Put, which is a data race the race detector
// only reports if the recycled value is concurrently re-acquired during the
// run. A deliberate exception carries //lint:allow poolcheck <reason>.
package poolcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the pooled-buffer-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "values from sync.Pool.Get must be Put back or escape, and never used after the Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// acquisition tracks one `v := pool.Get()` (possibly type-asserted) local.
type acquisition struct {
	obj      types.Object
	name     string
	pos      ast.Node
	released bool
	escaped  bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: find vars assigned directly from a sync.Pool Get.
	acquired := make(map[types.Object]*acquisition)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		rhs := as.Rhs[0]
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ta.X
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isPoolMethod(pass, call, "Get") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			acquired[obj] = &acquisition{obj: obj, name: id.Name, pos: as}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Pass 2: walk with a parent stack, recording releases, escapes, and the
	// release statements' positions for the use-after-Put check.
	type release struct {
		acq  *acquisition
		stmt ast.Stmt
	}
	var releases []release
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolMethod(pass, call, "Put") && len(call.Args) == 1 {
			if acq := resolve(pass, call.Args[0], acquired); acq != nil {
				acq.released = true
				// A deferred Put runs at function exit: nothing after it.
				if !inDefer(stack) {
					if stmt := enclosingStmt(stack); stmt != nil {
						releases = append(releases, release{acq: acq, stmt: stmt})
					}
				}
			}
			return true
		}
		// Any other call taking the value as an argument is an escape: the
		// callee now owns (or forwarded) the buffer.
		for _, arg := range call.Args {
			if acq := resolve(pass, arg, acquired); acq != nil {
				acq.escaped = true
			}
		}
		return true
	})

	// Returns, stores and sends are escapes too.
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if acq := resolve(pass, r, acquired); acq != nil {
					acq.escaped = true
				}
			}
		case *ast.SendStmt:
			if acq := resolve(pass, v.Value, acquired); acq != nil {
				acq.escaped = true
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if acq := resolve(pass, el, acquired); acq != nil {
					acq.escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				acq := resolve(pass, rhs, acquired)
				if acq == nil {
					continue
				}
				// `other := v` or `x.field = v`: the value now has a second
				// name or a longer-lived home; stop tracking it here.
				if i < len(v.Lhs) {
					if id, ok := v.Lhs[i].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == acq.obj {
						continue
					}
				}
				acq.escaped = true
			}
		}
		return true
	})

	for _, acq := range acquired {
		if !acq.released && !acq.escaped {
			pass.Reportf(acq.pos.Pos(),
				"%s is acquired from a sync.Pool but never released with Put and never escapes: the pool silently degrades into an allocator (or annotate //lint:allow poolcheck <reason>)",
				acq.name)
		}
	}

	// Use-after-Put: any mention of the value in statements after the Put
	// within the same block.
	for _, rel := range releases {
		block := enclosingBlock(body, rel.stmt)
		if block == nil {
			continue
		}
		after := false
		for _, stmt := range block.List {
			if stmt == rel.stmt {
				after = true
				continue
			}
			if !after {
				continue
			}
			ast.Inspect(stmt, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if ok && pass.TypesInfo.ObjectOf(id) == rel.acq.obj {
					pass.Reportf(id.Pos(),
						"%s is used after being released to its sync.Pool: another goroutine may already own it (or annotate //lint:allow poolcheck <reason>)",
						rel.acq.name)
				}
				return true
			})
		}
	}
}

// isPoolMethod reports whether call invokes (*sync.Pool).<name>.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := derefNamed(recv.Type())
	return named != nil && named.Obj().Name() == "Pool"
}

// resolve returns the acquisition a plain identifier expression refers to.
func resolve(pass *analysis.Pass, expr ast.Expr, acquired map[types.Object]*acquisition) *acquisition {
	if p, ok := expr.(*ast.ParenExpr); ok {
		expr = p.X
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	return acquired[obj]
}

func inDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// enclosingStmt returns the innermost statement on the stack (excluding the
// call expression itself).
func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// enclosingBlock finds the block whose statement list directly contains stmt.
func enclosingBlock(body *ast.BlockStmt, stmt ast.Stmt) *ast.BlockStmt {
	var found *ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, s := range b.List {
			if s == stmt {
				found = b
				return false
			}
		}
		return true
	})
	return found
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
