// Package analysis is a dependency-free reimplementation of the narrow slice
// of golang.org/x/tools/go/analysis that rapid-vet needs. The repo
// deliberately has no external module dependencies, so the framework —
// analyzers over typed ASTs, an allowlist directive, a unitchecker-style
// driver for `go vet -vettool` (cmd/rapid-vet) and an analysistest-style
// fixture runner (subpackage analysistest) — is built on go/ast, go/types and
// go/importer alone. Analyzers are written against the same Analyzer/Pass
// shape as x/tools, so they port verbatim if the dependency ever lands.
//
// The analyzers themselves live in subpackages (simclockcheck, singlewriter,
// poolcheck, snapshotcheck); Suite lists them all for the vettool and the
// self-vet test. docs/ARCHITECTURE.md ("Enforced invariants") documents what
// each one checks and why the invariant is load-bearing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is the check name an
	// allowlist directive must reference: //lint:allow <Name> <reason>.
	Name string
	// Doc is the one-paragraph description shown by `rapid-vet help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one typed package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files. Test files are excluded
	// from analysis on purpose: tests legitimately poll the wall clock while
	// waiting on real goroutines, and intentionally violate engine ownership
	// to probe it — the race detector, not rapid-vet, checks them.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	unit *Unit
}

// Reportf records a diagnostic at pos unless an allowlist directive on the
// same line (or alone on the line above) suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.unit.allowed(p.Analyzer.Name, position) {
		return
	}
	p.unit.diags = append(p.unit.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	check string
	// line is the source line the directive suppresses: the directive's own
	// line when it shares it with code, the following line when the directive
	// stands alone.
	file string
	line int
}

// Unit is one package ready for analysis: parsed, typechecked, with allowlist
// directives indexed. Both drivers (the vettool and analysistest) build a
// Unit and call Run on it.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	allows []allowDirective
	diags  []Diagnostic
}

// NewUnit indexes the allowlist directives and reports malformed ones
// (a directive without a reason is itself a diagnostic: the reason is the
// reviewable artifact that justifies the escape hatch).
func NewUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Unit {
	u := &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					u.diags = append(u.diags, Diagnostic{Pos: pos, Analyzer: "lintdirective",
						Message: "malformed //lint:allow: want //lint:allow <check> <reason>"})
					continue
				}
				if len(fields) < 2 {
					u.diags = append(u.diags, Diagnostic{Pos: pos, Analyzer: "lintdirective",
						Message: fmt.Sprintf("//lint:allow %s needs a reason: //lint:allow %s <why this site is exempt>", fields[0], fields[0])})
					continue
				}
				line := pos.Line
				if standsAlone(fset, f, c) {
					line++
				}
				u.allows = append(u.allows, allowDirective{check: fields[0], file: pos.Filename, line: line})
			}
		}
	}
	return u
}

// standsAlone reports whether comment c is the only thing on its line.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cLine := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		// Any non-comment node starting or ending on the comment's line means
		// the directive annotates that code inline.
		if _, isComment := n.(*ast.Comment); isComment {
			return true
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return true
		}
		if _, isFile := n.(*ast.File); isFile {
			return true
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if start <= cLine && cLine <= end && (start == cLine || end == cLine) {
			alone = false
			return false
		}
		return true
	})
	return alone
}

func (u *Unit) allowed(check string, pos token.Position) bool {
	for _, a := range u.allows {
		if a.check == check && a.file == pos.Filename && a.line == pos.Line {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the unit and returns every diagnostic sorted
// by position. Test files (*_test.go) are excluded from the analyzed file
// set; see Pass.Files.
func (u *Unit) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, f := range u.Files {
		name := u.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) > 0 {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				unit:      u,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	diags := u.diags
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
