package cutdetect

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/view"
)

const (
	testK = 10
	testH = 9
	testL = 3
)

var t0 = time.Unix(0, 0)

func subjectEP(addr node.Addr) node.Endpoint {
	return node.Endpoint{Addr: addr, ID: node.ID{High: 1, Low: 1}}
}

// alertOnRing builds a single-ring alert from observer i about a subject.
func alertOnRing(observer int, subject node.Addr, ring int) (remoting.AlertMessage, node.Endpoint) {
	return remoting.AlertMessage{
		EdgeSrc:     node.Addr(fmt.Sprintf("observer-%d:1", observer)),
		EdgeDst:     subject,
		Status:      remoting.EdgeDown,
		RingNumbers: []int{ring},
	}, subjectEP(subject)
}

func TestNewValidatesParameters(t *testing.T) {
	bad := [][3]int{{0, 1, 1}, {10, 11, 1}, {10, 2, 3}, {10, 5, 0}}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", p)
				}
			}()
			New(p[0], p[1], p[2])
		}()
	}
	if New(10, 9, 3) == nil {
		t.Fatal("valid parameters should construct a detector")
	}
}

func TestProposalEmittedAtHReports(t *testing.T) {
	d := New(testK, testH, testL)
	subject := node.Addr("faulty:1")
	for i := 0; i < testH-1; i++ {
		a, ep := alertOnRing(i, subject, i)
		if got := d.AggregateForProposal(a, ep, t0); len(got) != 0 {
			t.Fatalf("proposal emitted after only %d reports: %v", i+1, got)
		}
	}
	a, ep := alertOnRing(testH-1, subject, testH-1)
	got := d.AggregateForProposal(a, ep, t0)
	if len(got) != 1 || got[0].Addr != subject {
		t.Fatalf("expected a proposal with exactly the subject, got %v", got)
	}
	if d.ProposalsEmitted() != 1 {
		t.Fatalf("ProposalsEmitted = %d, want 1", d.ProposalsEmitted())
	}
}

func TestDuplicateRingReportsIgnored(t *testing.T) {
	d := New(testK, testH, testL)
	subject := node.Addr("faulty:1")
	// The same ring reported H times must not trigger a proposal: tallies
	// count distinct observers (rings), not repeated alerts.
	for i := 0; i < testH*2; i++ {
		a, ep := alertOnRing(0, subject, 0)
		if got := d.AggregateForProposal(a, ep, t0); len(got) != 0 {
			t.Fatalf("proposal emitted from duplicate reports: %v", got)
		}
	}
	if d.Tally(subject) != 1 {
		t.Fatalf("Tally = %d, want 1", d.Tally(subject))
	}
}

func TestInvalidRingNumbersIgnored(t *testing.T) {
	d := New(testK, testH, testL)
	subject := node.Addr("faulty:1")
	a, ep := alertOnRing(0, subject, -1)
	d.AggregateForProposal(a, ep, t0)
	a2, ep2 := alertOnRing(0, subject, testK)
	d.AggregateForProposal(a2, ep2, t0)
	if d.Tally(subject) != 0 {
		t.Fatalf("out-of-range ring numbers should be ignored, tally = %d", d.Tally(subject))
	}
}

func TestProposalDelayedWhileAnotherSubjectUnstable(t *testing.T) {
	// This is the heart of the multi-process cut rule (Figure 4 of the
	// paper): q sits between L and H, so the proposal about r,s,t waits.
	d := New(testK, testH, testL)
	q, r := node.Addr("q:1"), node.Addr("r:1")

	// r reaches H-1 reports; q reaches L reports (unstable).
	for i := 0; i < testH-1; i++ {
		a, ep := alertOnRing(i, r, i)
		d.AggregateForProposal(a, ep, t0)
	}
	for i := 0; i < testL; i++ {
		a, ep := alertOnRing(i, q, i)
		d.AggregateForProposal(a, ep, t0)
	}
	// r reaching H must NOT flush while q is unstable.
	a, ep := alertOnRing(testH-1, r, testH-1)
	if got := d.AggregateForProposal(a, ep, t0); len(got) != 0 {
		t.Fatalf("proposal emitted while another subject is unstable: %v", got)
	}
	// q reaching H flushes both as a single multi-node proposal.
	var got []node.Endpoint
	for i := testL; i < testH; i++ {
		a, ep := alertOnRing(i, q, i)
		got = d.AggregateForProposal(a, ep, t0)
	}
	if len(got) != 2 {
		t.Fatalf("expected a 2-node cut {q, r}, got %v", got)
	}
	if got[0].Addr != q || got[1].Addr != r {
		t.Fatalf("proposal should be sorted {q, r}, got %v", got)
	}
}

func TestSubjectBelowLIsNoise(t *testing.T) {
	d := New(testK, testH, testL)
	q, r := node.Addr("q:1"), node.Addr("r:1")
	// q gets L-1 reports: below the low watermark, it must not block r.
	for i := 0; i < testL-1; i++ {
		a, ep := alertOnRing(i, q, i)
		d.AggregateForProposal(a, ep, t0)
	}
	var got []node.Endpoint
	for i := 0; i < testH; i++ {
		a, ep := alertOnRing(i, r, i)
		got = d.AggregateForProposal(a, ep, t0)
	}
	if len(got) != 1 || got[0].Addr != r {
		t.Fatalf("noise below L must not delay the proposal; got %v", got)
	}
}

func TestMultipleProposalsSequentially(t *testing.T) {
	d := New(testK, testH, testL)
	first := node.Addr("a:1")
	second := node.Addr("b:1")
	var got []node.Endpoint
	for i := 0; i < testH; i++ {
		a, ep := alertOnRing(i, first, i)
		got = d.AggregateForProposal(a, ep, t0)
	}
	if len(got) != 1 {
		t.Fatalf("first proposal missing: %v", got)
	}
	for i := 0; i < testH; i++ {
		a, ep := alertOnRing(i, second, i)
		got = d.AggregateForProposal(a, ep, t0)
	}
	if len(got) != 1 || got[0].Addr != second {
		t.Fatalf("second proposal wrong: %v", got)
	}
	if d.ProposalsEmitted() != 2 {
		t.Fatalf("ProposalsEmitted = %d, want 2", d.ProposalsEmitted())
	}
}

func TestClearResetsState(t *testing.T) {
	d := New(testK, testH, testL)
	subject := node.Addr("x:1")
	for i := 0; i < testL; i++ {
		a, ep := alertOnRing(i, subject, i)
		d.AggregateForProposal(a, ep, t0)
	}
	if d.UpdatesInProgress() != 1 {
		t.Fatalf("UpdatesInProgress = %d, want 1", d.UpdatesInProgress())
	}
	d.Clear()
	if d.UpdatesInProgress() != 0 || d.Tally(subject) != 0 {
		t.Fatal("Clear did not reset state")
	}
}

func TestUnstableLongerThan(t *testing.T) {
	d := New(testK, testH, testL)
	subject := node.Addr("x:1")
	for i := 0; i < testL; i++ {
		a, ep := alertOnRing(i, subject, i)
		d.AggregateForProposal(a, ep, t0)
	}
	if got := d.UnstableLongerThan(t0.Add(time.Second), 10*time.Second); len(got) != 0 {
		t.Fatalf("subject reported stuck too early: %v", got)
	}
	got := d.UnstableLongerThan(t0.Add(11*time.Second), 10*time.Second)
	if len(got) != 1 || got[0] != subject {
		t.Fatalf("UnstableLongerThan = %v, want [%v]", got, subject)
	}
	// Once stable, the subject no longer appears.
	for i := testL; i < testH; i++ {
		a, ep := alertOnRing(i, subject, i)
		d.AggregateForProposal(a, ep, t0)
	}
	if got := d.UnstableLongerThan(t0.Add(time.Hour), 10*time.Second); len(got) != 0 {
		t.Fatalf("stable subject still reported as stuck: %v", got)
	}
}

func TestHasReportForRing(t *testing.T) {
	d := New(testK, testH, testL)
	subject := node.Addr("x:1")
	a, ep := alertOnRing(0, subject, 4)
	d.AggregateForProposal(a, ep, t0)
	if !d.HasReportForRing(subject, 4) {
		t.Error("expected a report on ring 4")
	}
	if d.HasReportForRing(subject, 5) {
		t.Error("unexpected report on ring 5")
	}
}

// buildTestView creates a K=10 view over n members named m0..m(n-1).
func buildTestView(n int) *view.View {
	eps := make([]node.Endpoint, n)
	for i := range eps {
		eps[i] = node.Endpoint{
			Addr: node.Addr(fmt.Sprintf("m%03d:1", i)),
			ID:   node.ID{High: uint64(i + 1), Low: uint64(i + 1)},
		}
	}
	return view.NewWithMembers(testK, eps)
}

func TestInvalidateFailingEdgesUnblocksStuckSubject(t *testing.T) {
	// Scenario: two faulty nodes f1, f2 where some observers of f1 are
	// themselves faulty (f2 among them) and never send their alerts. f1 is
	// stuck in the unstable region until implicit alerts from the faulty
	// observers are applied.
	v := buildTestView(30)
	d := New(testK, testH, testL)
	members := v.MemberAddrs()
	f1 := members[0]
	f1EP, _ := v.Member(f1)

	observers, err := v.ObserversOf(f1)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver alerts about f1 from all but two of its observers (distinct
	// ring numbers), leaving it just below H but above L.
	type obsRing struct {
		o    node.Addr
		ring int
	}
	var edges []obsRing
	seenRing := make(map[int]bool)
	for _, o := range observers {
		for _, ring := range v.RingNumbers(o, f1) {
			if !seenRing[ring] {
				seenRing[ring] = true
				edges = append(edges, obsRing{o, ring})
			}
		}
	}
	if len(edges) != testK {
		t.Fatalf("expected %d distinct observer rings, got %d", testK, len(edges))
	}
	silent := edges[testH-1:] // these observers never report
	loud := edges[:testH-1]
	for _, e := range loud {
		alert := remoting.AlertMessage{EdgeSrc: e.o, EdgeDst: f1, Status: remoting.EdgeDown, RingNumbers: []int{e.ring}}
		if got := d.AggregateForProposal(alert, f1EP, t0); len(got) != 0 {
			t.Fatalf("unexpected early proposal: %v", got)
		}
	}
	// Now make the silent observers themselves unstable (they are faulty too):
	// give each of them exactly L reports.
	for _, e := range silent {
		obsEP, _ := v.Member(e.o)
		obsObservers, _ := v.ObserversOf(e.o)
		count := 0
		seen := make(map[int]bool)
		for _, oo := range obsObservers {
			for _, ring := range v.RingNumbers(oo, e.o) {
				if count >= testL {
					break
				}
				if seen[ring] {
					continue
				}
				seen[ring] = true
				alert := remoting.AlertMessage{EdgeSrc: oo, EdgeDst: e.o, Status: remoting.EdgeDown, RingNumbers: []int{ring}}
				if got := d.AggregateForProposal(alert, obsEP, t0); len(got) != 0 {
					t.Fatalf("unexpected proposal while constructing scenario: %v", got)
				}
				count++
			}
		}
	}
	// Implicit alerts should now push f1 over H. The proposal may not flush
	// until the faulty observers themselves stabilize, so also drive them to
	// H afterwards and expect a combined cut.
	d.InvalidateFailingEdges(v, t0)
	if d.Tally(f1) < testH {
		t.Fatalf("implicit alerts should have brought f1 to H; tally = %d", d.Tally(f1))
	}
	// Drive the remaining unstable observers to stability.
	var final []node.Endpoint
	for _, e := range silent {
		obsEP, _ := v.Member(e.o)
		obsObservers, _ := v.ObserversOf(e.o)
		seen := make(map[int]bool)
		for _, oo := range obsObservers {
			for _, ring := range v.RingNumbers(oo, e.o) {
				if seen[ring] || d.HasReportForRing(e.o, ring) {
					continue
				}
				seen[ring] = true
				alert := remoting.AlertMessage{EdgeSrc: oo, EdgeDst: e.o, Status: remoting.EdgeDown, RingNumbers: []int{ring}}
				if got := d.AggregateForProposal(alert, obsEP, t0); len(got) != 0 {
					final = got
				}
			}
		}
	}
	if len(final) == 0 {
		t.Fatal("expected a final multi-node proposal including f1 and the faulty observers")
	}
	found := false
	for _, ep := range final {
		if ep.Addr == f1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("final proposal %v does not include f1", final)
	}
}

func TestJoinAlertsAggregateLikeRemoveAlerts(t *testing.T) {
	d := New(testK, testH, testL)
	joiner := node.Endpoint{Addr: "joiner:1", ID: node.ID{High: 42, Low: 42}, Metadata: map[string]string{"role": "web"}}
	var got []node.Endpoint
	for i := 0; i < testH; i++ {
		alert := remoting.AlertMessage{
			EdgeSrc:     node.Addr(fmt.Sprintf("observer-%d:1", i)),
			EdgeDst:     joiner.Addr,
			Status:      remoting.EdgeUp,
			RingNumbers: []int{i},
			JoinerID:    joiner.ID,
		}
		got = d.AggregateForProposal(alert, joiner, t0)
	}
	if len(got) != 1 || got[0].Addr != joiner.Addr || got[0].ID != joiner.ID {
		t.Fatalf("join proposal = %v, want the joiner endpoint", got)
	}
	if got[0].Metadata["role"] != "web" {
		t.Fatal("joiner metadata should be carried into the proposal")
	}
}

func TestAlmostEverywhereAgreementProperty(t *testing.T) {
	// Property-based version of the Figure 11 experiment: for F simultaneous
	// failures with all K*F alerts delivered in random order to independent
	// detectors, every detector must emit the identical full cut when
	// H-L is large (here H=9, L=3, so conflicts require pathological
	// orderings that cannot happen when all alerts are delivered).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := 2 + r.Intn(6)
		subjects := make([]node.Endpoint, f)
		for i := range subjects {
			subjects[i] = node.Endpoint{Addr: node.Addr(fmt.Sprintf("f%d:1", i)), ID: node.ID{High: uint64(i + 1), Low: 9}}
		}
		type alertEvent struct {
			alert remoting.AlertMessage
			ep    node.Endpoint
		}
		var alerts []alertEvent
		for i, s := range subjects {
			for ring := 0; ring < testK; ring++ {
				alerts = append(alerts, alertEvent{
					alert: remoting.AlertMessage{
						EdgeSrc:     node.Addr(fmt.Sprintf("obs-%d-%d:1", i, ring)),
						EdgeDst:     s.Addr,
						Status:      remoting.EdgeDown,
						RingNumbers: []int{ring},
					},
					ep: s,
				})
			}
		}
		d := New(testK, testH, testL)
		r.Shuffle(len(alerts), func(i, j int) { alerts[i], alerts[j] = alerts[j], alerts[i] })
		var final []node.Endpoint
		for _, a := range alerts {
			if got := d.AggregateForProposal(a.alert, a.ep, t0); len(got) > 0 {
				final = append(final, got...)
			}
		}
		// Across all emitted proposals, every failed subject appears exactly once.
		seen := make(map[node.Addr]int)
		for _, ep := range final {
			seen[ep.Addr]++
		}
		if len(seen) != f {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
