// Package cutdetect implements Rapid's multi-process cut detection (§4.2).
//
// Every process ingests REMOVE and JOIN alerts broadcast by observers about
// edges to their subjects, and tallies the number of distinct observers that
// reported each subject. With K observers per subject and two watermarks
// L ≤ H ≤ K, a subject is in "stable report mode" once its tally reaches H
// and in "unstable report mode" while the tally is between L and H. A process
// announces a configuration-change proposal only when at least one subject is
// stable and no subject is unstable — this single rule is what yields
// almost-everywhere agreement on a multi-node cut.
//
// The detector also implements the two liveness mechanisms of the paper:
// implicit alerts (an unstable observer of an unstable subject implicitly
// counts as an alert) and a reinforcement hook that lets the membership
// service echo REMOVE alerts for subjects stuck in the unstable region.
package cutdetect

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/view"
)

// Detector accumulates alerts for one configuration and emits at most one
// multi-process cut proposal batch at a time. It is safe for concurrent use.
type Detector struct {
	k, h, l int

	mu sync.Mutex
	// reportsPerHost maps subject -> ring number -> observer that reported it.
	reportsPerHost map[node.Addr]map[int]node.Addr
	// endpoints resolves the endpoint to include in a proposal for each
	// subject (needed for joiners, which are not in the current view).
	endpoints map[node.Addr]node.Endpoint
	// preProposal holds subjects in the unstable region [L, H).
	preProposal map[node.Addr]bool
	// unstableSince records when a subject entered the unstable region, for
	// the reinforcement timeout.
	unstableSince map[node.Addr]time.Time
	// proposal holds subjects that reached H and await flushing.
	proposal map[node.Addr]bool
	// updatesInProgress counts subjects currently in the unstable region.
	updatesInProgress int
	// proposalsEmitted counts flushed proposals (diagnostics/tests).
	proposalsEmitted int
}

// New creates a detector for a configuration with K observers per subject and
// watermarks H and L. It panics if the parameters are inconsistent, since
// they are static configuration supplied by the caller.
func New(k, h, l int) *Detector {
	if k <= 0 || l < 1 || h < l || h > k {
		panic(fmt.Sprintf("cutdetect: invalid parameters K=%d H=%d L=%d (need 1 <= L <= H <= K)", k, h, l))
	}
	return &Detector{
		k:              k,
		h:              h,
		l:              l,
		reportsPerHost: make(map[node.Addr]map[int]node.Addr),
		endpoints:      make(map[node.Addr]node.Endpoint),
		preProposal:    make(map[node.Addr]bool),
		unstableSince:  make(map[node.Addr]time.Time),
		proposal:       make(map[node.Addr]bool),
	}
}

// AggregateForProposal ingests one alert and returns a (possibly empty) list
// of endpoints forming a view-change proposal. A non-empty return means the
// aggregation rule fired: at least one subject is stable and none is
// unstable. `now` is used to time how long subjects stay unstable.
func (d *Detector) AggregateForProposal(alert remoting.AlertMessage, subject node.Endpoint, now time.Time) []node.Endpoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []node.Endpoint
	for _, ring := range alert.RingNumbers {
		out = append(out, d.aggregateLocked(alert.EdgeSrc, alert.EdgeDst, subject, ring, now)...)
	}
	return out
}

// aggregateLocked applies a single (observer, subject, ring) report.
func (d *Detector) aggregateLocked(observer, subjectAddr node.Addr, subject node.Endpoint, ring int, now time.Time) []node.Endpoint {
	if ring < 0 || ring >= d.k {
		return nil
	}
	reports, ok := d.reportsPerHost[subjectAddr]
	if !ok {
		reports = make(map[int]node.Addr, d.k)
		d.reportsPerHost[subjectAddr] = reports
	}
	if _, dup := reports[ring]; dup {
		return nil // Already have a report for this ring.
	}
	if len(reports) >= d.h {
		return nil // Already saturated; no more bookkeeping needed.
	}
	reports[ring] = observer
	d.endpoints[subjectAddr] = subject
	count := len(reports)

	if count == d.l {
		d.updatesInProgress++
		d.preProposal[subjectAddr] = true
		d.unstableSince[subjectAddr] = now
	}
	if count == d.h {
		delete(d.preProposal, subjectAddr)
		delete(d.unstableSince, subjectAddr)
		d.proposal[subjectAddr] = true
		d.updatesInProgress--
		if d.updatesInProgress == 0 {
			// No subject is unstable: flush everything in stable mode as one
			// multi-process cut proposal.
			d.proposalsEmitted++
			out := make([]node.Endpoint, 0, len(d.proposal))
			for addr := range d.proposal {
				out = append(out, d.endpoints[addr])
			}
			d.proposal = make(map[node.Addr]bool)
			sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
			return out
		}
	}
	return nil
}

// InvalidateFailingEdges applies implicit alerts: if both an observer o and
// its subject s are in the unstable region (or o is already in the stable
// set), an implicit alert from o about s is applied. This prevents the
// detector from waiting forever for alerts from observers that are themselves
// faulty (§4.2, "Ensuring liveness"). It returns any proposal that results.
func (d *Detector) InvalidateFailingEdges(v *view.View, now time.Time) []node.Endpoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.preProposal) == 0 {
		return nil
	}
	// Work on a sorted snapshot of the unstable subjects for determinism.
	unstable := make([]node.Addr, 0, len(d.preProposal))
	for a := range d.preProposal {
		unstable = append(unstable, a)
	}
	node.SortAddrs(unstable)

	var out []node.Endpoint
	for _, subjectAddr := range unstable {
		subject, ok := d.endpoints[subjectAddr]
		if !ok {
			subject = node.Endpoint{Addr: subjectAddr}
		}
		var observers []node.Addr
		if v.Contains(subjectAddr) {
			observers, _ = v.ObserversOf(subjectAddr)
		} else {
			observers = v.ExpectedObserversOf(subjectAddr)
		}
		for _, o := range observers {
			if !d.unstableOrProposedLocked(o) {
				continue
			}
			rings := v.RingNumbers(o, subjectAddr)
			for _, ring := range rings {
				out = append(out, d.aggregateLocked(o, subjectAddr, subject, ring, now)...)
			}
		}
	}
	return out
}

// unstableOrProposedLocked reports whether addr is itself in the unstable
// region or already part of the pending stable set.
func (d *Detector) unstableOrProposedLocked(addr node.Addr) bool {
	return d.preProposal[addr] || d.proposal[addr]
}

// UnstableLongerThan returns the subjects that have been in the unstable
// region for at least the given duration. The membership service uses this to
// trigger reinforcement: observers of a stuck subject echo REMOVE alerts.
func (d *Detector) UnstableLongerThan(now time.Time, timeout time.Duration) []node.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []node.Addr
	for addr, since := range d.unstableSince {
		if now.Sub(since) >= timeout {
			out = append(out, addr)
		}
	}
	node.SortAddrs(out)
	return out
}

// Tally returns the number of distinct observer reports seen for a subject.
func (d *Detector) Tally(subject node.Addr) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.reportsPerHost[subject])
}

// HasReportForRing reports whether an alert about subject was already
// received on the given ring (used to avoid duplicate reinforcement).
func (d *Detector) HasReportForRing(subject node.Addr, ring int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.reportsPerHost[subject][ring]
	return ok
}

// UpdatesInProgress returns the number of subjects currently unstable.
func (d *Detector) UpdatesInProgress() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.updatesInProgress
}

// ProposalsEmitted returns the number of proposals flushed so far.
func (d *Detector) ProposalsEmitted() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.proposalsEmitted
}

// Clear resets all detector state. It is called after every view change,
// since tallies never carry across configurations.
func (d *Detector) Clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reportsPerHost = make(map[node.Addr]map[int]node.Addr)
	d.endpoints = make(map[node.Addr]node.Endpoint)
	d.preProposal = make(map[node.Addr]bool)
	d.unstableSince = make(map[node.Addr]time.Time)
	d.proposal = make(map[node.Addr]bool)
	d.updatesInProgress = 0
}
