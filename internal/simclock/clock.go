// Package simclock provides the clock abstraction used by all protocol code.
// Production code uses the real wall clock; unit tests and deterministic
// simulations drive a manual clock so that timeouts (failure detection
// windows, consensus fallback delays, reinforcement timeouts) can be
// exercised without real sleeping.
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time facility protocol code needs: reading the current
// time, sleeping, and obtaining wakeup channels.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// NewReal returns the wall-clock implementation of Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Manual is a Clock whose time only moves when Advance is called. Sleepers
// and After-channels fire when the manual time passes their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a manual clock starting at the given time.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// After implements Clock. The returned channel fires when Advance moves the
// clock at or past the deadline.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &waiter{deadline: m.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, w)
	return ch
}

// Sleep implements Clock: it blocks until the manual time advances past the
// deadline. Another goroutine must call Advance for Sleep to return.
func (m *Manual) Sleep(d time.Duration) {
	<-m.After(d)
}

// Advance moves the clock forward by d and fires any waiters whose deadline
// has been reached, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var due, remaining []*waiter
	for _, w := range m.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		w.ch <- now
	}
}

// PendingWaiters reports how many sleepers/After channels have not fired yet.
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

var _ Clock = Real{}
var _ Clock = (*Manual)(nil)
