// Package simclock provides the clock abstraction used by all protocol code.
// Production code uses the real wall clock; unit tests and deterministic
// simulations drive a manual clock so that timeouts (failure detection
// windows, consensus fallback delays, reinforcement timeouts) can be
// exercised without real sleeping.
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time facility protocol code needs: reading the current
// time, sleeping, and obtaining wakeup channels.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
	// Ticker returns a repeating timer firing every d. Unlike calling After
	// in a loop, a ticker reuses its channel and timer state, so periodic
	// protocol loops (alert batching, reinforcement) allocate nothing per
	// tick. Callers must Stop it when done.
	Ticker(d time.Duration) Ticker
	// Timer returns a one-shot timer firing after d that can be re-armed
	// with a different duration, which is what variable-period loops (the
	// adaptive batching window) need: a Ticker's period is fixed at creation.
	// Reset may only be called after the timer's value has been received from
	// C (the engine's flush loop always consumes the tick before re-arming).
	// Callers must Stop it when done.
	Timer(d time.Duration) Timer
}

// Ticker is a repeating timer. Like time.Ticker, delivery is coalescing: if
// the receiver falls behind, intermediate ticks are dropped rather than
// queued.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop halts future deliveries. It does not close the channel.
	Stop()
}

// Timer is a re-armable one-shot timer. Unlike Ticker, each firing is armed
// explicitly, so consecutive periods may differ (adaptive batching windows).
type Timer interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Reset re-arms the timer to fire after d. It must only be called after
	// the previous firing was received from C (or after Stop).
	Reset(d time.Duration)
	// Stop halts a pending firing. It does not close the channel.
	Stop()
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// NewReal returns the wall-clock implementation of Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Ticker implements Clock.
func (Real) Ticker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Timer implements Clock.
func (Real) Timer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }

// Reset relies on the Timer contract: the caller has already received the
// previous firing (or called Stop), so the channel is known to be drained.
func (rt realTimer) Reset(d time.Duration) { rt.t.Reset(d) }
func (rt realTimer) Stop()                 { rt.t.Stop() }

// Manual is a Clock whose time only moves when Advance is called. Sleepers
// and After-channels fire when the manual time passes their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
	// period is non-zero for ticker waiters, which re-arm after firing.
	period  time.Duration
	stopped bool
}

// NewManual returns a manual clock starting at the given time.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// After implements Clock. The returned channel fires when Advance moves the
// clock at or past the deadline.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &waiter{deadline: m.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, w)
	return ch
}

// Sleep implements Clock: it blocks until the manual time advances past the
// deadline. Another goroutine must call Advance for Sleep to return.
func (m *Manual) Sleep(d time.Duration) {
	<-m.After(d)
}

// Ticker implements Clock. Manual tickers fire at most once per Advance call
// (coalescing, like time.Ticker under a slow receiver) and re-arm relative to
// the advanced time.
func (m *Manual) Ticker(d time.Duration) Ticker {
	if d <= 0 {
		d = time.Nanosecond
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1), period: d}
	m.waiters = append(m.waiters, w)
	return &manualTicker{m: m, w: w}
}

type manualTicker struct {
	m *Manual
	w *waiter
}

func (mt *manualTicker) C() <-chan time.Time { return mt.w.ch }

// Stop implements Ticker: the waiter is flagged and dropped from the waiter
// list on the next Advance.
func (mt *manualTicker) Stop() {
	mt.m.mu.Lock()
	mt.w.stopped = true
	mt.m.mu.Unlock()
}

// Timer implements Clock. Manual timers reuse the waiter machinery: each arm
// installs a fresh one-shot waiter delivering on the timer's channel.
func (m *Manual) Timer(d time.Duration) Timer {
	mt := &manualTimer{m: m, ch: make(chan time.Time, 1)}
	mt.arm(d)
	return mt
}

type manualTimer struct {
	m  *Manual
	ch chan time.Time
	w  *waiter
}

func (mt *manualTimer) C() <-chan time.Time { return mt.ch }

// arm queues a waiter for the next firing. A non-positive duration fires
// immediately, matching After.
func (mt *manualTimer) arm(d time.Duration) {
	mt.m.mu.Lock()
	defer mt.m.mu.Unlock()
	w := &waiter{deadline: mt.m.now.Add(d), ch: mt.ch}
	mt.w = w
	if d <= 0 {
		select {
		case mt.ch <- mt.m.now:
		default:
		}
		return
	}
	mt.m.waiters = append(mt.m.waiters, w)
}

// Reset implements Timer. Per the Timer contract the previous firing has been
// received (or stopped), so the stale waiter — if it has not fired yet — is
// flagged for removal and a fresh one is queued.
func (mt *manualTimer) Reset(d time.Duration) {
	mt.m.mu.Lock()
	if mt.w != nil {
		mt.w.stopped = true
	}
	mt.m.mu.Unlock()
	mt.arm(d)
}

// Stop implements Timer.
func (mt *manualTimer) Stop() {
	mt.m.mu.Lock()
	if mt.w != nil {
		mt.w.stopped = true
	}
	mt.m.mu.Unlock()
}

// Advance moves the clock forward by d and fires any waiters whose deadline
// has been reached, in deadline order. One-shot waiters are removed; ticker
// waiters re-arm at now + period.
func (m *Manual) Advance(d time.Duration) {
	type firing struct {
		w  *waiter
		at time.Time
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var due []firing
	var remaining []*waiter
	for _, w := range m.waiters {
		if w.stopped {
			continue
		}
		if !w.deadline.After(now) {
			due = append(due, firing{w: w, at: w.deadline})
			if w.period > 0 {
				w.deadline = now.Add(w.period)
				remaining = append(remaining, w)
			}
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, f := range due {
		if f.w.period > 0 {
			// Coalescing delivery: drop the tick if the receiver is behind.
			select {
			case f.w.ch <- now:
			default:
			}
		} else {
			f.w.ch <- now
		}
	}
}

// PendingWaiters reports how many sleepers/After channels have not fired yet.
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

var _ Clock = Real{}
var _ Clock = (*Manual)(nil)
