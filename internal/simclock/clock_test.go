package simclock

import (
	"testing"
	"time"
)

func TestRealClockMonotonicEnough(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(a) <= 0 {
		t.Error("real clock did not advance across Sleep")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Error("real clock After never fired")
	}
}

func TestManualNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(5 * time.Second)
	if got := c.Since(start); got != 5*time.Second {
		t.Errorf("Since = %v, want 5s", got)
	}
}

func TestManualAfterFiresAtDeadline(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before any Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before the deadline")
	default:
	}
	c.Advance(time.Second)
	select {
	case now := <-ch:
		if !now.Equal(time.Unix(10, 0)) {
			t.Errorf("After delivered %v, want %v", now, time.Unix(10, 0))
		}
	default:
		t.Fatal("After did not fire at the deadline")
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(negative) should fire immediately")
	}
}

func TestManualSleepUnblocksOnAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(3 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	deadline := time.Now().Add(time.Second)
	for c.PendingWaiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestManualMultipleWaitersFireInOrder(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ch1 := c.After(1 * time.Second)
	ch2 := c.After(2 * time.Second)
	ch3 := c.After(10 * time.Second)
	c.Advance(5 * time.Second)
	for i, ch := range []<-chan time.Time{ch1, ch2} {
		select {
		case <-ch:
		default:
			t.Fatalf("waiter %d did not fire", i+1)
		}
	}
	select {
	case <-ch3:
		t.Fatal("waiter beyond the advanced time fired")
	default:
	}
	if c.PendingWaiters() != 1 {
		t.Errorf("PendingWaiters = %d, want 1", c.PendingWaiters())
	}
}

func TestManualTickerFiresRepeatedly(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	tk := c.Ticker(time.Second)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		c.Advance(time.Second)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d did not fire", i+1)
		}
	}
}

func TestManualTickerCoalescesMissedTicks(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	tk := c.Ticker(time.Second)
	defer tk.Stop()
	// Advancing far past several periods without draining delivers one tick.
	c.Advance(5 * time.Second)
	c.Advance(5 * time.Second)
	select {
	case <-tk.C():
	default:
		t.Fatal("ticker did not fire")
	}
	select {
	case <-tk.C():
		t.Fatal("missed ticks should coalesce into a single delivery")
	default:
	}
	// After draining, the ticker is re-armed relative to the advanced time.
	c.Advance(time.Second)
	select {
	case <-tk.C():
	default:
		t.Fatal("ticker did not re-arm after a coalesced delivery")
	}
}

func TestManualTickerStop(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	tk := c.Ticker(time.Second)
	tk.Stop()
	c.Advance(3 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
	if c.PendingWaiters() != 0 {
		t.Errorf("PendingWaiters = %d, want 0 after stop", c.PendingWaiters())
	}
}

func TestRealTicker(t *testing.T) {
	tk := NewReal().Ticker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not fire")
	}
}

func TestManualTimerFiresOnceAndResets(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	tm := c.Timer(time.Second)
	c.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	// One-shot: no further firings without a Reset.
	c.Advance(5 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("one-shot timer fired twice")
	default:
	}
	// Reset re-arms with a different duration, relative to the current time.
	tm.Reset(2 * time.Second)
	c.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("reset timer fired before its new deadline")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire at its new deadline")
	}
}

func TestManualTimerStop(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	tm := c.Timer(time.Second)
	tm.Stop()
	c.Advance(3 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	// Reset after Stop re-arms.
	tm.Reset(time.Second)
	c.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire after Reset following Stop")
	}
}

func TestManualTimerZeroFiresImmediately(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	tm := c.Timer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer should fire immediately")
	}
}

func TestRealTimer(t *testing.T) {
	tm := NewReal().Timer(time.Millisecond)
	defer tm.Stop()
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	tm.Reset(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire after Reset")
	}
}
