// Package view implements Rapid's membership view and its K-ring expander
// monitoring topology (§4.1 of the paper). A view is a configuration: a set
// of member endpoints plus a configuration identifier. The same membership
// set always produces the same K rings on every process, so each process can
// locally determine its observers and subjects without communication.
//
// The topology is built from K pseudo-random rings: ring r orders all members
// by a per-ring hash of their address. A pair (o, s) is an observer/subject
// edge if o immediately precedes s in some ring. Every process therefore has
// K observers and K subjects, and the union of the rings is (with high
// probability) a good expander — the property §8 of the paper relies on.
//
// Hot-path design: each member's K ring hashes are computed exactly once, at
// insert time, and every member record carries its current index in each ring.
// Topology queries (ObserversOf, SubjectsOf, RingNumbers) are therefore O(K)
// array lookups with no hashing and no searching, and bulk construction
// (NewWithMembers) hashes each address K times and sorts each ring once —
// O(K·N log N) — instead of performing N repeated sorted insertions.
package view

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/node"
	"repro/internal/remoting"
)

// Errors returned by view mutations and queries.
var (
	// ErrNodeAlreadyInRing indicates an endpoint address is already a member.
	ErrNodeAlreadyInRing = errors.New("view: node already in ring")
	// ErrNodeNotInRing indicates the endpoint address is not a member.
	ErrNodeNotInRing = errors.New("view: node not in ring")
	// ErrUUIDAlreadyInRing indicates the logical identifier was already used
	// in this view; the joiner must retry with a fresh identifier.
	ErrUUIDAlreadyInRing = errors.New("view: UUID already in ring")
)

// memberRec is the internal record for one member. hashes is immutable after
// construction (and therefore shared with clones); pos tracks the member's
// current index in each ring and is updated by ring mutations.
type memberRec struct {
	ep     node.Endpoint
	hashes []uint64 // per-ring ordering hash, computed once at insert time
	pos    []int    // current index of this member in each ring
}

// View is a configuration: a membership set arranged into K rings. All methods
// are safe for concurrent use.
type View struct {
	k int

	mu            sync.RWMutex
	rings         [][]*memberRec
	byAddr        map[node.Addr]*memberRec
	seenIDs       map[node.ID]bool
	cachedConfig  uint64
	configIsValid bool
}

// New creates an empty view with k rings. k must be at least 1; the paper
// uses K=10.
func New(k int) *View {
	if k < 1 {
		panic("view: k must be >= 1")
	}
	return &View{
		k:       k,
		rings:   make([][]*memberRec, k),
		byAddr:  make(map[node.Addr]*memberRec),
		seenIDs: make(map[node.ID]bool),
	}
}

// NewWithMembers creates a view with k rings containing the given members.
// Duplicate addresses and identifiers are ignored silently: initial member
// lists may repeat seeds. Construction hashes each member once per ring and
// sorts each ring once, which is far cheaper than repeated AddMember calls.
func NewWithMembers(k int, members []node.Endpoint) *View {
	v := New(k)
	recs := make([]*memberRec, 0, len(members))
	// Block-allocate the records and their hash/position arrays: one backing
	// array each instead of three allocations per member.
	recBlock := make([]memberRec, len(members))
	hashBlock := make([]uint64, len(members)*k)
	posBlock := make([]int, len(members)*k)
	for _, ep := range members {
		if _, ok := v.byAddr[ep.Addr]; ok {
			continue
		}
		if v.seenIDs[ep.ID] {
			continue
		}
		i := len(recs)
		rec := &recBlock[i]
		rec.ep = ep
		rec.hashes = hashBlock[i*k : (i+1)*k : (i+1)*k]
		rec.pos = posBlock[i*k : (i+1)*k : (i+1)*k]
		fillRingHashes(rec.hashes, ep.Addr)
		v.byAddr[ep.Addr] = rec
		v.seenIDs[ep.ID] = true
		recs = append(recs, rec)
	}
	// Sort (hash, rec) pairs rather than *memberRec directly: comparisons stay
	// on a contiguous value slice instead of chasing pointers.
	type ringKey struct {
		hash uint64
		rec  *memberRec
	}
	keys := make([]ringKey, len(recs))
	ringBlock := make([]*memberRec, len(recs)*k)
	for r := 0; r < k; r++ {
		for i, rec := range recs {
			keys[i] = ringKey{hash: rec.hashes[r], rec: rec}
		}
		slices.SortFunc(keys, func(a, b ringKey) int {
			if a.hash != b.hash {
				if a.hash < b.hash {
					return -1
				}
				return 1
			}
			return strings.Compare(string(a.rec.ep.Addr), string(b.rec.ep.Addr))
		})
		ring := ringBlock[r*len(recs) : (r+1)*len(recs) : (r+1)*len(recs)]
		for i, key := range keys {
			ring[i] = key.rec
			key.rec.pos[r] = i
		}
		v.rings[r] = ring
	}
	return v
}

// K returns the number of rings (observers per subject).
func (v *View) K() int { return v.k }

// Size returns the number of members in the view.
func (v *View) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.byAddr)
}

// Contains reports whether addr is a member of the view.
func (v *View) Contains(addr node.Addr) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.byAddr[addr]
	return ok
}

// ContainsID reports whether the logical identifier has been seen in this view.
func (v *View) ContainsID(id node.ID) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.seenIDs[id]
}

// Member returns the endpoint registered for addr.
func (v *View) Member(addr node.Addr) (node.Endpoint, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	rec, ok := v.byAddr[addr]
	if !ok {
		return node.Endpoint{}, false
	}
	return rec.ep, true
}

// Members returns all member endpoints sorted by address.
func (v *View) Members() []node.Endpoint {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Endpoint, 0, len(v.byAddr))
	for _, rec := range v.byAddr {
		out = append(out, rec.ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// MemberAddrs returns all member addresses sorted lexicographically.
func (v *View) MemberAddrs() []node.Addr {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Addr, 0, len(v.byAddr))
	for a := range v.byAddr {
		out = append(out, a)
	}
	node.SortAddrs(out)
	return out
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// ringHash orders members within ring r. FNV-1a over the ring index and the
// address, followed by a 64-bit avalanche finalizer (the murmur3 fmix64
// routine), gives every ring an effectively independent pseudo-random
// permutation that every process computes identically. The finalizer matters:
// without it, orderings of nearby ring indices are correlated and the union
// of the rings is a much weaker expander.
//
// The hash is inlined (no hash.Hash64 allocation) and each member's K hashes
// are computed exactly once, at insert time; comparisons never hash.
func ringHash(addr node.Addr, ring int) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(byte(ring))) * fnvPrime
	h = (h ^ uint64(byte(ring>>8))) * fnvPrime
	h = (h ^ uint64(byte(ring>>16))) * fnvPrime
	h = (h ^ uint64(byte(ring>>24))) * fnvPrime
	for i := 0; i < len(addr); i++ {
		h = (h ^ uint64(addr[i])) * fnvPrime
	}
	return fmix64(h)
}

// fillRingHashes computes the per-ring hashes of addr into dst (len K).
func fillRingHashes(dst []uint64, addr node.Addr) {
	for r := range dst {
		dst[r] = ringHash(addr, r)
	}
}

// fmix64 is the murmur3 64-bit finalizer: a cheap bijective avalanche mix.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// searchRing returns the insertion index in ring (sorted for ring r) for a
// member with the given hash and address: the first index whose entry does not
// order strictly before (hash, addr). The address is the tie-breaker so the
// order is total even under hash collisions.
func searchRing(ring []*memberRec, r int, hash uint64, addr node.Addr) int {
	lo, hi := 0, len(ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := ring[mid]
		if e.hashes[r] < hash || (e.hashes[r] == hash && e.ep.Addr < addr) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AddMember inserts an endpoint into every ring. It fails if the address or
// the logical identifier is already present.
func (v *View) AddMember(ep node.Endpoint) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.byAddr[ep.Addr]; ok {
		return ErrNodeAlreadyInRing
	}
	if v.seenIDs[ep.ID] {
		return ErrUUIDAlreadyInRing
	}
	rec := &memberRec{
		ep:     ep,
		hashes: make([]uint64, v.k),
		pos:    make([]int, v.k),
	}
	fillRingHashes(rec.hashes, ep.Addr)
	v.byAddr[ep.Addr] = rec
	v.seenIDs[ep.ID] = true
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		idx := searchRing(ring, r, rec.hashes[r], ep.Addr)
		ring = append(ring, nil)
		copy(ring[idx+1:], ring[idx:])
		ring[idx] = rec
		rec.pos[r] = idx
		for i := idx + 1; i < len(ring); i++ {
			ring[i].pos[r]++
		}
		v.rings[r] = ring
	}
	v.configIsValid = false
	return nil
}

// RemoveMember removes the endpoint with the given address from every ring.
// The position index makes each ring removal a direct O(1) lookup plus the
// unavoidable shift, with no searching.
func (v *View) RemoveMember(addr node.Addr) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	rec, ok := v.byAddr[addr]
	if !ok {
		return ErrNodeNotInRing
	}
	delete(v.byAddr, addr)
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		idx := rec.pos[r]
		copy(ring[idx:], ring[idx+1:])
		ring[len(ring)-1] = nil
		ring = ring[:len(ring)-1]
		for i := idx; i < len(ring); i++ {
			ring[i].pos[r]--
		}
		v.rings[r] = ring
	}
	// Note: the logical ID stays in seenIDs; a process that rejoins must use
	// a new identifier, as required by §3.
	v.configIsValid = false
	return nil
}

// ObserversOf returns the K processes that monitor addr: the predecessor of
// addr in each ring. With fewer than two members there are no observers.
func (v *View) ObserversOf(addr node.Addr) ([]node.Addr, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	rec, ok := v.byAddr[addr]
	if !ok {
		return nil, ErrNodeNotInRing
	}
	return v.neighboursLocked(rec, -1), nil
}

// SubjectsOf returns the K processes that addr monitors: the successor of
// addr in each ring.
func (v *View) SubjectsOf(addr node.Addr) ([]node.Addr, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	rec, ok := v.byAddr[addr]
	if !ok {
		return nil, ErrNodeNotInRing
	}
	return v.neighboursLocked(rec, +1), nil
}

// UniqueSubjectsOf returns the distinct subjects of addr, excluding addr
// itself: the set of processes addr must run an edge failure detector
// against. Ring multiplicity is irrelevant to monitoring, so callers that
// start one monitor per subject want this rather than SubjectsOf.
func (v *View) UniqueSubjectsOf(addr node.Addr) ([]node.Addr, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	rec, ok := v.byAddr[addr]
	if !ok {
		return nil, ErrNodeNotInRing
	}
	subs := v.neighboursLocked(rec, +1)
	out := subs[:0]
	for _, s := range subs {
		if s == addr {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out, nil
}

// neighboursLocked returns the ring neighbour of rec in each ring in ring
// order; direction -1 selects predecessors (observers), +1 successors
// (subjects). Must be called with the lock held.
func (v *View) neighboursLocked(rec *memberRec, direction int) []node.Addr {
	out := make([]node.Addr, 0, v.k)
	if len(v.byAddr) <= 1 {
		return out
	}
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		n := len(ring)
		out = append(out, ring[((rec.pos[r]+direction)%n+n)%n].ep.Addr)
	}
	return out
}

// ExpectedObserversOf returns the processes that would observe addr if it
// were a member: the predecessors of addr's would-be position in each ring.
// A joining process contacts these as its temporary observers (§4.1).
func (v *View) ExpectedObserversOf(addr node.Addr) []node.Addr {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Addr, 0, v.k)
	if len(v.byAddr) == 0 {
		return out
	}
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		if len(ring) == 0 {
			continue
		}
		idx := searchRing(ring, r, ringHash(addr, r), addr)
		n := len(ring)
		out = append(out, ring[((idx-1)%n+n)%n].ep.Addr)
	}
	return out
}

// RingNumbers returns the ring indices in which observer immediately precedes
// subject, i.e. the rings on which an alert from observer about subject is
// valid. For a subject not in the view (a joiner) the would-be position is
// used, matching ExpectedObserversOf.
func (v *View) RingNumbers(observer, subject node.Addr) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var out []int
	if rec, ok := v.byAddr[subject]; ok {
		if len(v.byAddr) <= 1 {
			return out
		}
		for r := 0; r < v.k; r++ {
			ring := v.rings[r]
			n := len(ring)
			if ring[((rec.pos[r]-1)%n+n)%n].ep.Addr == observer {
				out = append(out, r)
			}
		}
		return out
	}
	// Joiner case: locate the would-be position by binary search, hashing the
	// probe address once per ring.
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		if len(ring) == 0 {
			continue
		}
		idx := searchRing(ring, r, ringHash(subject, r), subject)
		n := len(ring)
		if ring[((idx-1)%n+n)%n].ep.Addr == observer {
			out = append(out, r)
		}
	}
	return out
}

// ConfigurationID returns a 64-bit identifier of this configuration: a hash
// over the sorted (address, identifier) pairs of the membership set. Two
// processes with identical views compute identical identifiers.
//
// The common case — the cached identifier is valid — takes only the read
// lock, so concurrent readers are not serialized; the write lock is taken
// only to recompute after a membership change (double-checked).
func (v *View) ConfigurationID() uint64 {
	v.mu.RLock()
	if v.configIsValid {
		id := v.cachedConfig
		v.mu.RUnlock()
		return id
	}
	v.mu.RUnlock()

	v.mu.Lock()
	defer v.mu.Unlock()
	if v.configIsValid {
		return v.cachedConfig
	}
	addrs := make([]node.Addr, 0, len(v.byAddr))
	for a := range v.byAddr {
		addrs = append(addrs, a)
	}
	node.SortAddrs(addrs)
	h := uint64(fnvOffset)
	for _, a := range addrs {
		id := v.byAddr[a].ep.ID
		for i := 0; i < len(a); i++ {
			h = (h ^ uint64(a[i])) * fnvPrime
		}
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(id.High>>(8*i)))) * fnvPrime
		}
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(id.Low>>(8*i)))) * fnvPrime
		}
	}
	v.cachedConfig = h
	v.configIsValid = true
	return v.cachedConfig
}

// IsSafeToJoin classifies a join attempt against the current view.
func (v *View) IsSafeToJoin(addr node.Addr, id node.ID) remoting.JoinStatus {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if _, ok := v.byAddr[addr]; ok {
		return remoting.JoinHostAlreadyInRing
	}
	if v.seenIDs[id] {
		return remoting.JoinUUIDAlreadyInRing
	}
	return remoting.JoinSafeToJoin
}

// Clone returns a deep copy of the view (used when handing a snapshot to a
// new configuration or to application callbacks).
func (v *View) Clone() *View {
	v.mu.RLock()
	defer v.mu.RUnlock()
	clone := New(v.k)
	for a, rec := range v.byAddr {
		// The hash slice is immutable after construction and safely shared;
		// positions are mutable per-view state and must be copied.
		clone.byAddr[a] = &memberRec{
			ep:     rec.ep,
			hashes: rec.hashes,
			pos:    append([]int(nil), rec.pos...),
		}
	}
	for id := range v.seenIDs {
		clone.seenIDs[id] = true
	}
	for r := 0; r < v.k; r++ {
		ring := make([]*memberRec, len(v.rings[r]))
		for i, rec := range v.rings[r] {
			ring[i] = clone.byAddr[rec.ep.Addr]
		}
		clone.rings[r] = ring
	}
	clone.cachedConfig = v.cachedConfig
	clone.configIsValid = v.configIsValid
	return clone
}

// Ring returns a copy of ring r, primarily for the expander analysis in
// package graph and for tests.
func (v *View) Ring(r int) ([]node.Endpoint, error) {
	if r < 0 || r >= v.k {
		return nil, fmt.Errorf("view: ring %d out of range [0,%d)", r, v.k)
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Endpoint, len(v.rings[r]))
	for i, rec := range v.rings[r] {
		out[i] = rec.ep
	}
	return out, nil
}
