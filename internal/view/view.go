// Package view implements Rapid's membership view and its K-ring expander
// monitoring topology (§4.1 of the paper). A view is a configuration: a set
// of member endpoints plus a configuration identifier. The same membership
// set always produces the same K rings on every process, so each process can
// locally determine its observers and subjects without communication.
//
// The topology is built from K pseudo-random rings: ring r orders all members
// by a per-ring hash of their address. A pair (o, s) is an observer/subject
// edge if o immediately precedes s in some ring. Every process therefore has
// K observers and K subjects, and the union of the rings is (with high
// probability) a good expander — the property §8 of the paper relies on.
package view

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/node"
	"repro/internal/remoting"
)

// Errors returned by view mutations and queries.
var (
	// ErrNodeAlreadyInRing indicates an endpoint address is already a member.
	ErrNodeAlreadyInRing = errors.New("view: node already in ring")
	// ErrNodeNotInRing indicates the endpoint address is not a member.
	ErrNodeNotInRing = errors.New("view: node not in ring")
	// ErrUUIDAlreadyInRing indicates the logical identifier was already used
	// in this view; the joiner must retry with a fresh identifier.
	ErrUUIDAlreadyInRing = errors.New("view: UUID already in ring")
)

// View is a configuration: a membership set arranged into K rings. All methods
// are safe for concurrent use.
type View struct {
	k int

	mu            sync.RWMutex
	rings         [][]node.Endpoint
	byAddr        map[node.Addr]node.Endpoint
	seenIDs       map[node.ID]bool
	cachedConfig  uint64
	configIsValid bool
}

// New creates an empty view with k rings. k must be at least 1; the paper
// uses K=10.
func New(k int) *View {
	if k < 1 {
		panic("view: k must be >= 1")
	}
	v := &View{
		k:       k,
		rings:   make([][]node.Endpoint, k),
		byAddr:  make(map[node.Addr]node.Endpoint),
		seenIDs: make(map[node.ID]bool),
	}
	for i := range v.rings {
		v.rings[i] = nil
	}
	return v
}

// NewWithMembers creates a view with k rings containing the given members.
func NewWithMembers(k int, members []node.Endpoint) *View {
	v := New(k)
	for _, m := range members {
		// Ignore duplicates silently: initial member lists may repeat seeds.
		_ = v.AddMember(m)
	}
	return v
}

// K returns the number of rings (observers per subject).
func (v *View) K() int { return v.k }

// Size returns the number of members in the view.
func (v *View) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.byAddr)
}

// Contains reports whether addr is a member of the view.
func (v *View) Contains(addr node.Addr) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.byAddr[addr]
	return ok
}

// ContainsID reports whether the logical identifier has been seen in this view.
func (v *View) ContainsID(id node.ID) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.seenIDs[id]
}

// Member returns the endpoint registered for addr.
func (v *View) Member(addr node.Addr) (node.Endpoint, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	ep, ok := v.byAddr[addr]
	return ep, ok
}

// Members returns all member endpoints sorted by address.
func (v *View) Members() []node.Endpoint {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Endpoint, 0, len(v.byAddr))
	for _, ep := range v.byAddr {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// MemberAddrs returns all member addresses sorted lexicographically.
func (v *View) MemberAddrs() []node.Addr {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Addr, 0, len(v.byAddr))
	for a := range v.byAddr {
		out = append(out, a)
	}
	node.SortAddrs(out)
	return out
}

// ringHash orders members within ring r. FNV-1a over the ring index and the
// address, followed by a 64-bit avalanche finalizer (the murmur3 fmix64
// routine), gives every ring an effectively independent pseudo-random
// permutation that every process computes identically. The finalizer matters:
// without it, orderings of nearby ring indices are correlated and the union
// of the rings is a much weaker expander.
func ringHash(addr node.Addr, ring int) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(ring), byte(ring >> 8), byte(ring >> 16), byte(ring >> 24)})
	h.Write([]byte(addr))
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 64-bit finalizer: a cheap bijective avalanche mix.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ringLess is the ordering of ring r, with the address as a tie-breaker so
// the order is total even under hash collisions.
func ringLess(a, b node.Endpoint, ring int) bool {
	ha, hb := ringHash(a.Addr, ring), ringHash(b.Addr, ring)
	if ha != hb {
		return ha < hb
	}
	return a.Addr < b.Addr
}

// AddMember inserts an endpoint into every ring. It fails if the address or
// the logical identifier is already present.
func (v *View) AddMember(ep node.Endpoint) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.byAddr[ep.Addr]; ok {
		return ErrNodeAlreadyInRing
	}
	if v.seenIDs[ep.ID] {
		return ErrUUIDAlreadyInRing
	}
	v.byAddr[ep.Addr] = ep
	v.seenIDs[ep.ID] = true
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		idx := sort.Search(len(ring), func(i int) bool { return !ringLess(ring[i], ep, r) })
		ring = append(ring, node.Endpoint{})
		copy(ring[idx+1:], ring[idx:])
		ring[idx] = ep
		v.rings[r] = ring
	}
	v.configIsValid = false
	return nil
}

// RemoveMember removes the endpoint with the given address from every ring.
func (v *View) RemoveMember(addr node.Addr) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.byAddr[addr]; !ok {
		return ErrNodeNotInRing
	}
	delete(v.byAddr, addr)
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		for i, ep := range ring {
			if ep.Addr == addr {
				v.rings[r] = append(ring[:i], ring[i+1:]...)
				break
			}
		}
	}
	// Note: the logical ID stays in seenIDs; a process that rejoins must use
	// a new identifier, as required by §3.
	v.configIsValid = false
	return nil
}

// ObserversOf returns the K processes that monitor addr: the predecessor of
// addr in each ring. With fewer than two members there are no observers.
func (v *View) ObserversOf(addr node.Addr) ([]node.Addr, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if _, ok := v.byAddr[addr]; !ok {
		return nil, ErrNodeNotInRing
	}
	return v.neighboursLocked(addr, -1), nil
}

// SubjectsOf returns the K processes that addr monitors: the successor of
// addr in each ring.
func (v *View) SubjectsOf(addr node.Addr) ([]node.Addr, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if _, ok := v.byAddr[addr]; !ok {
		return nil, ErrNodeNotInRing
	}
	return v.neighboursLocked(addr, +1), nil
}

// neighboursLocked returns the ring neighbour of addr in each ring in ring
// order; direction -1 selects predecessors (observers), +1 successors
// (subjects). Must be called with the lock held and addr present.
func (v *View) neighboursLocked(addr node.Addr, direction int) []node.Addr {
	out := make([]node.Addr, 0, v.k)
	if len(v.byAddr) <= 1 {
		return out
	}
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		idx := v.indexInRingLocked(addr, r)
		if idx < 0 {
			continue
		}
		n := len(ring)
		out = append(out, ring[((idx+direction)%n+n)%n].Addr)
	}
	return out
}

// indexInRingLocked finds addr's position in ring r.
func (v *View) indexInRingLocked(addr node.Addr, r int) int {
	ring := v.rings[r]
	ep, ok := v.byAddr[addr]
	if !ok {
		return -1
	}
	idx := sort.Search(len(ring), func(i int) bool { return !ringLess(ring[i], ep, r) })
	for idx < len(ring) && ring[idx].Addr != addr {
		idx++
	}
	if idx >= len(ring) {
		return -1
	}
	return idx
}

// ExpectedObserversOf returns the processes that would observe addr if it
// were a member: the predecessors of addr's would-be position in each ring.
// A joining process contacts these as its temporary observers (§4.1).
func (v *View) ExpectedObserversOf(addr node.Addr) []node.Addr {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]node.Addr, 0, v.k)
	if len(v.byAddr) == 0 {
		return out
	}
	probe := node.Endpoint{Addr: addr}
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		if len(ring) == 0 {
			continue
		}
		idx := sort.Search(len(ring), func(i int) bool { return !ringLess(ring[i], probe, r) })
		n := len(ring)
		out = append(out, ring[((idx-1)%n+n)%n].Addr)
	}
	return out
}

// RingNumbers returns the ring indices in which observer immediately precedes
// subject, i.e. the rings on which an alert from observer about subject is
// valid. For a subject not in the view (a joiner) the would-be position is
// used, matching ExpectedObserversOf.
func (v *View) RingNumbers(observer, subject node.Addr) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var out []int
	if _, ok := v.byAddr[subject]; ok {
		if len(v.byAddr) <= 1 {
			return out
		}
		for r := 0; r < v.k; r++ {
			ring := v.rings[r]
			idx := v.indexInRingLocked(subject, r)
			if idx < 0 {
				continue
			}
			n := len(ring)
			if ring[((idx-1)%n+n)%n].Addr == observer {
				out = append(out, r)
			}
		}
		return out
	}
	// Joiner case.
	probe := node.Endpoint{Addr: subject}
	for r := 0; r < v.k; r++ {
		ring := v.rings[r]
		if len(ring) == 0 {
			continue
		}
		idx := sort.Search(len(ring), func(i int) bool { return !ringLess(ring[i], probe, r) })
		n := len(ring)
		if ring[((idx-1)%n+n)%n].Addr == observer {
			out = append(out, r)
		}
	}
	return out
}

// ConfigurationID returns a 64-bit identifier of this configuration: a hash
// over the sorted (address, identifier) pairs of the membership set. Two
// processes with identical views compute identical identifiers.
func (v *View) ConfigurationID() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.configIsValid {
		return v.cachedConfig
	}
	addrs := make([]node.Addr, 0, len(v.byAddr))
	for a := range v.byAddr {
		addrs = append(addrs, a)
	}
	node.SortAddrs(addrs)
	h := fnv.New64a()
	for _, a := range addrs {
		ep := v.byAddr[a]
		h.Write([]byte(a))
		var idBytes [16]byte
		for i := 0; i < 8; i++ {
			idBytes[i] = byte(ep.ID.High >> (8 * i))
			idBytes[8+i] = byte(ep.ID.Low >> (8 * i))
		}
		h.Write(idBytes[:])
	}
	v.cachedConfig = h.Sum64()
	v.configIsValid = true
	return v.cachedConfig
}

// IsSafeToJoin classifies a join attempt against the current view.
func (v *View) IsSafeToJoin(addr node.Addr, id node.ID) remoting.JoinStatus {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if _, ok := v.byAddr[addr]; ok {
		return remoting.JoinHostAlreadyInRing
	}
	if v.seenIDs[id] {
		return remoting.JoinUUIDAlreadyInRing
	}
	return remoting.JoinSafeToJoin
}

// Clone returns a deep copy of the view (used when handing a snapshot to a
// new configuration or to application callbacks).
func (v *View) Clone() *View {
	v.mu.RLock()
	defer v.mu.RUnlock()
	clone := New(v.k)
	for a, ep := range v.byAddr {
		clone.byAddr[a] = ep
	}
	for id := range v.seenIDs {
		clone.seenIDs[id] = true
	}
	for r := 0; r < v.k; r++ {
		clone.rings[r] = append([]node.Endpoint(nil), v.rings[r]...)
	}
	return clone
}

// Ring returns a copy of ring r, primarily for the expander analysis in
// package graph and for tests.
func (v *View) Ring(r int) ([]node.Endpoint, error) {
	if r < 0 || r >= v.k {
		return nil, fmt.Errorf("view: ring %d out of range [0,%d)", r, v.k)
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]node.Endpoint(nil), v.rings[r]...), nil
}
