package view

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/node"
	"repro/internal/remoting"
)

func endpoints(n int) []node.Endpoint {
	out := make([]node.Endpoint, n)
	for i := range out {
		out[i] = node.Endpoint{
			Addr: node.Addr(fmt.Sprintf("10.0.0.%d:5000", i)),
			ID:   node.ID{High: uint64(i + 1), Low: uint64(i + 1)},
		}
	}
	return out
}

func TestAddRemoveAndSize(t *testing.T) {
	v := New(10)
	eps := endpoints(5)
	for _, ep := range eps {
		if err := v.AddMember(ep); err != nil {
			t.Fatalf("AddMember(%v): %v", ep, err)
		}
	}
	if v.Size() != 5 {
		t.Fatalf("Size = %d, want 5", v.Size())
	}
	if !v.Contains(eps[2].Addr) {
		t.Error("Contains should report true for a member")
	}
	if err := v.RemoveMember(eps[2].Addr); err != nil {
		t.Fatalf("RemoveMember: %v", err)
	}
	if v.Contains(eps[2].Addr) {
		t.Error("removed member still present")
	}
	if v.Size() != 4 {
		t.Fatalf("Size after removal = %d, want 4", v.Size())
	}
}

func TestAddDuplicateAddressFails(t *testing.T) {
	v := New(3)
	ep := endpoints(1)[0]
	if err := v.AddMember(ep); err != nil {
		t.Fatal(err)
	}
	dup := node.Endpoint{Addr: ep.Addr, ID: node.ID{High: 99, Low: 99}}
	if err := v.AddMember(dup); err != ErrNodeAlreadyInRing {
		t.Fatalf("err = %v, want ErrNodeAlreadyInRing", err)
	}
}

func TestAddDuplicateIDFails(t *testing.T) {
	v := New(3)
	ep := endpoints(1)[0]
	if err := v.AddMember(ep); err != nil {
		t.Fatal(err)
	}
	dup := node.Endpoint{Addr: "other:1", ID: ep.ID}
	if err := v.AddMember(dup); err != ErrUUIDAlreadyInRing {
		t.Fatalf("err = %v, want ErrUUIDAlreadyInRing", err)
	}
}

func TestRemoveUnknownFails(t *testing.T) {
	v := New(3)
	if err := v.RemoveMember("ghost:1"); err != ErrNodeNotInRing {
		t.Fatalf("err = %v, want ErrNodeNotInRing", err)
	}
}

func TestRejoinWithSameIDRejected(t *testing.T) {
	// A process that leaves and rejoins must use a new logical ID (§3).
	v := New(3)
	ep := endpoints(1)[0]
	v.AddMember(ep)
	v.RemoveMember(ep.Addr)
	if err := v.AddMember(ep); err != ErrUUIDAlreadyInRing {
		t.Fatalf("rejoining with the same ID should be rejected, got %v", err)
	}
	fresh := node.Endpoint{Addr: ep.Addr, ID: node.ID{High: 123, Low: 456}}
	if err := v.AddMember(fresh); err != nil {
		t.Fatalf("rejoining with a fresh ID should succeed: %v", err)
	}
}

func TestObserversAndSubjectsCounts(t *testing.T) {
	const k, n = 10, 30
	v := NewWithMembers(k, endpoints(n))
	for _, ep := range v.Members() {
		obs, err := v.ObserversOf(ep.Addr)
		if err != nil {
			t.Fatal(err)
		}
		subs, err := v.SubjectsOf(ep.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if len(obs) != k || len(subs) != k {
			t.Fatalf("node %v has %d observers and %d subjects, want %d each", ep.Addr, len(obs), len(subs), k)
		}
	}
}

func TestObserverSubjectSymmetry(t *testing.T) {
	// If o is an observer of s, then s must be a subject of o, with matching
	// multiplicity across rings.
	const k, n = 10, 25
	v := NewWithMembers(k, endpoints(n))
	for _, s := range v.Members() {
		obs, _ := v.ObserversOf(s.Addr)
		counts := make(map[node.Addr]int)
		for _, o := range obs {
			counts[o]++
		}
		for o, c := range counts {
			subs, _ := v.SubjectsOf(o)
			reverse := 0
			for _, x := range subs {
				if x == s.Addr {
					reverse++
				}
			}
			if reverse != c {
				t.Fatalf("asymmetry: %v observes %v %d times but %v is subject %d times", o, s.Addr, c, s.Addr, reverse)
			}
		}
	}
}

func TestObserversOfSingletonViewIsEmpty(t *testing.T) {
	v := NewWithMembers(10, endpoints(1))
	obs, err := v.ObserversOf(endpoints(1)[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Fatalf("a single-member view should have no observers, got %v", obs)
	}
}

func TestObserversOfUnknownNodeFails(t *testing.T) {
	v := NewWithMembers(10, endpoints(3))
	if _, err := v.ObserversOf("ghost:1"); err != ErrNodeNotInRing {
		t.Fatalf("err = %v, want ErrNodeNotInRing", err)
	}
	if _, err := v.SubjectsOf("ghost:1"); err != ErrNodeNotInRing {
		t.Fatalf("err = %v, want ErrNodeNotInRing", err)
	}
}

func TestRingNumbersMatchObservers(t *testing.T) {
	const k, n = 10, 20
	v := NewWithMembers(k, endpoints(n))
	for _, s := range v.Members() {
		obs, _ := v.ObserversOf(s.Addr)
		counts := make(map[node.Addr]int)
		for _, o := range obs {
			counts[o]++
		}
		total := 0
		for o, c := range counts {
			rings := v.RingNumbers(o, s.Addr)
			if len(rings) != c {
				t.Fatalf("RingNumbers(%v,%v) = %v, want %d rings", o, s.Addr, rings, c)
			}
			total += len(rings)
		}
		if total != k {
			t.Fatalf("total ring numbers for %v = %d, want %d", s.Addr, total, k)
		}
	}
}

func TestExpectedObserversOfJoiner(t *testing.T) {
	const k, n = 10, 20
	v := NewWithMembers(k, endpoints(n))
	joiner := node.Addr("10.0.9.99:5000")
	expected := v.ExpectedObserversOf(joiner)
	if len(expected) != k {
		t.Fatalf("ExpectedObserversOf returned %d observers, want %d", len(expected), k)
	}
	// Ring numbers for the joiner must be consistent with the expected
	// observers, and cover all k rings.
	total := 0
	counts := make(map[node.Addr]int)
	for _, o := range expected {
		counts[o]++
	}
	for o, c := range counts {
		rings := v.RingNumbers(o, joiner)
		if len(rings) != c {
			t.Fatalf("RingNumbers(%v, joiner) = %v, want %d", o, rings, c)
		}
		total += len(rings)
	}
	if total != k {
		t.Fatalf("joiner ring coverage = %d, want %d", total, k)
	}
	// Once the joiner is added, its actual observers must equal the expected
	// ones (same multiset).
	if err := v.AddMember(node.Endpoint{Addr: joiner, ID: node.ID{High: 777, Low: 777}}); err != nil {
		t.Fatal(err)
	}
	actual, _ := v.ObserversOf(joiner)
	actualCounts := make(map[node.Addr]int)
	for _, o := range actual {
		actualCounts[o]++
	}
	if len(actualCounts) != len(counts) {
		t.Fatalf("expected observers %v != actual %v", counts, actualCounts)
	}
	for o, c := range counts {
		if actualCounts[o] != c {
			t.Fatalf("expected observers %v != actual %v", counts, actualCounts)
		}
	}
}

func TestDeterministicAcrossInsertionOrders(t *testing.T) {
	// The K-ring topology must be a pure function of the membership set:
	// different insertion orders must produce identical rings, observers,
	// and configuration IDs (this is what lets every process compute the
	// topology locally).
	const k, n = 7, 40
	eps := endpoints(n)
	v1 := NewWithMembers(k, eps)

	shuffled := append([]node.Endpoint(nil), eps...)
	r := rand.New(rand.NewSource(3))
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	v2 := NewWithMembers(k, shuffled)

	if v1.ConfigurationID() != v2.ConfigurationID() {
		t.Fatal("configuration IDs differ across insertion orders")
	}
	for _, ep := range eps {
		o1, _ := v1.ObserversOf(ep.Addr)
		o2, _ := v2.ObserversOf(ep.Addr)
		if fmt.Sprint(o1) != fmt.Sprint(o2) {
			t.Fatalf("observers of %v differ across insertion orders: %v vs %v", ep.Addr, o1, o2)
		}
	}
}

func TestConfigurationIDChangesOnMembershipChange(t *testing.T) {
	v := NewWithMembers(5, endpoints(10))
	id1 := v.ConfigurationID()
	v.RemoveMember(endpoints(10)[0].Addr)
	id2 := v.ConfigurationID()
	if id1 == id2 {
		t.Fatal("configuration ID should change when membership changes")
	}
	v.AddMember(node.Endpoint{Addr: "new:1", ID: node.ID{High: 999, Low: 1}})
	if v.ConfigurationID() == id2 {
		t.Fatal("configuration ID should change when a member joins")
	}
}

func TestConfigurationIDStableAcrossCalls(t *testing.T) {
	v := NewWithMembers(5, endpoints(10))
	if v.ConfigurationID() != v.ConfigurationID() {
		t.Fatal("configuration ID should be stable without membership changes")
	}
}

func TestIsSafeToJoin(t *testing.T) {
	v := NewWithMembers(5, endpoints(3))
	eps := endpoints(3)
	if got := v.IsSafeToJoin(eps[0].Addr, node.ID{High: 55, Low: 55}); got != remoting.JoinHostAlreadyInRing {
		t.Errorf("existing address: %v, want HOSTNAME_ALREADY_IN_RING", got)
	}
	if got := v.IsSafeToJoin("fresh:1", eps[0].ID); got != remoting.JoinUUIDAlreadyInRing {
		t.Errorf("existing id: %v, want UUID_ALREADY_IN_RING", got)
	}
	if got := v.IsSafeToJoin("fresh:1", node.ID{High: 55, Low: 55}); got != remoting.JoinSafeToJoin {
		t.Errorf("fresh join: %v, want SAFE_TO_JOIN", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := NewWithMembers(5, endpoints(5))
	c := v.Clone()
	if c.ConfigurationID() != v.ConfigurationID() {
		t.Fatal("clone should have the same configuration ID")
	}
	v.RemoveMember(endpoints(5)[0].Addr)
	if c.Size() != 5 {
		t.Fatal("mutating the original must not affect the clone")
	}
}

func TestRingAccessor(t *testing.T) {
	v := NewWithMembers(3, endpoints(4))
	ring, err := v.Ring(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ring) != 4 {
		t.Fatalf("ring 0 has %d members, want 4", len(ring))
	}
	if _, err := v.Ring(3); err == nil {
		t.Fatal("out-of-range ring index should error")
	}
	if _, err := v.Ring(-1); err == nil {
		t.Fatal("negative ring index should error")
	}
}

func TestRingsArePermutationsOfMembership(t *testing.T) {
	const k, n = 6, 15
	v := NewWithMembers(k, endpoints(n))
	for r := 0; r < k; r++ {
		ring, err := v.Ring(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ring) != n {
			t.Fatalf("ring %d has %d entries, want %d", r, len(ring), n)
		}
		seen := make(map[node.Addr]bool)
		for _, ep := range ring {
			if seen[ep.Addr] {
				t.Fatalf("ring %d contains %v twice", r, ep.Addr)
			}
			seen[ep.Addr] = true
		}
	}
}

func TestRingsDifferFromEachOther(t *testing.T) {
	// With 40 members, the probability that two independent pseudo-random
	// permutations coincide is negligible; identical rings would defeat the
	// purpose of multiple observers per subject.
	const k, n = 4, 40
	v := NewWithMembers(k, endpoints(n))
	r0, _ := v.Ring(0)
	for r := 1; r < k; r++ {
		ring, _ := v.Ring(r)
		same := true
		for i := range ring {
			if ring[i].Addr != r0[i].Addr {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("ring %d is identical to ring 0", r)
		}
	}
}

func TestViewInvariantsUnderRandomOperations(t *testing.T) {
	// Property: after any sequence of adds and removes, every member has
	// exactly K observers and K subjects (when size > 1), and the
	// configuration ID only depends on the final membership set.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const k = 5
		v := New(k)
		live := make(map[node.Addr]node.Endpoint)
		next := 0
		for op := 0; op < 60; op++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				ep := node.Endpoint{
					Addr: node.Addr(fmt.Sprintf("n%d:1", next)),
					ID:   node.ID{High: uint64(next + 1), Low: r.Uint64()},
				}
				next++
				if v.AddMember(ep) == nil {
					live[ep.Addr] = ep
				}
			} else {
				// Remove a random live member.
				var victim node.Addr
				n := r.Intn(len(live))
				for a := range live {
					if n == 0 {
						victim = a
						break
					}
					n--
				}
				if v.RemoveMember(victim) == nil {
					delete(live, victim)
				}
			}
		}
		if v.Size() != len(live) {
			return false
		}
		for a := range live {
			obs, err := v.ObserversOf(a)
			if err != nil {
				return false
			}
			subs, err := v.SubjectsOf(a)
			if err != nil {
				return false
			}
			if len(live) > 1 && (len(obs) != k || len(subs) != k) {
				return false
			}
		}
		// Rebuild a fresh view with the same final membership; config IDs match.
		var eps []node.Endpoint
		for _, ep := range live {
			eps = append(eps, ep)
		}
		rebuilt := NewWithMembers(k, eps)
		return rebuilt.ConfigurationID() == v.ConfigurationID()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueSubjectsOf(t *testing.T) {
	// UniqueSubjectsOf must equal SubjectsOf with duplicates and self removed,
	// across a range of sizes (small views force both duplicates and self).
	for _, n := range []int{2, 3, 5, 12, 30} {
		v := NewWithMembers(10, endpoints(n))
		for _, ep := range v.Members() {
			subs, err := v.SubjectsOf(ep.Addr)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]node.Addr, 0, len(subs))
			seen := make(map[node.Addr]bool)
			for _, s := range subs {
				if s != ep.Addr && !seen[s] {
					seen[s] = true
					want = append(want, s)
				}
			}
			got, err := v.UniqueSubjectsOf(ep.Addr)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("n=%d UniqueSubjectsOf(%v) = %v, want %v", n, ep.Addr, got, want)
			}
		}
	}
	if _, err := NewWithMembers(3, endpoints(3)).UniqueSubjectsOf("ghost:1"); err != ErrNodeNotInRing {
		t.Fatalf("err = %v, want ErrNodeNotInRing", err)
	}
}

func TestNeighbourLookupAllocs(t *testing.T) {
	// The position index makes neighbour lookups O(K) with a single result
	// slice allocation — no hashing, no searching.
	v := NewWithMembers(10, endpoints(100))
	addr := endpoints(100)[37].Addr
	for name, fn := range map[string]func(){
		"ObserversOf": func() {
			if _, err := v.ObserversOf(addr); err != nil {
				t.Fatal(err)
			}
		},
		"SubjectsOf": func() {
			if _, err := v.SubjectsOf(addr); err != nil {
				t.Fatal(err)
			}
		},
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs > 1 {
			t.Errorf("%s allocates %.0f times per lookup, want <= 1", name, allocs)
		}
	}
}

func TestConfigurationIDCachedAllocs(t *testing.T) {
	// A cache hit takes only the read lock and must not allocate.
	v := NewWithMembers(10, endpoints(50))
	v.ConfigurationID()
	if allocs := testing.AllocsPerRun(100, func() { v.ConfigurationID() }); allocs > 0 {
		t.Errorf("cached ConfigurationID allocates %.0f times, want 0", allocs)
	}
}

func TestBulkConstructionAllocs(t *testing.T) {
	// NewWithMembers block-allocates member records and rings: constructing a
	// 100-member 10-ring view must stay well under one allocation per member
	// (the map buckets dominate what remains).
	eps := endpoints(100)
	allocs := testing.AllocsPerRun(20, func() {
		if NewWithMembers(10, eps).Size() != 100 {
			t.Fatal("bad view")
		}
	})
	if allocs > 60 {
		t.Errorf("NewWithMembers(10, 100 members) allocates %.0f times, want <= 60", allocs)
	}
}

func TestConcurrentReadersWithCacheHit(t *testing.T) {
	// Regression test for ConfigurationID serializing readers: concurrent
	// cached reads plus topology lookups must be race-free (run under -race).
	v := NewWithMembers(10, endpoints(40))
	v.ConfigurationID()
	addrs := v.MemberAddrs()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				_ = v.ConfigurationID()
				_, _ = v.ObserversOf(addrs[(g+i)%len(addrs)])
			}
		}(g)
	}
	writer := make(chan struct{})
	go func() {
		defer close(writer)
		for i := 0; i < 50; i++ {
			ep := node.Endpoint{Addr: node.Addr(fmt.Sprintf("w%d:1", i)), ID: node.ID{High: 1 << 32, Low: uint64(i + 1)}}
			if err := v.AddMember(ep); err != nil {
				t.Error(err)
				return
			}
			_ = v.ConfigurationID()
			if err := v.RemoveMember(ep.Addr); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		<-done
	}
	<-writer
}
