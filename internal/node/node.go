// Package node defines process identities used throughout the membership
// service: network endpoints (host:port addresses) and 128-bit logical node
// identifiers. A process that leaves and rejoins the cluster does so with a
// fresh logical identifier, exactly as described in §3 of the Rapid paper.
package node

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Addr is a process' listen address in "host:port" form. It identifies where
// a process can be reached; it is not a logical identity.
type Addr string

// String returns the address as a plain string.
func (a Addr) String() string { return string(a) }

// ID is a 128-bit logical identifier assigned to a process each time it joins
// a cluster. IDs are compared lexicographically on (High, Low).
type ID struct {
	High uint64
	Low  uint64
}

// String renders the ID in a compact UUID-like hexadecimal form.
func (id ID) String() string {
	return fmt.Sprintf("%016x-%016x", id.High, id.Low)
}

// IsZero reports whether the ID is the zero value (no identity assigned).
func (id ID) IsZero() bool { return id.High == 0 && id.Low == 0 }

// Compare returns -1, 0 or +1 ordering IDs lexicographically on (High, Low).
func (id ID) Compare(other ID) int {
	switch {
	case id.High < other.High:
		return -1
	case id.High > other.High:
		return 1
	case id.Low < other.Low:
		return -1
	case id.Low > other.Low:
		return 1
	default:
		return 0
	}
}

// idRand is the process-wide source for NewID. Guarded by idMu so that IDs
// can be generated concurrently from many simulated nodes.
var (
	idMu   sync.Mutex
	idRand = rand.New(rand.NewSource(0x5eed_1e57_c0ffee))
)

// SeedIDGenerator reseeds the process-wide ID generator. Tests and
// deterministic simulations use this to obtain reproducible identities.
func SeedIDGenerator(seed int64) {
	idMu.Lock()
	defer idMu.Unlock()
	idRand = rand.New(rand.NewSource(seed))
}

// SeedIDGeneratorFromEntropy reseeds the process-wide ID generator from the
// operating system's entropy source. Real deployments (cmd/rapid-node) must
// call this before joining: the library default is a fixed seed so that
// simulations are reproducible, which means two separate OS processes would
// otherwise draw the same identifier sequence and collide at the pre-join
// UUID check forever.
func SeedIDGeneratorFromEntropy() error {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Errorf("node: reading entropy for ID generator: %w", err)
	}
	SeedIDGenerator(int64(binary.BigEndian.Uint64(b[:])))
	return nil
}

// NewID returns a fresh pseudo-random logical identifier.
func NewID() ID {
	idMu.Lock()
	defer idMu.Unlock()
	return ID{High: idRand.Uint64(), Low: idRand.Uint64()}
}

// NewIDFromRand returns an ID drawn from the supplied source. It is used by
// simulations that manage their own deterministic randomness.
func NewIDFromRand(r *rand.Rand) ID {
	return ID{High: r.Uint64(), Low: r.Uint64()}
}

// Endpoint is a member of the cluster: an address plus the logical ID under
// which it joined and optional application-supplied metadata (for example
// {"role": "backend"}).
type Endpoint struct {
	Addr     Addr
	ID       ID
	Metadata map[string]string
}

// NewEndpoint builds an endpoint with a freshly generated ID.
func NewEndpoint(addr Addr) Endpoint {
	return Endpoint{Addr: addr, ID: NewID()}
}

// WithMetadata returns a copy of the endpoint carrying the given metadata.
func (e Endpoint) WithMetadata(md map[string]string) Endpoint {
	copied := make(map[string]string, len(md))
	for k, v := range md {
		copied[k] = v
	}
	e.Metadata = copied
	return e
}

// String renders the endpoint address and a short ID prefix.
func (e Endpoint) String() string {
	return fmt.Sprintf("%s/%s", e.Addr, e.ID)
}

// Equal reports whether two endpoints denote the same process instance
// (same address and same logical ID). Metadata is not part of identity.
func (e Endpoint) Equal(other Endpoint) bool {
	return e.Addr == other.Addr && e.ID == other.ID
}

// EndpointAddrs returns the addresses of the given endpoints, in order —
// the conversion every membership consumer needs when feeding a view-change
// payload into an address-keyed application.
func EndpointAddrs(endpoints []Endpoint) []Addr {
	addrs := make([]Addr, len(endpoints))
	for i, ep := range endpoints {
		addrs[i] = ep.Addr
	}
	return addrs
}

// SortAddrs sorts a slice of addresses lexicographically in place and
// returns it, for deterministic iteration in protocols and tests.
func SortAddrs(addrs []Addr) []Addr {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// AddrList renders a list of addresses as a comma-joined string, useful for
// logging proposals and view changes.
func AddrList(addrs []Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = string(a)
	}
	return strings.Join(parts, ",")
}
