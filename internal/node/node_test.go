package node

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDCompare(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{ID{1, 0}, ID{2, 0}, -1},
		{ID{2, 0}, ID{1, 0}, 1},
		{ID{1, 1}, ID{1, 2}, -1},
		{ID{1, 2}, ID{1, 1}, 1},
		{ID{3, 3}, ID{3, 3}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIDCompareProperties(t *testing.T) {
	antisym := func(a, b ID) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("antisymmetry violated: %v", err)
	}
	reflexive := func(a ID) bool { return a.Compare(a) == 0 }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("reflexivity violated: %v", err)
	}
}

func TestNewIDUniqueness(t *testing.T) {
	SeedIDGenerator(42)
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID generated: %v", id)
		}
		seen[id] = true
	}
}

func TestSeedIDGeneratorDeterminism(t *testing.T) {
	SeedIDGenerator(7)
	a1, a2 := NewID(), NewID()
	SeedIDGenerator(7)
	b1, b2 := NewID(), NewID()
	if a1 != b1 || a2 != b2 {
		t.Errorf("reseeding did not reproduce the same IDs: %v,%v vs %v,%v", a1, a2, b1, b2)
	}
}

func TestIDIsZero(t *testing.T) {
	if !(ID{}).IsZero() {
		t.Error("zero ID should report IsZero")
	}
	if (ID{1, 0}).IsZero() {
		t.Error("non-zero ID should not report IsZero")
	}
}

func TestEndpointEqual(t *testing.T) {
	id := ID{5, 6}
	a := Endpoint{Addr: "10.0.0.1:80", ID: id}
	b := Endpoint{Addr: "10.0.0.1:80", ID: id, Metadata: map[string]string{"role": "x"}}
	if !a.Equal(b) {
		t.Error("endpoints differing only in metadata should be equal")
	}
	c := Endpoint{Addr: "10.0.0.1:80", ID: ID{5, 7}}
	if a.Equal(c) {
		t.Error("endpoints with different IDs should not be equal")
	}
	d := Endpoint{Addr: "10.0.0.2:80", ID: id}
	if a.Equal(d) {
		t.Error("endpoints with different addresses should not be equal")
	}
}

func TestWithMetadataCopies(t *testing.T) {
	md := map[string]string{"role": "backend"}
	e := NewEndpoint("a:1").WithMetadata(md)
	md["role"] = "frontend"
	if e.Metadata["role"] != "backend" {
		t.Error("WithMetadata must copy the map, not alias it")
	}
}

func TestNewIDFromRandDeterminism(t *testing.T) {
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		if NewIDFromRand(r1) != NewIDFromRand(r2) {
			t.Fatal("NewIDFromRand should be deterministic for equal sources")
		}
	}
}

func TestSortAddrs(t *testing.T) {
	addrs := []Addr{"c:1", "a:1", "b:1"}
	SortAddrs(addrs)
	if addrs[0] != "a:1" || addrs[1] != "b:1" || addrs[2] != "c:1" {
		t.Errorf("SortAddrs produced %v", addrs)
	}
}

func TestAddrList(t *testing.T) {
	if got := AddrList([]Addr{"a:1", "b:2"}); got != "a:1,b:2" {
		t.Errorf("AddrList = %q", got)
	}
	if got := AddrList(nil); got != "" {
		t.Errorf("AddrList(nil) = %q", got)
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{Addr: "h:1", ID: ID{0xa, 0xb}}
	want := "h:1/000000000000000a-000000000000000b"
	if e.String() != want {
		t.Errorf("String() = %q, want %q", e.String(), want)
	}
}
