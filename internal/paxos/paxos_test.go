package paxos

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/node"
	"repro/internal/remoting"
)

// router wires Paxos instances together with synchronous in-memory delivery.
type router struct {
	mu      sync.Mutex
	nodes   map[node.Addr]*Paxos
	blocked map[node.Addr]bool
}

func newRouter() *router {
	return &router{nodes: make(map[node.Addr]*Paxos), blocked: make(map[node.Addr]bool)}
}

func (r *router) add(addr node.Addr, p *Paxos) { r.nodes[addr] = p }

func (r *router) block(addr node.Addr) {
	r.mu.Lock()
	r.blocked[addr] = true
	r.mu.Unlock()
}

func (r *router) dispatch(to node.Addr, req *remoting.Request) {
	r.mu.Lock()
	p, ok := r.nodes[to]
	blocked := r.blocked[to]
	r.mu.Unlock()
	if !ok || blocked {
		return
	}
	switch {
	case req.P1a != nil:
		p.HandlePhase1a(req.P1a)
	case req.P1b != nil:
		p.HandlePhase1b(req.P1b)
	case req.P2a != nil:
		p.HandlePhase2a(req.P2a)
	case req.P2b != nil:
		p.HandlePhase2b(req.P2b)
	}
}

// nodeClient implements Sender and Broadcaster for one source node.
type nodeClient struct {
	r       *router
	members []node.Addr
}

func (c *nodeClient) SendBestEffort(to node.Addr, req *remoting.Request) { c.r.dispatch(to, req) }
func (c *nodeClient) Broadcast(req *remoting.Request) {
	for _, m := range c.members {
		c.r.dispatch(m, req)
	}
}

// cluster builds n wired Paxos instances and records decisions.
type cluster struct {
	router    *router
	addrs     []node.Addr
	instances map[node.Addr]*Paxos
	mu        sync.Mutex
	decisions map[node.Addr]Value
}

func newCluster(n int, configID uint64) *cluster {
	c := &cluster{
		router:    newRouter(),
		instances: make(map[node.Addr]*Paxos),
		decisions: make(map[node.Addr]Value),
	}
	for i := 0; i < n; i++ {
		c.addrs = append(c.addrs, node.Addr(fmt.Sprintf("n%02d:1", i)))
	}
	for i, addr := range c.addrs {
		addr := addr
		client := &nodeClient{r: c.router, members: c.addrs}
		p := New(Config{
			MyAddr:          addr,
			MyIndex:         i,
			MembershipSize:  n,
			ConfigurationID: configID,
			Client:          client,
			Broadcaster:     client,
			OnDecide: func(v Value) {
				c.mu.Lock()
				c.decisions[addr] = v
				c.mu.Unlock()
			},
		})
		c.router.add(addr, p)
		c.instances[addr] = p
	}
	return c
}

func (c *cluster) decisionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.decisions)
}

func (c *cluster) uniqueDecisions() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool)
	for _, v := range c.decisions {
		out[Key(v)] = true
	}
	return out
}

func valueOf(addrs ...string) Value {
	out := make(Value, len(addrs))
	for i, a := range addrs {
		out[i] = node.Endpoint{Addr: node.Addr(a), ID: node.ID{High: uint64(i + 1), Low: 7}}
	}
	return out
}

func TestKeyIsOrderInsensitive(t *testing.T) {
	v1 := valueOf("a:1", "b:1")
	v2 := Value{v1[1], v1[0]}
	if Key(v1) != Key(v2) {
		t.Error("Key must not depend on slice order")
	}
	if Key(v1) == Key(valueOf("a:1")) {
		t.Error("different proposals must have different keys")
	}
	if Key(nil) != "" {
		t.Errorf("Key(nil) = %q, want empty", Key(nil))
	}
}

func TestClassicalRoundAllDecideSameValue(t *testing.T) {
	c := newCluster(5, 1)
	proposal := valueOf("failed:1")
	for _, p := range c.instances {
		p.SetProposal(proposal)
	}
	c.instances[c.addrs[0]].StartPhase1a(2)
	if c.decisionCount() != 5 {
		t.Fatalf("decisions = %d, want 5", c.decisionCount())
	}
	uniq := c.uniqueDecisions()
	if len(uniq) != 1 || !uniq[Key(proposal)] {
		t.Fatalf("unexpected decisions: %v", uniq)
	}
}

func TestRecoveryPreservesPossiblyChosenFastRoundValue(t *testing.T) {
	// 4 of 5 nodes voted for V1 in the fast round (enough that V1 may have
	// been chosen at some learner); the recovery coordinator has its own
	// different proposal V2 but must decide V1.
	c := newCluster(5, 1)
	v1 := valueOf("crashed-a:1", "crashed-b:1")
	v2 := valueOf("something-else:1")
	for i, addr := range c.addrs {
		if i < 4 {
			c.instances[addr].RegisterFastRoundVote(v1)
		}
	}
	coordinator := c.instances[c.addrs[4]]
	coordinator.SetProposal(v2)
	coordinator.StartPhase1a(2)
	if c.decisionCount() != 5 {
		t.Fatalf("decisions = %d, want 5", c.decisionCount())
	}
	uniq := c.uniqueDecisions()
	if len(uniq) != 1 || !uniq[Key(v1)] {
		t.Fatalf("recovery chose %v, must preserve the fast-round value %q", uniq, Key(v1))
	}
}

func TestConcurrentCoordinatorsAgree(t *testing.T) {
	c := newCluster(7, 1)
	vA := valueOf("a:1")
	vB := valueOf("b:1")
	for i, addr := range c.addrs {
		if i%2 == 0 {
			c.instances[addr].SetProposal(vA)
		} else {
			c.instances[addr].SetProposal(vB)
		}
	}
	// Two coordinators race; ranks differ by node index so one wins, and
	// agreement must hold regardless.
	c.instances[c.addrs[0]].StartPhase1a(2)
	c.instances[c.addrs[1]].StartPhase1a(2)
	if c.decisionCount() == 0 {
		t.Fatal("no decisions reached")
	}
	if uniq := c.uniqueDecisions(); len(uniq) != 1 {
		t.Fatalf("conflicting decisions: %v", uniq)
	}
}

func TestDecisionRequiresMajority(t *testing.T) {
	// With 3 of 5 acceptors unreachable, no decision can be reached.
	c := newCluster(5, 1)
	for _, p := range c.instances {
		p.SetProposal(valueOf("x:1"))
	}
	c.router.block(c.addrs[2])
	c.router.block(c.addrs[3])
	c.router.block(c.addrs[4])
	c.instances[c.addrs[0]].StartPhase1a(2)
	if c.decisionCount() != 0 {
		t.Fatalf("decision reached without a majority: %d", c.decisionCount())
	}
}

func TestStaleConfigurationIgnored(t *testing.T) {
	c := newCluster(3, 1)
	p := c.instances[c.addrs[0]]
	p.HandlePhase2b(&remoting.Phase2b{Sender: "x:1", ConfigurationID: 999, Rank: remoting.Rank{Round: 2, NodeIndex: 2}, Value: valueOf("v:1")})
	p.HandlePhase2b(&remoting.Phase2b{Sender: "y:1", ConfigurationID: 999, Rank: remoting.Rank{Round: 2, NodeIndex: 2}, Value: valueOf("v:1")})
	if p.Decided() {
		t.Fatal("messages from another configuration must be ignored")
	}
}

func TestDuplicatePhase2bFromSameSenderNotCounted(t *testing.T) {
	c := newCluster(5, 1)
	p := c.instances[c.addrs[0]]
	rank := remoting.Rank{Round: 2, NodeIndex: 2}
	v := valueOf("v:1")
	for i := 0; i < 10; i++ {
		p.HandlePhase2b(&remoting.Phase2b{Sender: "same:1", ConfigurationID: 1, Rank: rank, Value: v})
	}
	if p.Decided() {
		t.Fatal("repeated phase 2b from one sender must not form a majority")
	}
}

func TestPhase1aLowerRankRejected(t *testing.T) {
	c := newCluster(3, 1)
	p := c.instances[c.addrs[0]]
	p.HandlePhase1a(&remoting.Phase1a{Sender: c.addrs[1], ConfigurationID: 1, Rank: remoting.Rank{Round: 5, NodeIndex: 3}})
	rnd1, _ := p.AcceptedValue()
	_ = rnd1
	// A lower-ranked prepare must not regress the acceptor's promise; we
	// verify by checking a subsequent phase2a at the low rank is rejected.
	p.HandlePhase2a(&remoting.Phase2a{Sender: c.addrs[2], ConfigurationID: 1, Rank: remoting.Rank{Round: 2, NodeIndex: 2}, Value: valueOf("low:1")})
	_, vval := p.AcceptedValue()
	if len(vval) != 0 {
		t.Fatalf("acceptor accepted a value at a rank below its promise: %v", vval)
	}
}

func TestAgreementUnderRandomFastRoundVotes(t *testing.T) {
	// Property: regardless of which subset of nodes cast fast-round votes for
	// which of two values and which node coordinates recovery, all decisions
	// are identical (consensus agreement).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		c := newCluster(n, 1)
		vA, vB := valueOf("vA:1"), valueOf("vB:1")
		for _, addr := range c.addrs {
			switch r.Intn(3) {
			case 0:
				c.instances[addr].RegisterFastRoundVote(vA)
			case 1:
				c.instances[addr].RegisterFastRoundVote(vB)
			default:
				c.instances[addr].SetProposal(vA)
			}
		}
		coordinator := c.addrs[r.Intn(n)]
		c.instances[coordinator].StartPhase1a(2)
		// Possibly a second coordinator.
		if r.Intn(2) == 0 {
			c.instances[c.addrs[r.Intn(n)]].StartPhase1a(3)
		}
		uniq := c.uniqueDecisions()
		return len(uniq) <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
