// Package paxos implements the classical single-decree Paxos protocol used as
// Rapid's recovery path (§4.3). Every process acts as proposer, acceptor and
// learner for a single consensus instance per configuration; the value being
// agreed on is a membership-change proposal (a sorted list of endpoints).
//
// The recovery path interoperates with the Fast Paxos fast path: fast-round
// votes are recorded as acceptances at rank (1,1), and the coordinator's
// value-selection rule follows Fast Paxos — among the highest-ranked values
// reported by a quorum, a value that could have been chosen in the fast round
// (one appearing more than N/4 times) must be preferred.
package paxos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/node"
	"repro/internal/remoting"
)

// Sender delivers a message directly to one process, best-effort.
type Sender interface {
	SendBestEffort(to node.Addr, req *remoting.Request)
}

// Broadcaster delivers a message to every member of the configuration.
type Broadcaster interface {
	Broadcast(req *remoting.Request)
}

// Value is a membership-change proposal: endpoints to add or remove.
type Value = []node.Endpoint

// Key returns a canonical string identity for a proposal so identical
// proposals compare equal regardless of slice ordering.
func Key(v Value) string {
	parts := make([]string, len(v))
	for i, ep := range v {
		parts[i] = fmt.Sprintf("%s|%s", ep.Addr, ep.ID)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// fastRoundRank is the rank that fast-round (Fast Paxos) votes occupy.
var fastRoundRank = remoting.Rank{Round: 1, NodeIndex: 1}

// Config carries the static parameters of one Paxos instance.
type Config struct {
	// MyAddr is this process' address.
	MyAddr node.Addr
	// MyIndex is this process' index in the sorted membership, used to build
	// unique ranks.
	MyIndex int
	// MembershipSize is N, the number of processes in the configuration.
	MembershipSize int
	// ConfigurationID stamps all messages.
	ConfigurationID uint64
	// Client sends direct responses (phase 1b back to the coordinator).
	Client Sender
	// Broadcaster sends phase 1a/2a/2b messages to the whole membership.
	Broadcaster Broadcaster
	// OnDecide is invoked exactly once with the decided value.
	OnDecide func(Value)
}

// Paxos is one single-decree instance. All methods are safe for concurrent use.
type Paxos struct {
	cfg Config

	mu sync.Mutex
	// Proposer state.
	crnd            remoting.Rank
	cval            Value
	myProposal      Value
	phase1bMessages []remoting.Phase1b
	phase2aSent     bool
	// Acceptor state.
	rnd  remoting.Rank
	vrnd remoting.Rank
	vval Value
	// Learner state.
	accepted map[remoting.Rank]map[node.Addr]bool
	values   map[remoting.Rank]Value
	decided  bool
}

// New creates a Paxos instance.
func New(cfg Config) *Paxos {
	return &Paxos{
		cfg:      cfg,
		accepted: make(map[remoting.Rank]map[node.Addr]bool),
		values:   make(map[remoting.Rank]Value),
	}
}

// majority returns the size of a majority quorum for N processes.
func majority(n int) int { return n/2 + 1 }

// Decided reports whether this instance has reached a decision.
func (p *Paxos) Decided() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.decided
}

// SetProposal records the value this process will propose if it becomes the
// coordinator of a recovery round and no prior value must be preserved.
func (p *Paxos) SetProposal(v Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.myProposal = v
}

// RegisterFastRoundVote records this process' own fast-round vote so that a
// later recovery round observes it through phase 1b, preserving Fast Paxos
// safety. It has no effect if the acceptor already promised a higher rank.
func (p *Paxos) RegisterFastRoundVote(v Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rnd.Less(fastRoundRank) || p.rnd.Equal(remoting.Rank{}) {
		p.rnd = fastRoundRank
	}
	if !fastRoundRank.Less(p.vrnd) && p.vval == nil {
		p.vrnd = fastRoundRank
		p.vval = v
	}
	if p.myProposal == nil {
		p.myProposal = v
	}
}

// StartPhase1a begins a recovery round with the given round number. The rank
// is (round, myIndex+2) so that concurrent coordinators use distinct ranks
// and all recovery ranks exceed the fast round's rank.
func (p *Paxos) StartPhase1a(round uint64) {
	p.mu.Lock()
	if p.decided {
		p.mu.Unlock()
		return
	}
	rank := remoting.Rank{Round: round, NodeIndex: uint64(p.cfg.MyIndex) + 2}
	if !p.crnd.Less(rank) {
		p.mu.Unlock()
		return
	}
	p.crnd = rank
	p.phase1bMessages = nil
	p.phase2aSent = false
	req := &remoting.Request{P1a: &remoting.Phase1a{
		Sender:          p.cfg.MyAddr,
		ConfigurationID: p.cfg.ConfigurationID,
		Rank:            p.crnd,
	}}
	p.mu.Unlock()
	p.cfg.Broadcaster.Broadcast(req)
}

// HandlePhase1a processes a prepare request from a coordinator.
func (p *Paxos) HandlePhase1a(msg *remoting.Phase1a) {
	if msg.ConfigurationID != p.cfg.ConfigurationID {
		return
	}
	p.mu.Lock()
	if p.rnd.Less(msg.Rank) {
		p.rnd = msg.Rank
	} else {
		p.mu.Unlock()
		return
	}
	resp := &remoting.Request{P1b: &remoting.Phase1b{
		Sender:          p.cfg.MyAddr,
		ConfigurationID: p.cfg.ConfigurationID,
		Rnd:             p.rnd,
		VRnd:            p.vrnd,
		VVal:            append(Value(nil), p.vval...),
	}}
	coordinator := msg.Sender
	p.mu.Unlock()
	p.cfg.Client.SendBestEffort(coordinator, resp)
}

// HandlePhase1b processes a promise at the coordinator. Once a majority of
// promises for the current rank arrive, the coordinator selects a value using
// the Fast Paxos coordinator rule and broadcasts phase 2a.
func (p *Paxos) HandlePhase1b(msg *remoting.Phase1b) {
	if msg.ConfigurationID != p.cfg.ConfigurationID {
		return
	}
	p.mu.Lock()
	if p.decided || !msg.Rnd.Equal(p.crnd) || p.phase2aSent {
		p.mu.Unlock()
		return
	}
	for _, existing := range p.phase1bMessages {
		if existing.Sender == msg.Sender {
			p.mu.Unlock()
			return
		}
	}
	p.phase1bMessages = append(p.phase1bMessages, *msg)
	if len(p.phase1bMessages) < majority(p.cfg.MembershipSize) {
		p.mu.Unlock()
		return
	}
	value := p.selectValueLocked()
	if len(value) == 0 {
		// Nothing to propose yet: wait until a proposal exists.
		p.mu.Unlock()
		return
	}
	p.cval = value
	p.phase2aSent = true
	req := &remoting.Request{P2a: &remoting.Phase2a{
		Sender:          p.cfg.MyAddr,
		ConfigurationID: p.cfg.ConfigurationID,
		Rank:            p.crnd,
		Value:           value,
	}}
	p.mu.Unlock()
	p.cfg.Broadcaster.Broadcast(req)
}

// selectValueLocked implements the coordinator's value-selection rule
// (Fast Paxos, Figure 2 of Lamport's paper, adapted): consider the phase 1b
// messages with the highest vrnd; if they contain a value that appears more
// than N/4 times it is the only possibly-chosen value and must be used;
// otherwise any value may be proposed (we prefer the most frequent reported
// value, then our own proposal).
func (p *Paxos) selectValueLocked() Value {
	var maxVrnd remoting.Rank
	for _, m := range p.phase1bMessages {
		if maxVrnd.Less(m.VRnd) {
			maxVrnd = m.VRnd
		}
	}
	counts := make(map[string]int)
	byKey := make(map[string]Value)
	for _, m := range p.phase1bMessages {
		if m.VRnd.Equal(maxVrnd) && len(m.VVal) > 0 {
			k := Key(m.VVal)
			counts[k]++
			byKey[k] = m.VVal
		}
	}
	// A value that appears more than N/4 times among the highest-ranked
	// votes may have been chosen in the fast round; it must be preserved.
	intersection := p.cfg.MembershipSize / 4
	bestKey, bestCount := "", 0
	for k, c := range counts {
		if c > bestCount || (c == bestCount && k < bestKey) {
			bestKey, bestCount = k, c
		}
	}
	if bestCount > intersection && bestKey != "" {
		return byKey[bestKey]
	}
	if bestKey != "" {
		return byKey[bestKey]
	}
	return p.myProposal
}

// HandlePhase2a processes an accept request from a coordinator.
func (p *Paxos) HandlePhase2a(msg *remoting.Phase2a) {
	if msg.ConfigurationID != p.cfg.ConfigurationID {
		return
	}
	p.mu.Lock()
	if msg.Rank.Less(p.rnd) || p.vrnd.Equal(msg.Rank) {
		p.mu.Unlock()
		return
	}
	p.rnd = msg.Rank
	p.vrnd = msg.Rank
	p.vval = append(Value(nil), msg.Value...)
	req := &remoting.Request{P2b: &remoting.Phase2b{
		Sender:          p.cfg.MyAddr,
		ConfigurationID: p.cfg.ConfigurationID,
		Rank:            msg.Rank,
		Value:           msg.Value,
	}}
	p.mu.Unlock()
	p.cfg.Broadcaster.Broadcast(req)
}

// HandlePhase2b processes an acceptance at the learner. A value accepted at
// the same rank by a majority is decided.
func (p *Paxos) HandlePhase2b(msg *remoting.Phase2b) {
	if msg.ConfigurationID != p.cfg.ConfigurationID {
		return
	}
	p.mu.Lock()
	if p.decided {
		p.mu.Unlock()
		return
	}
	voters, ok := p.accepted[msg.Rank]
	if !ok {
		voters = make(map[node.Addr]bool)
		p.accepted[msg.Rank] = voters
		p.values[msg.Rank] = append(Value(nil), msg.Value...)
	}
	voters[msg.Sender] = true
	if len(voters) < majority(p.cfg.MembershipSize) {
		p.mu.Unlock()
		return
	}
	p.decided = true
	value := p.values[msg.Rank]
	onDecide := p.cfg.OnDecide
	p.mu.Unlock()
	if onDecide != nil {
		onDecide(value)
	}
}

// AcceptedValue returns the acceptor's current vote, for tests and debugging.
func (p *Paxos) AcceptedValue() (remoting.Rank, Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vrnd, append(Value(nil), p.vval...)
}
