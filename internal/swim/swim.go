// Package swim is a reimplementation of the SWIM-style gossip membership
// protocol used by HashiCorp Memberlist (and, through it, Serf and Consul).
// The paper evaluates Rapid against Memberlist in every experiment, so this
// package provides the comparison baseline with the mechanics that matter for
// membership behaviour:
//
//   - Periodic random-member probing with indirect ping-req probes.
//   - Suspicion with a timeout and incarnation-numbered refutations.
//   - Piggybacked gossip dissemination of alive/suspect/dead updates.
//   - Periodic push-pull anti-entropy state synchronisation (Memberlist's
//     30-second full state sync), which dominates bootstrap convergence.
//
// Unlike Rapid, membership views are weakly consistent: every node applies
// updates independently and there is no agreement step.
package swim

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// Status is a member's lifecycle state in the SWIM protocol.
type Status int

const (
	// Alive means the member is believed healthy.
	Alive Status = iota
	// Suspect means a probe failed and the member is awaiting refutation.
	Suspect
	// Dead means the suspicion timed out (or a dead update was received).
	Dead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Update is a gossiped membership event.
type Update struct {
	Addr        node.Addr
	Status      Status
	Incarnation uint64
}

// message is the SWIM wire payload carried inside remoting.CustomMessage.
type message struct {
	Type string // "ping", "ping-req", "ack", "push-pull"
	From node.Addr
	// Target is the subject of an indirect probe.
	Target node.Addr
	// Updates piggyback recent membership events.
	Updates []Update
	// State carries the full member table for push-pull syncs.
	State []Update
}

const messageKind = "swim"

func encodeMessage(m *message) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(m)
	return buf.Bytes()
}

func decodeMessage(data []byte) (*message, bool) {
	var m message
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, false
	}
	return &m, true
}

// Options tune a SWIM node. Durations are scaled down in experiments.
type Options struct {
	// ProbeInterval is the protocol period.
	ProbeInterval time.Duration
	// ProbeTimeout bounds the direct probe.
	ProbeTimeout time.Duration
	// IndirectProbes is the number of ping-req helpers per protocol period.
	IndirectProbes int
	// SuspicionTimeout is how long a suspect has to refute before being
	// declared dead.
	SuspicionTimeout time.Duration
	// DeadReapTimeout is how long a dead entry lingers before removal.
	DeadReapTimeout time.Duration
	// PushPullInterval is the anti-entropy full state sync period
	// (30 seconds in Memberlist's LAN configuration).
	PushPullInterval time.Duration
	// GossipPiggyback is the maximum number of updates attached per message.
	GossipPiggyback int
	// RetransmitMult controls how many times each update is retransmitted.
	RetransmitMult int
	// Clock supplies time.
	Clock simclock.Clock
	// Seed makes member selection deterministic in tests.
	Seed int64
}

// DefaultOptions approximates Memberlist's DefaultLANConfig.
func DefaultOptions() Options {
	return Options{
		ProbeInterval:    time.Second,
		ProbeTimeout:     500 * time.Millisecond,
		IndirectProbes:   3,
		SuspicionTimeout: 5 * time.Second,
		DeadReapTimeout:  30 * time.Second,
		PushPullInterval: 30 * time.Second,
		GossipPiggyback:  8,
		RetransmitMult:   4,
		Clock:            simclock.NewReal(),
	}
}

// Scaled divides every duration by factor for compressed-time experiments.
func (o Options) Scaled(factor float64) Options {
	if factor <= 0 {
		return o
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) / factor)
		if s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	o.ProbeInterval = scale(o.ProbeInterval)
	o.ProbeTimeout = scale(o.ProbeTimeout)
	o.SuspicionTimeout = scale(o.SuspicionTimeout)
	o.DeadReapTimeout = scale(o.DeadReapTimeout)
	o.PushPullInterval = scale(o.PushPullInterval)
	return o
}

// memberState is one entry of the local member table.
type memberState struct {
	addr        node.Addr
	status      Status
	incarnation uint64
	since       time.Time
}

// queuedUpdate is a gossip update waiting to be piggybacked.
type queuedUpdate struct {
	update    Update
	transmits int
}

// Node is one SWIM protocol participant.
type Node struct {
	opts   Options
	addr   node.Addr
	net    transport.Network
	client transport.Client
	clock  simclock.Clock

	mu          sync.Mutex
	members     map[node.Addr]*memberState
	incarnation uint64
	queue       []*queuedUpdate
	rng         *rand.Rand
	stopped     bool

	// Derived indexes, maintained incrementally under mu so the hot paths
	// never rescan or re-sort the member table: order holds every known
	// member address sorted (snapshot), probeOrder holds the non-Dead
	// members excluding self, sorted (probe/helper/push-pull target
	// selection), and unstable counts members not currently Alive (lets
	// reapLoop skip its scan entirely on a healthy cluster). alive is the
	// Alive+Suspect count including self, read lock-free by NumAlive so
	// harness polls over 1000 nodes cannot convoy on mu.
	order      []node.Addr
	probeOrder []node.Addr
	unstable   int
	alive      atomic.Int64

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// countsAlive reports whether a status contributes to NumAlive (SWIM counts
// suspects as members until the suspicion timeout declares them dead).
func countsAlive(s Status) bool { return s == Alive || s == Suspect }

// insertAddr adds a to a sorted address slice (no-op if present).
func insertAddr(list []node.Addr, a node.Addr) []node.Addr {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= a })
	if i < len(list) && list[i] == a {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = a
	return list
}

// removeAddr deletes a from a sorted address slice (no-op if absent).
func removeAddr(list []node.Addr, a node.Addr) []node.Addr {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= a })
	if i >= len(list) || list[i] != a {
		return list
	}
	copy(list[i:], list[i+1:])
	return list[:len(list)-1]
}

// addMemberLocked inserts a brand-new member and updates every index.
func (n *Node) addMemberLocked(m *memberState) {
	n.members[m.addr] = m
	n.order = insertAddr(n.order, m.addr)
	if m.addr != n.addr && m.status != Dead {
		n.probeOrder = insertAddr(n.probeOrder, m.addr)
	}
	if countsAlive(m.status) {
		n.alive.Add(1)
	}
	if m.status != Alive {
		n.unstable++
	}
}

// setStatusLocked transitions a member's status, keeping the indexes exact.
func (n *Node) setStatusLocked(m *memberState, s Status) {
	if countsAlive(m.status) != countsAlive(s) {
		if countsAlive(s) {
			n.alive.Add(1)
		} else {
			n.alive.Add(-1)
		}
	}
	if m.addr != n.addr {
		wasTarget, isTarget := m.status != Dead, s != Dead
		if wasTarget && !isTarget {
			n.probeOrder = removeAddr(n.probeOrder, m.addr)
		} else if !wasTarget && isTarget {
			n.probeOrder = insertAddr(n.probeOrder, m.addr)
		}
	}
	if (m.status != Alive) != (s != Alive) {
		if s != Alive {
			n.unstable++
		} else {
			n.unstable--
		}
	}
	m.status = s
}

// deleteMemberLocked reaps a member and updates every index.
func (n *Node) deleteMemberLocked(m *memberState) {
	if countsAlive(m.status) {
		n.alive.Add(-1)
	}
	if m.addr != n.addr && m.status != Dead {
		n.probeOrder = removeAddr(n.probeOrder, m.addr)
	}
	if m.status != Alive {
		n.unstable--
	}
	n.order = removeAddr(n.order, m.addr)
	delete(n.members, m.addr)
}

// Start creates a SWIM node and, if seeds are provided, joins through them by
// push-pull syncing their state.
func Start(addr node.Addr, seeds []node.Addr, opts Options, net transport.Network) (*Node, error) {
	if opts.Clock == nil {
		opts.Clock = simclock.NewReal()
	}
	if opts.ProbeInterval <= 0 {
		opts = DefaultOptions()
	}
	n := &Node{
		opts:    opts,
		addr:    addr,
		net:     net,
		client:  net.Client(addr),
		clock:   opts.Clock,
		members: make(map[node.Addr]*memberState),
		rng:     rand.New(rand.NewSource(opts.Seed ^ int64(len(addr)))),
		stopCh:  make(chan struct{}),
	}
	n.addMemberLocked(&memberState{addr: addr, status: Alive, since: n.clock.Now()})
	if err := net.Register(addr, n); err != nil {
		return nil, err
	}
	for _, seed := range seeds {
		if seed == addr {
			continue
		}
		n.pushPullWith(seed)
	}
	n.wg.Add(3)
	go n.probeLoop()
	go n.pushPullLoop()
	go n.reapLoop()
	return n, nil
}

// Stop halts the node's loops and deregisters it.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stopCh)
	n.wg.Wait()
	n.net.Deregister(n.addr)
}

// Addr returns this node's address.
func (n *Node) Addr() node.Addr { return n.addr }

// NumAlive returns the number of members believed alive (including self).
// It reads an atomically maintained counter, so fleet-wide pollers (the
// harness samples every node's size every few milliseconds) never contend
// with the protocol loops for mu.
func (n *Node) NumAlive() int {
	return int(n.alive.Load())
}

// AliveMembers returns the addresses believed alive, sorted.
func (n *Node) AliveMembers() []node.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []node.Addr
	for _, m := range n.members {
		if m.status == Alive || m.status == Suspect {
			out = append(out, m.addr)
		}
	}
	node.SortAddrs(out)
	return out
}

// --- protocol loops ----------------------------------------------------------

func (n *Node) probeLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.clock.After(n.opts.ProbeInterval):
		}
		target, ok := n.pickProbeTarget()
		if !ok {
			continue
		}
		if n.probe(target) {
			n.markAlive(target, n.incarnationOf(target))
			continue
		}
		// Indirect probes through up to IndirectProbes helpers.
		if n.indirectProbe(target) {
			n.markAlive(target, n.incarnationOf(target))
			continue
		}
		n.markSuspect(target, n.incarnationOf(target))
	}
}

func (n *Node) pushPullLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.clock.After(n.opts.PushPullInterval):
		}
		if target, ok := n.pickProbeTarget(); ok {
			n.pushPullWith(target)
		}
	}
}

func (n *Node) reapLoop() {
	defer n.wg.Done()
	tick := n.opts.ProbeInterval
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.clock.After(tick):
		}
		now := n.clock.Now()
		n.mu.Lock()
		if n.unstable == 0 {
			// Healthy cluster: nothing Suspect or Dead, skip the scan.
			n.mu.Unlock()
			continue
		}
		var reaped []*memberState
		for addr, m := range n.members {
			switch m.status {
			case Suspect:
				if now.Sub(m.since) >= n.opts.SuspicionTimeout {
					n.setStatusLocked(m, Dead)
					m.since = now
					n.enqueueLocked(Update{Addr: addr, Status: Dead, Incarnation: m.incarnation})
				}
			case Dead:
				if now.Sub(m.since) >= n.opts.DeadReapTimeout {
					reaped = append(reaped, m)
				}
			}
		}
		for _, m := range reaped {
			n.deleteMemberLocked(m)
		}
		n.mu.Unlock()
	}
}

// --- probing -----------------------------------------------------------------

func (n *Node) pickProbeTarget() (node.Addr, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// probeOrder is exactly the sorted non-Dead non-self candidate set the
	// old per-call scan built, maintained incrementally: same RNG draw over
	// the same slice, without an O(N log N) sort on every probe interval.
	if len(n.probeOrder) == 0 {
		return "", false
	}
	return n.probeOrder[n.rng.Intn(len(n.probeOrder))], true
}

func (n *Node) probe(target node.Addr) bool {
	ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
	defer cancel()
	resp, err := n.client.Send(ctx, target, n.wrap(&message{Type: "ping", From: n.addr}))
	if err != nil {
		return false
	}
	n.absorbResponse(resp)
	return true
}

func (n *Node) indirectProbe(target node.Addr) bool {
	helpers := n.pickHelpers(target, n.opts.IndirectProbes)
	for _, h := range helpers {
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
		resp, err := n.client.Send(ctx, h, n.wrap(&message{Type: "ping-req", From: n.addr, Target: target}))
		cancel()
		if err != nil {
			continue
		}
		if m, ok := unwrap(resp); ok && m.Type == "ack" {
			n.absorbUpdates(m.Updates)
			return true
		}
	}
	return false
}

func (n *Node) pickHelpers(target node.Addr, k int) []node.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Walk the maintained sorted candidate index instead of re-sorting the
	// member table, and draw k helpers with a partial Fisher-Yates instead
	// of shuffling all N (indirect probes fire on every failed probe, so
	// this path is hot exactly when the cluster is degraded).
	candidates := make([]node.Addr, 0, len(n.probeOrder))
	for _, addr := range n.probeOrder {
		if addr != target && n.members[addr].status == Alive {
			candidates = append(candidates, addr)
		}
	}
	if len(candidates) > k {
		for i := 0; i < k; i++ {
			j := i + n.rng.Intn(len(candidates)-i)
			candidates[i], candidates[j] = candidates[j], candidates[i]
		}
		candidates = candidates[:k]
	} else {
		n.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	}
	return candidates
}

// pushPullWith performs a full state exchange with the target.
func (n *Node) pushPullWith(target node.Addr) {
	ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout*4)
	defer cancel()
	resp, err := n.client.Send(ctx, target, n.wrap(&message{Type: "push-pull", From: n.addr, State: n.snapshot()}))
	if err != nil {
		return
	}
	if m, ok := unwrap(resp); ok {
		n.absorbUpdates(m.State)
	}
}

// --- state management --------------------------------------------------------

func (n *Node) snapshot() []Update {
	n.mu.Lock()
	defer n.mu.Unlock()
	// order is kept sorted incrementally, so a push-pull snapshot is one
	// linear walk (this runs for every push-pull exchange fleet-wide).
	out := make([]Update, 0, len(n.order))
	for _, addr := range n.order {
		m := n.members[addr]
		out = append(out, Update{Addr: m.addr, Status: m.status, Incarnation: m.incarnation})
	}
	return out
}

func (n *Node) incarnationOf(addr node.Addr) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m, ok := n.members[addr]; ok {
		return m.incarnation
	}
	return 0
}

func (n *Node) markAlive(addr node.Addr, incarnation uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.applyLocked(Update{Addr: addr, Status: Alive, Incarnation: incarnation})
}

func (n *Node) markSuspect(addr node.Addr, incarnation uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.applyLocked(Update{Addr: addr, Status: Suspect, Incarnation: incarnation})
}

// applyLocked merges one update using SWIM's precedence rules and queues it
// for further gossip if it changed local state.
func (n *Node) applyLocked(u Update) {
	now := n.clock.Now()
	// Refutation: if we are being suspected or declared dead, bump our
	// incarnation and gossip that we are alive.
	if u.Addr == n.addr && u.Status != Alive {
		n.incarnation = maxUint64(n.incarnation, u.Incarnation) + 1
		if self, ok := n.members[n.addr]; ok {
			self.incarnation = n.incarnation
			n.setStatusLocked(self, Alive)
			self.since = now
		}
		n.enqueueLocked(Update{Addr: n.addr, Status: Alive, Incarnation: n.incarnation})
		return
	}
	m, ok := n.members[u.Addr]
	if !ok {
		if u.Status == Dead {
			return // Do not resurrect bookkeeping for unknown dead members.
		}
		n.addMemberLocked(&memberState{addr: u.Addr, status: u.Status, incarnation: u.Incarnation, since: now})
		n.enqueueLocked(u)
		return
	}
	changed := false
	switch {
	case u.Incarnation > m.incarnation:
		changed = m.status != u.Status || m.incarnation != u.Incarnation
		n.setStatusLocked(m, u.Status)
		m.incarnation = u.Incarnation
	case u.Incarnation == m.incarnation:
		// Same incarnation: suspect overrides alive, dead overrides both.
		if u.Status > m.status {
			n.setStatusLocked(m, u.Status)
			changed = true
		}
	default:
		// Stale update.
	}
	if changed {
		m.since = now
		n.enqueueLocked(Update{Addr: u.Addr, Status: m.status, Incarnation: m.incarnation})
	}
}

func (n *Node) absorbUpdates(updates []Update) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, u := range updates {
		n.applyLocked(u)
	}
}

func (n *Node) absorbResponse(resp *remoting.Response) {
	if m, ok := unwrap(resp); ok {
		n.absorbUpdates(m.Updates)
	}
}

// enqueueLocked queues an update for piggybacked retransmission.
func (n *Node) enqueueLocked(u Update) {
	// Replace any queued update about the same member.
	for i, q := range n.queue {
		if q.update.Addr == u.Addr {
			n.queue[i] = &queuedUpdate{update: u}
			return
		}
	}
	n.queue = append(n.queue, &queuedUpdate{update: u})
}

// takePiggybackLocked returns up to GossipPiggyback updates and retires the
// ones that have been transmitted enough times.
func (n *Node) takePiggybackLocked() []Update {
	limit := n.opts.GossipPiggyback
	out := make([]Update, 0, limit)
	kept := n.queue[:0]
	for _, q := range n.queue {
		if len(out) < limit {
			out = append(out, q.update)
			q.transmits++
		}
		if q.transmits < n.opts.RetransmitMult {
			kept = append(kept, q)
		}
	}
	n.queue = kept
	return out
}

func (n *Node) wrap(m *message) *remoting.Request {
	n.mu.Lock()
	m.Updates = append(m.Updates, n.takePiggybackLocked()...)
	n.mu.Unlock()
	return &remoting.Request{Custom: &remoting.CustomMessage{Kind: messageKind, Data: encodeMessage(m)}}
}

func unwrap(resp *remoting.Response) (*message, bool) {
	if resp == nil || resp.Custom == nil || resp.Custom.Kind != messageKind {
		return nil, false
	}
	return decodeMessage(resp.Custom.Data)
}

// HandleRequest implements transport.Handler.
func (n *Node) HandleRequest(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
	if req == nil || req.Custom == nil || req.Custom.Kind != messageKind {
		return remoting.AckResponse(), nil
	}
	m, ok := decodeMessage(req.Custom.Data)
	if !ok {
		return remoting.AckResponse(), nil
	}
	n.absorbUpdates(m.Updates)
	switch m.Type {
	case "ping":
		n.markAlive(m.From, 0)
		return n.reply(&message{Type: "ack", From: n.addr}), nil
	case "ping-req":
		// Probe the target on behalf of the requester.
		if n.probe(m.Target) {
			return n.reply(&message{Type: "ack", From: n.addr}), nil
		}
		return n.reply(&message{Type: "nack", From: n.addr}), nil
	case "push-pull":
		n.absorbUpdates(m.State)
		n.markAlive(m.From, 0)
		return n.reply(&message{Type: "push-pull", From: n.addr, State: n.snapshot()}), nil
	default:
		return remoting.AckResponse(), nil
	}
}

func (n *Node) reply(m *message) *remoting.Response {
	n.mu.Lock()
	m.Updates = append(m.Updates, n.takePiggybackLocked()...)
	n.mu.Unlock()
	return &remoting.Response{Custom: &remoting.CustomMessage{Kind: messageKind, Data: encodeMessage(m)}}
}

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

var _ transport.Handler = (*Node)(nil)
