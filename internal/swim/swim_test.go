package swim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/simnet"
)

func testOptions() Options {
	return DefaultOptions().Scaled(50)
}

func addr(i int) node.Addr { return node.Addr(fmt.Sprintf("swim-%02d:1", i)) }

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func startCluster(t *testing.T, net *simnet.Network, n int) []*Node {
	t.Helper()
	var nodes []*Node
	seed, err := Start(addr(0), nil, testOptions(), net)
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, seed)
	for i := 1; i < n; i++ {
		nd, err := Start(addr(i), []node.Addr{addr(0)}, testOptions(), net)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	return nodes
}

func stopAll(nodes []*Node) {
	for _, n := range nodes {
		n.Stop()
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	m := &message{Type: "push-pull", From: "a:1", State: []Update{
		{Addr: "a:1", Status: Alive, Incarnation: 3},
		{Addr: "b:1", Status: Suspect, Incarnation: 1},
	}}
	got, ok := decodeMessage(encodeMessage(m))
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Type != "push-pull" || len(got.State) != 2 || got.State[1].Status != Suspect {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, ok := decodeMessage([]byte("garbage")); ok {
		t.Fatal("garbage should not decode")
	}
}

func TestStatusString(t *testing.T) {
	if Alive.String() != "alive" || Suspect.String() != "suspect" || Dead.String() != "dead" {
		t.Fatal("status names wrong")
	}
}

func TestClusterConvergesThroughGossipAndPushPull(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	const n = 8
	nodes := startCluster(t, net, n)
	defer stopAll(nodes)
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, nd := range nodes {
			if nd.NumAlive() != n {
				return false
			}
		}
		return true
	}) {
		counts := []int{}
		for _, nd := range nodes {
			counts = append(counts, nd.NumAlive())
		}
		t.Fatalf("SWIM cluster did not converge: %v", counts)
	}
}

func TestCrashedNodeEventuallyRemoved(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 2})
	const n = 6
	nodes := startCluster(t, net, n)
	defer stopAll(nodes)
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, nd := range nodes {
			if nd.NumAlive() != n {
				return false
			}
		}
		return true
	}) {
		t.Fatal("cluster did not form")
	}
	net.Crash(nodes[n-1].Addr())
	survivors := nodes[:n-1]
	if !waitUntil(t, 30*time.Second, func() bool {
		for _, nd := range survivors {
			if nd.NumAlive() != n-1 {
				return false
			}
		}
		return true
	}) {
		counts := []int{}
		for _, nd := range survivors {
			counts = append(counts, nd.NumAlive())
		}
		t.Fatalf("crashed node was not removed: %v", counts)
	}
}

func TestSuspectRefutation(t *testing.T) {
	// A node that learns it is suspected must bump its incarnation and
	// re-assert itself as alive (the SWIM refutation rule).
	net := simnet.New(simnet.Options{Seed: 3})
	nd, err := Start(addr(0), nil, testOptions(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	nd.absorbUpdates([]Update{{Addr: addr(0), Status: Suspect, Incarnation: 0}})
	nd.mu.Lock()
	self := nd.members[addr(0)]
	inc := nd.incarnation
	nd.mu.Unlock()
	if self.status != Alive {
		t.Fatal("node must refute its own suspicion")
	}
	if inc == 0 {
		t.Fatal("refutation must bump the incarnation number")
	}
}

func TestStaleUpdateIgnored(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 4})
	nd, err := Start(addr(0), nil, testOptions(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	nd.absorbUpdates([]Update{{Addr: "x:1", Status: Alive, Incarnation: 5}})
	nd.absorbUpdates([]Update{{Addr: "x:1", Status: Suspect, Incarnation: 2}}) // stale
	nd.mu.Lock()
	st := nd.members["x:1"].status
	nd.mu.Unlock()
	if st != Alive {
		t.Fatal("a stale lower-incarnation update must not override newer state")
	}
}

func TestSuspectOverridesAliveAtSameIncarnation(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 5})
	nd, err := Start(addr(0), nil, testOptions(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	nd.absorbUpdates([]Update{{Addr: "x:1", Status: Alive, Incarnation: 3}})
	nd.absorbUpdates([]Update{{Addr: "x:1", Status: Suspect, Incarnation: 3}})
	nd.mu.Lock()
	st := nd.members["x:1"].status
	nd.mu.Unlock()
	if st != Suspect {
		t.Fatal("suspect must override alive at the same incarnation")
	}
}

func TestPiggybackQueueRetransmitsAndRetires(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 6})
	opts := testOptions()
	opts.GossipPiggyback = 2
	opts.RetransmitMult = 2
	nd, err := Start(addr(0), nil, opts, net)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	nd.mu.Lock()
	nd.queue = nil
	nd.enqueueLocked(Update{Addr: "a:1", Status: Alive})
	nd.enqueueLocked(Update{Addr: "b:1", Status: Alive})
	nd.enqueueLocked(Update{Addr: "c:1", Status: Alive})
	first := nd.takePiggybackLocked()
	second := nd.takePiggybackLocked()
	third := nd.takePiggybackLocked()
	fourth := nd.takePiggybackLocked()
	nd.mu.Unlock()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("piggyback limit not respected: %d, %d", len(first), len(second))
	}
	// After enough transmissions the queue drains.
	if len(third)+len(fourth) == 0 {
		t.Log("queue drained quickly, acceptable")
	}
	nd.mu.Lock()
	remaining := len(nd.queue)
	nd.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("queue should eventually drain, %d entries left", remaining)
	}
}

func TestEnqueueReplacesSameMember(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 7})
	nd, err := Start(addr(0), nil, testOptions(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	nd.mu.Lock()
	nd.queue = nil
	nd.enqueueLocked(Update{Addr: "a:1", Status: Alive, Incarnation: 1})
	nd.enqueueLocked(Update{Addr: "a:1", Status: Suspect, Incarnation: 1})
	qlen := len(nd.queue)
	status := nd.queue[0].update.Status
	nd.mu.Unlock()
	if qlen != 1 || status != Suspect {
		t.Fatalf("queue should hold one (latest) update per member: len=%d status=%v", qlen, status)
	}
}

// checkIndexes recomputes every derived index from the member table and
// compares it against the incrementally maintained state. The indexes are
// what NumAlive, probe-target selection and push-pull snapshots read, so any
// drift silently corrupts protocol behavior rather than crashing.
func checkIndexes(t *testing.T, n *Node, context string) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	var wantAlive, wantUnstable int
	var wantOrder, wantProbe []node.Addr
	for addr, m := range n.members {
		wantOrder = append(wantOrder, addr)
		if countsAlive(m.status) {
			wantAlive++
		}
		if m.status != Alive {
			wantUnstable++
		}
		if addr != n.addr && m.status != Dead {
			wantProbe = append(wantProbe, addr)
		}
	}
	node.SortAddrs(wantOrder)
	node.SortAddrs(wantProbe)
	if got := int(n.alive.Load()); got != wantAlive {
		t.Errorf("%s: alive counter %d, member table says %d", context, got, wantAlive)
	}
	if n.unstable != wantUnstable {
		t.Errorf("%s: unstable counter %d, member table says %d", context, n.unstable, wantUnstable)
	}
	if !addrsEqual(n.order, wantOrder) {
		t.Errorf("%s: order index %v, member table says %v", context, n.order, wantOrder)
	}
	if !addrsEqual(n.probeOrder, wantProbe) {
		t.Errorf("%s: probeOrder index %v, member table says %v", context, n.probeOrder, wantProbe)
	}
}

func addrsEqual(a, b []node.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDerivedIndexesStayExact drives one node through every membership
// transition — insert, suspect, dead override, incarnation revival, self
// refutation, suspicion expiry and dead reaping — verifying after each step
// that the incremental indexes match a full recomputation.
func TestDerivedIndexesStayExact(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 7})
	nd, err := Start(addr(0), nil, testOptions(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Stop()
	checkIndexes(t, nd, "fresh node")

	peers := []node.Addr{addr(1), addr(2), addr(3)}
	var steps []Update
	for _, p := range peers {
		steps = append(steps, Update{Addr: p, Status: Alive, Incarnation: 1})
	}
	steps = append(steps,
		Update{Addr: addr(1), Status: Suspect, Incarnation: 1}, // suspect overrides alive
		Update{Addr: addr(1), Status: Dead, Incarnation: 1},    // dead overrides suspect
		Update{Addr: addr(1), Status: Alive, Incarnation: 2},   // higher incarnation revives
		Update{Addr: addr(2), Status: Dead, Incarnation: 1},    // straight to dead
		Update{Addr: addr(4), Status: Dead, Incarnation: 1},    // unknown dead: ignored
		Update{Addr: addr(0), Status: Suspect, Incarnation: 0}, // self refutation
		Update{Addr: addr(3), Status: Alive, Incarnation: 0},   // stale: ignored
	)
	for _, u := range steps {
		nd.absorbUpdates([]Update{u})
		checkIndexes(t, nd, fmt.Sprintf("after %s->%s inc=%d", u.Addr, u.Status, u.Incarnation))
	}
	if got := nd.NumAlive(); got != 3 { // self + revived addr(1) + addr(3)
		t.Fatalf("NumAlive = %d, want 3", got)
	}

	// Suspicion expiry and dead reaping run off the clock; force both by
	// backdating the states reapLoop inspects.
	nd.absorbUpdates([]Update{{Addr: addr(3), Status: Suspect, Incarnation: 1}})
	past := nd.clock.Now().Add(-24 * time.Hour)
	nd.mu.Lock()
	nd.members[addr(3)].since = past // Suspect -> Dead on the next reap tick
	nd.members[addr(2)].since = past // Dead -> reaped on the next reap tick
	nd.mu.Unlock()
	if !waitUntil(t, 30*time.Second, func() bool {
		nd.mu.Lock()
		defer nd.mu.Unlock()
		_, reaped := nd.members[addr(2)]
		return !reaped && nd.members[addr(3)].status == Dead
	}) {
		t.Fatal("reap loop did not expire the backdated members")
	}
	checkIndexes(t, nd, "after reaping")
	if got := nd.NumAlive(); got != 2 { // self + addr(1)
		t.Fatalf("NumAlive after reaping = %d, want 2", got)
	}
}
