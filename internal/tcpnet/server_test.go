package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"repro/internal/node"

	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// flakyListener wraps a real listener and fails the first failures Accept
// calls with err, counting every Accept attempt. Injected through the
// Options.Listen hook to regression-test the accept loop's backoff.
type flakyListener struct {
	net.Listener
	err      error
	failures int32 // remaining failures; -1 = fail forever
	attempts atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.attempts.Add(1)
	for {
		n := atomic.LoadInt32(&l.failures)
		if n == 0 {
			return l.Listener.Accept()
		}
		if n < 0 || atomic.CompareAndSwapInt32(&l.failures, n, n-1) {
			return nil, l.err
		}
	}
}

// temporaryErr mimics an accept-queue errno like EMFILE.
var errFDExhausted = fmt.Errorf("accept: %w", syscall.EMFILE)

// TestAcceptLoopBacksOffOnTemporaryErrors is the busy-spin regression test:
// under a persistent EMFILE-style failure the accept loop must retry with
// backoff (a handful of attempts over 300ms, not tens of thousands), and
// must recover once descriptors free up.
func TestAcceptLoopBacksOffOnTemporaryErrors(t *testing.T) {
	var fl *flakyListener
	n := newTestNet(t, Options{
		Listen: func(network, address string) (net.Listener, error) {
			ln, err := net.Listen(network, address)
			if err != nil {
				return nil, err
			}
			fl = &flakyListener{Listener: ln, err: errFDExhausted, failures: -1}
			return fl, nil
		},
	})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)

	time.Sleep(300 * time.Millisecond)
	attempts := fl.attempts.Load()
	// Exponential backoff from 5ms reaches ~80ms windows within 300ms; a
	// busy-spinning loop records millions of attempts here. Allow generous
	// slack for slow runners.
	if attempts > 40 {
		t.Fatalf("accept loop retried %d times in 300ms: not backing off", attempts)
	}
	if n.Stats().AcceptErrors != int64(attempts) {
		t.Fatalf("AcceptErrors = %d, want %d", n.Stats().AcceptErrors, attempts)
	}

	// Recovery: stop failing and the listener must serve again.
	atomic.StoreInt32(&fl.failures, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := n.Client("c").Send(ctx, addr, probeReq()); err != nil {
		t.Fatalf("Send after accept recovery: %v", err)
	}
}

// TestAcceptLoopExitsOnPermanentError: a non-temporary Accept failure must
// stop the loop cleanly (no spin), and Deregister must still return.
func TestAcceptLoopExitsOnPermanentError(t *testing.T) {
	var fl *flakyListener
	n := newTestNet(t, Options{
		Listen: func(network, address string) (net.Listener, error) {
			ln, err := net.Listen(network, address)
			if err != nil {
				return nil, err
			}
			fl = &flakyListener{Listener: ln, err: errors.New("permanent accept failure"), failures: -1}
			return fl, nil
		},
	})
	if err := n.Register("127.0.0.1:0", &countingHandler{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := fl.attempts.Load(); got != 1 {
		t.Fatalf("accept loop made %d attempts after a permanent error, want 1 (clean exit)", got)
	}
	done := make(chan struct{})
	go func() {
		n.Deregister("127.0.0.1:0")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deregister hung after permanent accept failure")
	}
}

// --- framing attacks against a live listener ---------------------------------

// rawDial opens a plain TCP connection to a registered listener.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// assertServerAlive sends one well-formed request and expects a response.
func assertServerAlive(t *testing.T, n *Network, addr string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := n.Client("probe").Send(ctx, node.Addr(addr), probeReq()); err != nil {
		t.Fatalf("listener no longer serving after hostile frame: %v", err)
	}
}

func TestServerSurvivesMalformedFrames(t *testing.T) {
	n := newTestNet(t, Options{IdleTimeout: 2 * time.Second})
	h := &countingHandler{}
	addr := string(registerTestListener(t, n, h))

	t.Run("garbage payload", func(t *testing.T) {
		conn := rawDial(t, addr)
		// Valid header, payload that is not a remoting.Request.
		payload := []byte{0xde, 0xad, 0xbe, 0xef}
		if err := writeFrame(conn, 7, payload); err != nil {
			t.Fatal(err)
		}
		// The server must close this connection (decode failure)...
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("server answered a malformed request instead of closing")
		}
		// ...and keep serving everyone else.
		assertServerAlive(t, n, addr)
	})

	t.Run("oversized length prefix", func(t *testing.T) {
		conn := rawDial(t, addr)
		var hdr [frameHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], maxFrame+1)
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("server accepted an oversized frame")
		}
		assertServerAlive(t, n, addr)
	})

	t.Run("truncated prefix then hangup", func(t *testing.T) {
		conn := rawDial(t, addr)
		if _, err := conn.Write([]byte{0x00, 0x00}); err != nil {
			t.Fatal(err)
		}
		conn.Close()
		assertServerAlive(t, n, addr)
	})

	t.Run("truncated payload then hangup", func(t *testing.T) {
		conn := rawDial(t, addr)
		var hdr [frameHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], 100) // promise 100 bytes
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte{1, 2, 3}); err != nil { // deliver 3
			t.Fatal(err)
		}
		conn.Close()
		assertServerAlive(t, n, addr)
	})

	if got := h.count(); got != 4 {
		t.Fatalf("handler executed %d probes, want exactly the 4 liveness probes", got)
	}
}

// TestCrossRestartSameAddress: Deregister then re-Register the same address
// while clients keep sending. Pooled connections to the dead incarnation are
// detected and replaced; run under -race this covers the pool's
// close/redial/demux interleavings.
func TestCrossRestartSameAddress(t *testing.T) {
	n := newTestNet(t, Options{DialTimeout: 500 * time.Millisecond, RequestTimeout: time.Second})
	h1 := &countingHandler{}
	if err := n.Register("127.0.0.1:0", h1); err != nil {
		t.Fatalf("Register: %v", err)
	}
	bound, _ := n.ListenAddr("127.0.0.1:0")
	addr := string(bound)

	var senders sync.WaitGroup
	stop := make(chan struct{})
	var delivered atomic.Int64
	for i := 0; i < 4; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			c := n.Client("c")
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				if _, err := c.Send(ctx, node.Addr(addr), probeReq()); err == nil {
					delivered.Add(1)
				}
				cancel()
			}
		}()
	}

	// Let traffic flow, restart the listener on the very same port, let
	// traffic recover.
	time.Sleep(100 * time.Millisecond)
	n.Deregister("127.0.0.1:0")
	before := delivered.Load()
	if before == 0 {
		t.Fatal("no requests delivered before restart")
	}
	h2 := &countingHandler{}
	if err := n.Register(node.Addr(addr), h2); err != nil {
		t.Fatalf("re-Register on %s: %v", addr, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && h2.count() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	senders.Wait()
	n.Deregister(node.Addr(addr))
	if h2.count() == 0 {
		t.Fatal("no request reached the restarted listener: pool did not recover from the dead incarnation")
	}
}

// TestDeregisterClosesActiveConns: Deregister must not wait out the idle
// timeout on open inbound connections.
func TestDeregisterClosesActiveConns(t *testing.T) {
	n := newTestNet(t, Options{IdleTimeout: 60 * time.Second})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)
	if _, err := n.Client("c").Send(context.Background(), addr, probeReq()); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// The pooled client connection is still open server-side; Deregister
	// must return promptly anyway.
	done := make(chan struct{})
	go func() {
		n.Deregister("127.0.0.1:0")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deregister blocked on an idle inbound connection")
	}
}
