package tcpnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// listenerState is one Register binding: a listener, its accept loop and the
// inbound connections it has spawned (tracked so Deregister can close them
// instead of waiting out their idle timeouts).
type listenerState struct {
	net     *Network
	ln      net.Listener
	handler transport.Handler
	quit    chan struct{}
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// acceptBackoff schedules retry delays for transient Accept failures:
// exponential from 5ms to 1s, reset by any successful accept. Under FD
// exhaustion the loop used to spin at 100% CPU retrying EMFILE; now it backs
// off and recovers when descriptors free up.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

// isTemporaryAcceptErr classifies Accept failures worth retrying: timeouts
// and resource-exhaustion or connection-level errnos. Anything else —
// including net.ErrClosed from Deregister — permanently stops the loop.
func isTemporaryAcceptErr(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.EMFILE, syscall.ENFILE, syscall.ENOBUFS, syscall.ENOMEM,
		syscall.ECONNABORTED, syscall.ECONNRESET, syscall.EINTR,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

func (st *listenerState) acceptLoop() {
	defer st.wg.Done()
	backoff := time.Duration(0)
	for {
		conn, err := st.ln.Accept()
		if err != nil {
			select {
			case <-st.quit:
				return
			default:
			}
			if !isTemporaryAcceptErr(err) {
				// Permanent failure: exit cleanly rather than spin. The
				// listener is dead either way; Deregister still works.
				return
			}
			st.net.st.acceptErrors.Add(1)
			if backoff == 0 {
				backoff = acceptBackoffBase
			} else if backoff < acceptBackoffMax {
				backoff *= 2
				if backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
			}
			t := time.NewTimer(backoff)
			select {
			case <-st.quit:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		backoff = 0
		st.net.st.acceptedConns.Add(1)
		st.track(conn)
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			st.serveConn(conn)
		}()
	}
}

func (st *listenerState) track(conn net.Conn) {
	st.mu.Lock()
	st.conns[conn] = struct{}{}
	st.mu.Unlock()
}

func (st *listenerState) untrack(conn net.Conn) {
	st.mu.Lock()
	delete(st.conns, conn)
	st.mu.Unlock()
}

// shutdown stops the accept loop, closes every inbound connection and waits
// for in-flight handlers to drain.
func (st *listenerState) shutdown() {
	close(st.quit)
	st.ln.Close()
	st.mu.Lock()
	for conn := range st.conns {
		conn.Close()
	}
	st.mu.Unlock()
	st.wg.Wait()
}

// serveConn serves one inbound connection, pipelined: frames are read
// sequentially but each request's handler runs in its own goroutine (bounded
// by MaxInFlightPerConn) and responses are written, ID-tagged, in completion
// order under a write lock. A decode failure or idle timeout closes the
// connection; clients re-dial transparently.
func (st *listenerState) serveConn(conn net.Conn) {
	defer st.untrack(conn)
	defer conn.Close()

	opts := &st.net.opts
	from := node.Addr(conn.RemoteAddr().String())
	sem := make(chan struct{}, opts.MaxInFlightPerConn)
	var wmu sync.Mutex
	var inflight sync.WaitGroup
	defer inflight.Wait()

	for {
		conn.SetReadDeadline(time.Now().Add(opts.IdleTimeout))
		id, frame, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := remoting.DecodeRequest(frame)
		if err != nil {
			// Protocol violation: drop the connection, not the process.
			return
		}
		select {
		case sem <- struct{}{}:
		case <-st.quit:
			return
		}
		inflight.Add(1)
		go func(id uint64, req *remoting.Request) {
			defer inflight.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), opts.RequestTimeout)
			resp, herr := st.handler.HandleRequest(ctx, from, req)
			cancel()
			if herr != nil || resp == nil {
				resp = &remoting.Response{}
			}
			data, eerr := remoting.EncodeResponse(resp)
			if eerr != nil {
				data, _ = remoting.EncodeResponse(&remoting.Response{})
			}
			wmu.Lock()
			conn.SetWriteDeadline(time.Now().Add(opts.RequestTimeout))
			werr := writeFrame(conn, id, data)
			wmu.Unlock()
			if werr != nil {
				conn.Close()
			}
		}(id, req)
	}
}
