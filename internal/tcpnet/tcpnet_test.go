package tcpnet

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
)

type countingHandler struct {
	mu     sync.Mutex
	probes int
}

func (h *countingHandler) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if req.Probe != nil {
		h.probes++
		return &remoting.Response{Probe: &remoting.ProbeResponse{Status: remoting.NodeOK}}, nil
	}
	return remoting.AckResponse(), nil
}

func (h *countingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.probes
}

func TestTCPRequestResponse(t *testing.T) {
	n := New(Options{})
	h := &countingHandler{}
	if err := n.Register("127.0.0.1:0", h); err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer n.Deregister("127.0.0.1:0")
	addr, ok := n.ListenAddr("127.0.0.1:0")
	if !ok {
		t.Fatal("ListenAddr not found")
	}

	resp, err := n.Client("client").Send(context.Background(), addr,
		&remoting.Request{Probe: &remoting.ProbeRequest{Sender: "client"}})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if resp.Probe == nil || resp.Probe.Status != remoting.NodeOK {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if h.count() != 1 {
		t.Fatalf("handler saw %d probes, want 1", h.count())
	}
}

func TestTCPSendToDownAddressFails(t *testing.T) {
	n := New(Options{DialTimeout: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := n.Client("client").Send(ctx, "127.0.0.1:1",
		&remoting.Request{Probe: &remoting.ProbeRequest{}})
	if err == nil {
		t.Fatal("send to a closed port should fail")
	}
}

func TestTCPBestEffortDelivered(t *testing.T) {
	n := New(Options{})
	h := &countingHandler{}
	if err := n.Register("127.0.0.1:0", h); err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer n.Deregister("127.0.0.1:0")
	addr, _ := n.ListenAddr("127.0.0.1:0")

	n.Client("client").SendBestEffort(addr, &remoting.Request{Probe: &remoting.ProbeRequest{}})
	deadline := time.Now().Add(2 * time.Second)
	for h.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if h.count() != 1 {
		t.Fatal("best-effort message never arrived")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello rapid")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip mismatch: %q", got)
	}
}

func TestReadFrameRejectsHugeFrames(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("readFrame should reject oversized frames")
	}
}

func TestDeregisterStopsListener(t *testing.T) {
	n := New(Options{DialTimeout: 200 * time.Millisecond})
	h := &countingHandler{}
	if err := n.Register("127.0.0.1:0", h); err != nil {
		t.Fatal(err)
	}
	addr, _ := n.ListenAddr("127.0.0.1:0")
	n.Deregister("127.0.0.1:0")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := n.Client("c").Send(ctx, addr, &remoting.Request{Probe: &remoting.ProbeRequest{}}); err == nil {
		t.Fatal("send after Deregister should fail")
	}
}
