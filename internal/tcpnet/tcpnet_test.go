package tcpnet

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

type countingHandler struct {
	mu      sync.Mutex
	probes  int
	entered int
	block   chan struct{} // non-nil: handlers wait here before responding
}

func (h *countingHandler) HandleRequest(ctx context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	h.mu.Lock()
	h.entered++
	h.mu.Unlock()
	if h.block != nil {
		select {
		case <-h.block:
		case <-ctx.Done():
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if req.Probe != nil {
		h.probes++
		return &remoting.Response{Probe: &remoting.ProbeResponse{Status: remoting.NodeOK}}, nil
	}
	return remoting.AckResponse(), nil
}

func (h *countingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.probes
}

func (h *countingHandler) inFlight() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.entered
}

func newTestNet(t *testing.T, opts Options) *Network {
	t.Helper()
	n, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(n.Close)
	return n
}

func registerTestListener(t *testing.T, n *Network, h transport.Handler) node.Addr {
	t.Helper()
	if err := n.Register("127.0.0.1:0", h); err != nil {
		t.Fatalf("Register: %v", err)
	}
	addr, ok := n.ListenAddr("127.0.0.1:0")
	if !ok {
		t.Fatal("ListenAddr not found")
	}
	return addr
}

func probeReq() *remoting.Request {
	return &remoting.Request{Probe: &remoting.ProbeRequest{Sender: "client"}}
}

func TestTCPRequestResponse(t *testing.T) {
	n := newTestNet(t, Options{})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)

	resp, err := n.Client("client").Send(context.Background(), addr, probeReq())
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if resp.Probe == nil || resp.Probe.Status != remoting.NodeOK {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if h.count() != 1 {
		t.Fatalf("handler saw %d probes, want 1", h.count())
	}
}

func TestTCPSendToDownAddressFails(t *testing.T) {
	n := newTestNet(t, Options{DialTimeout: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := n.Client("client").Send(ctx, "127.0.0.1:1", probeReq())
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("send to a closed port: got %v, want ErrUnreachable", err)
	}
}

func TestTCPBestEffortDelivered(t *testing.T) {
	n := newTestNet(t, Options{})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)

	n.Client("client").SendBestEffort(addr, probeReq())
	deadline := time.Now().Add(2 * time.Second)
	for h.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if h.count() != 1 {
		t.Fatal("best-effort message never arrived")
	}
	if got := n.Stats().BestEffortQueued; got != 1 {
		t.Fatalf("BestEffortQueued = %d, want 1", got)
	}
}

// TestConcurrentSendsShareOneConnection is the pooling invariant: many
// concurrent Sends to one peer must ride one pooled connection (one dial),
// not one FD each. Run under -race this also exercises the demux reader and
// write-lock paths for data races.
func TestConcurrentSendsShareOneConnection(t *testing.T) {
	n := newTestNet(t, Options{})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)

	const senders = 32
	const perSender = 20
	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := n.Client("client")
			for j := 0; j < perSender; j++ {
				if _, err := c.Send(context.Background(), addr, probeReq()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Send: %v", err)
	}
	st := n.Stats()
	if h.count() != senders*perSender {
		t.Fatalf("handler saw %d probes, want %d", h.count(), senders*perSender)
	}
	if st.Dials != 1 {
		t.Fatalf("%d concurrent senders dialed %d times, want exactly 1 pooled connection", senders, st.Dials)
	}
	if st.Requests != senders*perSender {
		t.Fatalf("Requests = %d, want %d", st.Requests, senders*perSender)
	}
	if st.AcceptedConns != 1 {
		t.Fatalf("server accepted %d conns, want 1", st.AcceptedConns)
	}
}

// TestPipeliningNoHeadOfLineBlocking: with handlers blocked, a later request
// on the same connection must still complete once handlers unblock, and
// responses arriving out of order must demux to the right waiters.
func TestPipeliningInFlightRequestsOverlap(t *testing.T) {
	block := make(chan struct{})
	h := &countingHandler{block: block}
	n := newTestNet(t, Options{RequestTimeout: 5 * time.Second})
	addr := registerTestListener(t, n, h)

	const inflight = 8
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.Client("c").Send(context.Background(), addr, probeReq()); err != nil {
				errs <- err
			}
		}()
	}
	// All requests must be executing on the server simultaneously (i.e.
	// pipelined past the reader) before any response is released.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h.inFlight() == inflight {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.inFlight() != inflight {
		t.Fatalf("only %d of %d requests in flight concurrently on one connection", h.inFlight(), inflight)
	}
	close(block)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined Send: %v", err)
	}
	if st := n.Stats(); st.Dials != 1 {
		t.Fatalf("pipelined sends dialed %d times, want 1", st.Dials)
	}
	if h.count() != inflight {
		t.Fatalf("handler saw %d, want %d", h.count(), inflight)
	}
}

// --- error mapping (satellite: honest errors) -------------------------------

func TestSendErrorMapping(t *testing.T) {
	tests := []struct {
		name string
		run  func(t *testing.T) error
		want error
	}{
		{
			name: "canceled mid-dial preserves context.Canceled",
			run: func(t *testing.T) error {
				// A hanging dialer injected through the TLS-ready Dial hook:
				// the dial blocks until the caller's context is canceled.
				n := newTestNet(t, Options{
					DialTimeout: 5 * time.Second,
					Dial: func(ctx context.Context, _, _ string) (net.Conn, error) {
						<-ctx.Done()
						return nil, ctx.Err()
					},
				})
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(50 * time.Millisecond); cancel() }()
				_, err := n.Client("c").Send(ctx, "127.0.0.1:9", probeReq())
				return err
			},
			want: context.Canceled,
		},
		{
			name: "caller deadline mid-dial preserves context.DeadlineExceeded",
			run: func(t *testing.T) error {
				n := newTestNet(t, Options{
					DialTimeout: 5 * time.Second,
					Dial: func(ctx context.Context, _, _ string) (net.Conn, error) {
						<-ctx.Done()
						return nil, ctx.Err()
					},
				})
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				_, err := n.Client("c").Send(ctx, "127.0.0.1:9", probeReq())
				return err
			},
			want: context.DeadlineExceeded,
		},
		{
			name: "canceled while waiting for a response preserves context.Canceled",
			run: func(t *testing.T) error {
				block := make(chan struct{})
				defer close(block)
				n := newTestNet(t, Options{RequestTimeout: 10 * time.Second})
				addr := registerTestListener(t, n, &countingHandler{block: block})
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(50 * time.Millisecond); cancel() }()
				_, err := n.Client("c").Send(ctx, addr, probeReq())
				return err
			},
			want: context.Canceled,
		},
		{
			name: "connection refused maps to ErrUnreachable",
			run: func(t *testing.T) error {
				n := newTestNet(t, Options{DialTimeout: 200 * time.Millisecond})
				_, err := n.Client("c").Send(context.Background(), "127.0.0.1:1", probeReq())
				return err
			},
			want: transport.ErrUnreachable,
		},
		{
			name: "internal request timeout maps to ErrTimeout",
			run: func(t *testing.T) error {
				block := make(chan struct{})
				defer close(block)
				n := newTestNet(t, Options{RequestTimeout: 100 * time.Millisecond})
				addr := registerTestListener(t, n, &countingHandler{block: block})
				// No caller deadline: the transport's own RequestTimeout fires.
				_, err := n.Client("c").Send(context.Background(), addr, probeReq())
				return err
			},
			want: transport.ErrTimeout,
		},
		{
			name: "connection reset mid-request maps to ErrUnreachable",
			run: func(t *testing.T) error {
				block := make(chan struct{})
				n := newTestNet(t, Options{RequestTimeout: 10 * time.Second})
				h := &countingHandler{block: block}
				addr := registerTestListener(t, n, h)
				done := make(chan error, 1)
				go func() {
					_, err := n.Client("c").Send(context.Background(), addr, probeReq())
					done <- err
				}()
				// Wait for the request to be in flight, then tear the server
				// down so the client's pooled connection is closed under it.
				deadline := time.Now().Add(2 * time.Second)
				for time.Now().Before(deadline) && n.Stats().AcceptedConns == 0 {
					time.Sleep(5 * time.Millisecond)
				}
				time.Sleep(50 * time.Millisecond)
				// Deregister closes the connection immediately but then drains
				// the in-flight handler, so run it aside and release the
				// handler once the client has observed the reset.
				dereg := make(chan struct{})
				go func() { n.Deregister("127.0.0.1:0"); close(dereg) }()
				err := <-done
				close(block)
				<-dereg
				return err
			},
			want: transport.ErrUnreachable,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
		})
	}
}

// --- options validation (satellite: configurable idle timeout) --------------

func TestOptionsValidation(t *testing.T) {
	tests := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"zero values default", Options{}, false},
		{"explicit idle timeout", Options{IdleTimeout: 5 * time.Second}, false},
		{"negative idle timeout rejected", Options{IdleTimeout: -time.Second}, true},
		{"negative dial timeout rejected", Options{DialTimeout: -1}, true},
		{"negative request timeout rejected", Options{RequestTimeout: -1}, true},
		{"negative best effort queue rejected", Options{BestEffortQueue: -1}, true},
		{"negative workers rejected", Options{BestEffortWorkers: -2}, true},
		{"inverted backoff range rejected", Options{DialBackoffBase: time.Second, DialBackoffMax: time.Millisecond}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n, err := New(tc.opts)
			if tc.wantErr {
				if err == nil {
					n.Close()
					t.Fatal("New accepted invalid options")
				}
				return
			}
			if err != nil {
				t.Fatalf("New rejected valid options: %v", err)
			}
			n.Close()
		})
	}
}

func TestIdleTimeoutDefaultsApplied(t *testing.T) {
	n := newTestNet(t, Options{})
	if n.opts.IdleTimeout != 60*time.Second {
		t.Fatalf("zero IdleTimeout did not default to 60s: %v", n.opts.IdleTimeout)
	}
	if n.opts.ConnsPerPeer != 1 || n.opts.BestEffortWorkers != 4 || n.opts.BestEffortQueue != 1024 {
		t.Fatalf("defaults not applied: %+v", n.opts)
	}
}

// TestIdleConnectionsAreReaped: with a tiny idle timeout, the pooled
// connection must be retired after a quiet period and a later send must
// transparently re-dial.
func TestIdleConnectionsAreReaped(t *testing.T) {
	n := newTestNet(t, Options{IdleTimeout: 200 * time.Millisecond})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)
	c := n.Client("client")

	if _, err := c.Send(context.Background(), addr, probeReq()); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && n.Stats().OpenConns != 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := n.Stats().OpenConns; got != 0 {
		t.Fatalf("idle connection never reaped: OpenConns = %d", got)
	}
	if _, err := c.Send(context.Background(), addr, probeReq()); err != nil {
		t.Fatalf("Send after idle reap: %v", err)
	}
	if st := n.Stats(); st.Dials != 2 {
		t.Fatalf("Dials = %d, want 2 (one initial, one after idle reap)", st.Dials)
	}
}

// --- frame round trip --------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello rapid")
	if err := writeFrame(&buf, 42, payload); err != nil {
		t.Fatal(err)
	}
	id, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Fatalf("frame ID round trip: got %d, want 42", id)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip mismatch: %q", got)
	}
}

func TestReadFrameRejectsHugeFrames(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("readFrame should reject oversized frames")
	}
}

func TestDeregisterStopsListener(t *testing.T) {
	n := newTestNet(t, Options{DialTimeout: 200 * time.Millisecond})
	h := &countingHandler{}
	addr := registerTestListener(t, n, h)
	n.Deregister("127.0.0.1:0")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := n.Client("c").Send(ctx, addr, probeReq()); err == nil {
		t.Fatal("send after Deregister should fail")
	}
}

func TestRegisterTwiceFails(t *testing.T) {
	n := newTestNet(t, Options{})
	addr := registerTestListener(t, n, &countingHandler{})
	if err := n.Register(addr, &countingHandler{}); err == nil {
		t.Fatalf("second Register on %s should fail", addr)
	}
}
