package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing: every message (request or response) is
//
//	4 bytes big-endian payload length
//	8 bytes big-endian request ID
//	payload (remoting binary codec)
//
// The request ID lets many requests share one connection: the client assigns
// IDs, the server echoes each request's ID on its response, and the client's
// demux reader routes responses back to waiters regardless of completion
// order. IDs are per-connection, so 64 bits never wrap in practice.

// maxFrame bounds a single payload to protect against corrupted prefixes.
const maxFrame = 16 << 20

// frameHeaderLen is the fixed header: length prefix plus request ID.
const frameHeaderLen = 12

// writeFrame writes one framed message. Callers serialize writes per
// connection (frames must not interleave).
func writeFrame(w io.Writer, id uint64, payload []byte) error {
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	// One Write call per frame: interleaving-safe under the caller's write
	// lock and one syscall for small membership messages.
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one framed message, returning its request ID and payload.
func readFrame(r io.Reader) (uint64, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(hdr[0:4])
	if size > maxFrame {
		return 0, nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", size)
	}
	id := binary.BigEndian.Uint64(hdr[4:12])
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return id, buf, nil
}
