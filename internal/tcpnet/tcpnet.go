// Package tcpnet is the real-network transport: requests and responses over
// TCP, each framed by a 4-byte length prefix around the compact binary
// encoding of package remoting. It is used by cmd/rapid-node to run a
// membership agent as an ordinary process; the simulated network (package
// simnet) is used everywhere else in tests and experiments.
package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// maxFrame bounds a single message to protect against corrupted prefixes.
const maxFrame = 16 << 20

// Options configure the TCP network.
type Options struct {
	// DialTimeout bounds connection establishment. Defaults to 1s.
	DialTimeout time.Duration
	// RequestTimeout bounds a whole request/response exchange. Defaults to 3s.
	RequestTimeout time.Duration
}

// Network implements transport.Network over TCP. Each Register call starts a
// listener on the registered address; each Client dials per request (simple
// and adequate for membership traffic volumes).
type Network struct {
	opts Options

	mu        sync.Mutex
	listeners map[node.Addr]*listenerState
}

type listenerState struct {
	ln      net.Listener
	handler transport.Handler
	quit    chan struct{}
	wg      sync.WaitGroup
}

// New creates a TCP transport network.
func New(opts Options) *Network {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = time.Second
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 3 * time.Second
	}
	return &Network{opts: opts, listeners: make(map[node.Addr]*listenerState)}
}

// Register implements transport.Network: it listens on addr and serves
// inbound requests with handler until Deregister is called.
func (n *Network) Register(addr node.Addr, handler transport.Handler) error {
	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	st := &listenerState{ln: ln, handler: handler, quit: make(chan struct{})}
	n.mu.Lock()
	n.listeners[addr] = st
	n.mu.Unlock()

	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-st.quit:
					return
				default:
				}
				continue
			}
			st.wg.Add(1)
			go func() {
				defer st.wg.Done()
				st.serveConn(conn, n.opts.RequestTimeout)
			}()
		}
	}()
	return nil
}

// Deregister stops the listener bound to addr.
func (n *Network) Deregister(addr node.Addr) {
	n.mu.Lock()
	st, ok := n.listeners[addr]
	if ok {
		delete(n.listeners, addr)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	close(st.quit)
	st.ln.Close()
	st.wg.Wait()
}

// Client implements transport.Network.
func (n *Network) Client(addr node.Addr) transport.Client {
	return &client{net: n, from: addr}
}

// ListenAddr returns the actual address a listener is bound to. Useful when
// registering with port 0 in tests.
func (n *Network) ListenAddr(addr node.Addr) (node.Addr, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.listeners[addr]
	if !ok {
		return "", false
	}
	return node.Addr(st.ln.Addr().String()), true
}

func (st *listenerState) serveConn(conn net.Conn, timeout time.Duration) {
	defer conn.Close()
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := remoting.DecodeRequest(frame)
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		from := node.Addr(conn.RemoteAddr().String())
		resp, err := st.handler.HandleRequest(ctx, from, req)
		cancel()
		if err != nil || resp == nil {
			resp = &remoting.Response{}
		}
		data, err := remoting.EncodeResponse(resp)
		if err != nil {
			return
		}
		conn.SetWriteDeadline(time.Now().Add(timeout))
		if err := writeFrame(conn, data); err != nil {
			return
		}
	}
}

type client struct {
	net  *Network
	from node.Addr
}

// Send implements transport.Client: dial, write one frame, read one frame.
func (c *client) Send(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
	d := net.Dialer{Timeout: c.net.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, transport.ErrUnreachable
	}
	defer conn.Close()

	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(c.net.opts.RequestTimeout)
	}
	conn.SetDeadline(deadline)

	data, err := remoting.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, data); err != nil {
		return nil, transport.ErrUnreachable
	}
	frame, err := readFrame(conn)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, transport.ErrUnreachable
		}
		return nil, transport.ErrTimeout
	}
	return remoting.DecodeResponse(frame)
}

// SendBestEffort implements transport.Client.
func (c *client) SendBestEffort(to node.Addr, req *remoting.Request) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), c.net.opts.RequestTimeout)
		defer cancel()
		_, _ = c.Send(ctx, to, req)
	}()
}

func writeFrame(w io.Writer, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

var _ transport.Network = (*Network)(nil)
