// Package tcpnet is the real-network transport: requests and responses over
// TCP, framed by a length prefix and a per-request ID around the compact
// binary encoding of package remoting. It is used by cmd/rapid-node to run a
// membership agent as an ordinary process; the simulated network (package
// simnet) is used everywhere else in tests and experiments.
//
// Unlike the seed transport (one dial, one request, one goroutine per
// message), connections are pooled per destination and pipelined: concurrent
// Sends to the same peer ride one TCP connection, a demux reader matches
// responses to waiters by request ID, dial failures open a backoff window so
// alert storms at a dead peer fail fast instead of piling up SYNs, and
// best-effort sends flow through a bounded worker pool that sheds (and
// counts) overflow instead of spawning a goroutine and an FD per message.
// Stats exposes dial/request/drop counters so deployments can verify reuse
// (dials should sit orders of magnitude below requests).
package tcpnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// Options configure the TCP network. Zero values take defaults; negative
// values (and an inverted backoff range) are configuration mistakes and are
// rejected by New, mirroring core.Settings validation.
type Options struct {
	// DialTimeout bounds connection establishment. Defaults to 1s.
	DialTimeout time.Duration
	// RequestTimeout bounds a whole request/response exchange when the
	// caller's context carries no deadline, and bounds server-side handler
	// execution and response writes. Defaults to 3s.
	RequestTimeout time.Duration
	// IdleTimeout is how long a pooled or inbound connection may sit with no
	// traffic before it is closed (the client end closes slightly earlier
	// than the server end so reuse rarely races a server-side close).
	// Defaults to 60s.
	IdleTimeout time.Duration
	// ConnsPerPeer caps pooled connections per destination. Pipelining makes
	// one connection sufficient for membership traffic; raise it only if a
	// single stream becomes a throughput bottleneck. Defaults to 1.
	ConnsPerPeer int
	// MaxInFlightPerConn bounds concurrently executing handlers per inbound
	// connection on the server side. Defaults to 256.
	MaxInFlightPerConn int
	// BestEffortWorkers is the size of the worker pool draining the
	// best-effort send queue. Defaults to 4.
	BestEffortWorkers int
	// BestEffortQueue bounds the best-effort send queue; overflow is dropped
	// and counted in Stats.BestEffortDropped. Defaults to 1024.
	BestEffortQueue int
	// DialBackoffBase is the first post-failure backoff window during which
	// dials to a peer fail fast. It doubles per consecutive failure up to
	// DialBackoffMax. Defaults: 50ms base, 2s max.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// Dial, when non-nil, replaces the default dialer. A TLS deployment
	// supplies a tls.Dialer's DialContext here.
	Dial func(ctx context.Context, network, address string) (net.Conn, error)
	// Listen, when non-nil, replaces net.Listen. A TLS deployment supplies
	// tls.Listen here; tests inject failing listeners through it.
	Listen func(network, address string) (net.Listener, error)
}

// validate rejects negative or inverted options and fills in defaults,
// following the same convention as core.Settings: zero means "default",
// nonsense is an error rather than a silent rewrite.
func (o *Options) validate() error {
	if o.DialTimeout < 0 || o.RequestTimeout < 0 || o.IdleTimeout < 0 ||
		o.DialBackoffBase < 0 || o.DialBackoffMax < 0 {
		return fmt.Errorf("tcpnet: negative timeout in options (dial=%v request=%v idle=%v backoff=%v/%v)",
			o.DialTimeout, o.RequestTimeout, o.IdleTimeout, o.DialBackoffBase, o.DialBackoffMax)
	}
	if o.ConnsPerPeer < 0 || o.MaxInFlightPerConn < 0 || o.BestEffortWorkers < 0 || o.BestEffortQueue < 0 {
		return fmt.Errorf("tcpnet: negative bound in options (conns=%d inflight=%d workers=%d queue=%d)",
			o.ConnsPerPeer, o.MaxInFlightPerConn, o.BestEffortWorkers, o.BestEffortQueue)
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 3 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 60 * time.Second
	}
	if o.ConnsPerPeer == 0 {
		o.ConnsPerPeer = 1
	}
	if o.MaxInFlightPerConn == 0 {
		o.MaxInFlightPerConn = 256
	}
	if o.BestEffortWorkers == 0 {
		o.BestEffortWorkers = 4
	}
	if o.BestEffortQueue == 0 {
		o.BestEffortQueue = 1024
	}
	if o.DialBackoffBase == 0 {
		o.DialBackoffBase = 50 * time.Millisecond
	}
	if o.DialBackoffMax == 0 {
		o.DialBackoffMax = 2 * time.Second
	}
	if o.DialBackoffBase > o.DialBackoffMax {
		return fmt.Errorf("tcpnet: dial backoff base %v exceeds max %v", o.DialBackoffBase, o.DialBackoffMax)
	}
	if o.Dial == nil {
		d := &net.Dialer{}
		o.Dial = d.DialContext
	}
	if o.Listen == nil {
		o.Listen = net.Listen
	}
	return nil
}

// Stats is a point-in-time snapshot of the transport's instrumentation.
// The pooling invariant to watch in production is Dials << Requests.
type Stats struct {
	// Dials counts TCP connections established by the client side.
	Dials int64
	// DialErrors counts failed dial attempts (backoff fail-fasts excluded).
	DialErrors int64
	// Requests counts request/response exchanges attempted over pooled
	// connections, including best-effort deliveries.
	Requests int64
	// StaleRetries counts sends transparently retried on a fresh connection
	// after writing to a pooled connection the peer had already closed.
	StaleRetries int64
	// OpenConns is the number of currently open pooled (outbound) connections.
	OpenConns int64
	// BestEffortQueued / BestEffortDropped count fire-and-forget sends
	// accepted into, or shed from, the bounded best-effort queue.
	BestEffortQueued  int64
	BestEffortDropped int64
	// AcceptedConns counts inbound connections accepted across listeners.
	AcceptedConns int64
	// AcceptErrors counts transient listener Accept failures survived via
	// backoff (FD exhaustion shows up here instead of as a spinning core).
	AcceptErrors int64
}

// netStats hold the live counters behind Stats.
type netStats struct {
	dials             metrics.Counter
	dialErrors        metrics.Counter
	requests          metrics.Counter
	staleRetries      metrics.Counter
	openConns         metrics.Gauge
	bestEffortQueued  metrics.Counter
	bestEffortDropped metrics.Counter
	acceptedConns     metrics.Counter
	acceptErrors      metrics.Counter
}

// Network implements transport.Network over TCP. Each Register call starts a
// listener on the registered address; Clients share per-destination
// connection pools owned by the Network.
type Network struct {
	opts Options
	st   netStats

	mu        sync.Mutex
	closed    bool
	listeners map[node.Addr]*listenerState
	pools     map[node.Addr]*pool

	beCh chan beTask
	beWG sync.WaitGroup
}

// New creates a TCP transport network. It fails on invalid options (negative
// timeouts or bounds, inverted backoff range).
func New(opts Options) (*Network, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		opts:      opts,
		listeners: make(map[node.Addr]*listenerState),
		pools:     make(map[node.Addr]*pool),
		beCh:      make(chan beTask, opts.BestEffortQueue),
	}
	n.beWG.Add(opts.BestEffortWorkers)
	for i := 0; i < opts.BestEffortWorkers; i++ {
		go n.bestEffortWorker()
	}
	return n, nil
}

// Register implements transport.Network: it listens on addr and serves
// inbound requests with handler until Deregister is called.
func (n *Network) Register(addr node.Addr, handler transport.Handler) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("tcpnet: network closed")
	}
	if _, dup := n.listeners[addr]; dup {
		n.mu.Unlock()
		return fmt.Errorf("tcpnet: %s already registered", addr)
	}
	n.mu.Unlock()

	ln, err := n.opts.Listen("tcp", string(addr))
	if err != nil {
		return fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	st := &listenerState{
		net:     n,
		ln:      ln,
		handler: handler,
		quit:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}

	n.mu.Lock()
	if n.closed || n.listeners[addr] != nil {
		n.mu.Unlock()
		ln.Close()
		return fmt.Errorf("tcpnet: %s already registered", addr)
	}
	n.listeners[addr] = st
	n.mu.Unlock()

	st.wg.Add(1)
	go st.acceptLoop()
	return nil
}

// Deregister stops the listener bound to addr, closes its inbound
// connections and waits for in-flight handlers to drain.
func (n *Network) Deregister(addr node.Addr) {
	n.mu.Lock()
	st, ok := n.listeners[addr]
	if ok {
		delete(n.listeners, addr)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	st.shutdown()
}

// Client implements transport.Network. All clients share the network's
// per-destination pools; from only labels the client.
func (n *Network) Client(addr node.Addr) transport.Client {
	return &client{net: n, from: addr}
}

// ListenAddr returns the actual address a listener is bound to. Useful when
// registering with port 0 in tests.
func (n *Network) ListenAddr(addr node.Addr) (node.Addr, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.listeners[addr]
	if !ok {
		return "", false
	}
	return node.Addr(st.ln.Addr().String()), true
}

// Stats snapshots the transport counters.
func (n *Network) Stats() Stats {
	return Stats{
		Dials:             n.st.dials.Value(),
		DialErrors:        n.st.dialErrors.Value(),
		Requests:          n.st.requests.Value(),
		StaleRetries:      n.st.staleRetries.Value(),
		OpenConns:         n.st.openConns.Value(),
		BestEffortQueued:  n.st.bestEffortQueued.Value(),
		BestEffortDropped: n.st.bestEffortDropped.Value(),
		AcceptedConns:     n.st.acceptedConns.Value(),
		AcceptErrors:      n.st.acceptErrors.Value(),
	}
}

// Close tears the whole transport down: every listener, every pooled
// connection, and the best-effort worker pool. The network cannot be reused
// afterwards. Safe to call more than once.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	listeners := make([]*listenerState, 0, len(n.listeners))
	for addr, st := range n.listeners {
		delete(n.listeners, addr)
		listeners = append(listeners, st)
	}
	pools := make([]*pool, 0, len(n.pools))
	for addr, pl := range n.pools {
		delete(n.pools, addr)
		pools = append(pools, pl)
	}
	close(n.beCh)
	n.mu.Unlock()

	for _, st := range listeners {
		st.shutdown()
	}
	for _, pl := range pools {
		pl.closeAll()
	}
	n.beWG.Wait()
}

// beTask is one queued best-effort send.
type beTask struct {
	to  node.Addr
	req *remoting.Request
}

// bestEffortWorker drains the bounded queue; each delivery is a normal
// pooled Send whose outcome is intentionally ignored.
func (n *Network) bestEffortWorker() {
	defer n.beWG.Done()
	for task := range n.beCh {
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.RequestTimeout)
		_, _ = n.send(ctx, ctx, task.to, task.req)
		cancel()
	}
}

// pool returns (creating on demand) the connection pool for a destination.
func (n *Network) pool(to node.Addr) *pool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	pl, ok := n.pools[to]
	if !ok {
		pl = newPool(n, to)
		n.pools[to] = pl
	}
	return pl
}

var _ transport.Network = (*Network)(nil)
