package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// client implements transport.Client. All clients of a Network share its
// per-destination pools; from only labels the sender.
type client struct {
	net  *Network
	from node.Addr
}

// Send implements transport.Client over a pooled, pipelined connection.
//
// Error contract: if the caller's context is canceled or expires, its
// ctx.Err() is returned verbatim. Otherwise dial failures, peer-closed
// connections and connection resets map to transport.ErrUnreachable, and
// deadline-style failures (including the internal RequestTimeout when the
// caller set no deadline) map to transport.ErrTimeout.
func (c *client) Send(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
	callerCtx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.net.opts.RequestTimeout)
		defer cancel()
	}
	return c.net.send(callerCtx, ctx, to, req)
}

// SendBestEffort implements transport.Client: the message is queued for a
// bounded worker pool; if the queue is full it is dropped and counted rather
// than spawning an unbounded goroutine (and connection) per message.
func (c *client) SendBestEffort(to node.Addr, req *remoting.Request) {
	n := c.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	select {
	case n.beCh <- beTask{to: to, req: req}:
		n.mu.Unlock()
		n.st.bestEffortQueued.Add(1)
	default:
		n.mu.Unlock()
		n.st.bestEffortDropped.Add(1)
	}
}

// send runs one exchange. callerCtx distinguishes "the caller gave up"
// (preserve ctx.Err()) from "our internal request timeout fired" (report
// transport.ErrTimeout). A send that fails while writing to a reused pooled
// connection — the peer closed it while idle — is retried once on a fresh
// connection; the request was never processed, so the retry is safe.
func (n *Network) send(callerCtx, ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
	pl := n.pool(to)
	if pl == nil {
		return nil, fmt.Errorf("%w: network closed", transport.ErrUnreachable)
	}
	data, err := remoting.EncodeRequest(req)
	if err != nil {
		return nil, err
	}
	n.st.requests.Add(1)
	for attempt := 0; ; attempt++ {
		pc, err := pl.acquire(ctx)
		if err != nil {
			if cerr := callerCtx.Err(); cerr != nil {
				return nil, cerr
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				// The internal request timeout fired while dialing/waiting.
				return nil, transport.ErrTimeout
			}
			return nil, err
		}
		resp, err, retryable := pc.roundTrip(callerCtx, ctx, data)
		if err != nil && retryable && attempt == 0 {
			n.st.staleRetries.Add(1)
			continue
		}
		return resp, err
	}
}

// pool is the set of pipelined connections to one destination, plus the dial
// backoff state that makes sends to a dead peer fail fast instead of each
// opening its own doomed SYN.
type pool struct {
	net  *Network
	addr node.Addr

	mu           sync.Mutex
	conns        []*pconn
	next         int           // round-robin cursor when ConnsPerPeer > 1
	dialDone     chan struct{} // non-nil while a dial is in flight
	backoffUntil time.Time
	backoff      time.Duration
	closed       bool
}

func newPool(n *Network, addr node.Addr) *pool {
	return &pool{net: n, addr: addr}
}

// acquire returns a live connection to the pool's destination, dialing at
// most once at a time: concurrent senders wait for the in-flight dial
// instead of each dialing their own connection (this is what collapses a
// join storm's worth of messages onto one FD).
func (pl *pool) acquire(ctx context.Context) (*pconn, error) {
	pl.mu.Lock()
	for {
		if pl.closed {
			pl.mu.Unlock()
			return nil, fmt.Errorf("%w: network closed", transport.ErrUnreachable)
		}
		if len(pl.conns) >= pl.net.opts.ConnsPerPeer {
			pl.next = (pl.next + 1) % len(pl.conns)
			pc := pl.conns[pl.next]
			pl.mu.Unlock()
			return pc, nil
		}
		if until := pl.backoffUntil; time.Now().Before(until) {
			if len(pl.conns) > 0 {
				pc := pl.conns[0]
				pl.mu.Unlock()
				return pc, nil
			}
			pl.mu.Unlock()
			return nil, fmt.Errorf("%w: dial backoff until %s", transport.ErrUnreachable, until.Format("15:04:05.000"))
		}
		if pl.dialDone != nil {
			done := pl.dialDone
			pl.mu.Unlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			pl.mu.Lock()
			continue
		}
		// This goroutine dials; everyone else waits on dialDone.
		pl.dialDone = make(chan struct{})
		pl.mu.Unlock()
		pc, err := pl.dial(ctx)
		pl.mu.Lock()
		close(pl.dialDone)
		pl.dialDone = nil
		if err != nil {
			pl.mu.Unlock()
			return nil, err
		}
		if pl.closed {
			pl.mu.Unlock()
			pc.close(fmt.Errorf("%w: network closed", transport.ErrUnreachable))
			return nil, fmt.Errorf("%w: network closed", transport.ErrUnreachable)
		}
		pl.conns = append(pl.conns, pc)
		pl.mu.Unlock()
		return pc, nil
	}
}

// dial opens and wires up one pipelined connection. Called with pl.mu
// released; only one dial runs at a time per pool.
func (pl *pool) dial(ctx context.Context) (*pconn, error) {
	opts := &pl.net.opts
	dctx, cancel := context.WithTimeout(ctx, opts.DialTimeout)
	conn, err := opts.Dial(dctx, "tcp", string(pl.addr))
	cancel()
	if err != nil {
		pl.net.st.dialErrors.Add(1)
		pl.mu.Lock()
		if pl.backoff == 0 {
			pl.backoff = opts.DialBackoffBase
		} else if pl.backoff < opts.DialBackoffMax {
			pl.backoff *= 2
			if pl.backoff > opts.DialBackoffMax {
				pl.backoff = opts.DialBackoffMax
			}
		}
		pl.backoffUntil = time.Now().Add(pl.backoff)
		pl.mu.Unlock()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: dial %s: %v", transport.ErrUnreachable, pl.addr, err)
	}
	pl.mu.Lock()
	pl.backoff = 0
	pl.backoffUntil = time.Time{}
	pl.mu.Unlock()
	pl.net.st.dials.Add(1)
	pl.net.st.openConns.Add(1)
	pc := &pconn{
		pool:    pl,
		conn:    conn,
		pending: make(map[uint64]chan result),
	}
	go pc.readLoop()
	return pc, nil
}

// remove drops a dead connection from the pool.
func (pl *pool) remove(pc *pconn) {
	pl.mu.Lock()
	for i, c := range pl.conns {
		if c == pc {
			pl.conns = append(pl.conns[:i], pl.conns[i+1:]...)
			break
		}
	}
	pl.mu.Unlock()
}

// closeAll closes every pooled connection; used by Network.Close.
func (pl *pool) closeAll() {
	pl.mu.Lock()
	pl.closed = true
	conns := append([]*pconn(nil), pl.conns...)
	pl.conns = nil
	pl.mu.Unlock()
	for _, pc := range conns {
		pc.close(fmt.Errorf("%w: network closed", transport.ErrUnreachable))
	}
}

// result is one demuxed response.
type result struct {
	resp *remoting.Response
	err  error
}

// pconn is one pipelined connection: a write lock serializes frames out, a
// reader goroutine demuxes ID-tagged responses back to waiting senders.
type pconn struct {
	pool *pool
	conn net.Conn

	wmu sync.Mutex // serializes writeFrame calls

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	closed  bool
	failErr error
}

// roundTrip sends one encoded request and waits for its response. retryable
// reports that the failure happened before the request could have been
// processed (a write to a connection the peer had closed), so the caller may
// safely retry on a fresh connection.
func (pc *pconn) roundTrip(callerCtx, ctx context.Context, data []byte) (_ *remoting.Response, err error, retryable bool) {
	pc.mu.Lock()
	if pc.closed {
		err := pc.failErr
		pc.mu.Unlock()
		return nil, err, true
	}
	pc.nextID++
	id := pc.nextID
	ch := make(chan result, 1)
	pc.pending[id] = ch
	pc.mu.Unlock()

	pc.wmu.Lock()
	if dl, ok := ctx.Deadline(); ok {
		pc.conn.SetWriteDeadline(dl)
	}
	werr := writeFrame(pc.conn, id, data)
	pc.wmu.Unlock()
	if werr != nil {
		pc.unregister(id)
		pc.close(fmt.Errorf("%w: write: %v", transport.ErrUnreachable, werr))
		if cerr := callerCtx.Err(); cerr != nil {
			return nil, cerr, false
		}
		return nil, fmt.Errorf("%w: write %s: %v", transport.ErrUnreachable, pc.pool.addr, werr), true
	}

	select {
	case r := <-ch:
		if r.err != nil && callerCtx.Err() != nil {
			return nil, callerCtx.Err(), false
		}
		return r.resp, r.err, false
	case <-ctx.Done():
		pc.unregister(id)
		if cerr := callerCtx.Err(); cerr != nil {
			return nil, cerr, false
		}
		return nil, transport.ErrTimeout, false
	}
}

func (pc *pconn) unregister(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

// readLoop demuxes responses to waiters until the connection dies or idles
// out. The client end idles out at 3/4 of IdleTimeout so that reuse of a
// long-idle connection rarely races the server's own idle close.
func (pc *pconn) readLoop() {
	idle := pc.pool.net.opts.IdleTimeout * 3 / 4
	for {
		pc.conn.SetReadDeadline(time.Now().Add(idle))
		id, frame, err := readFrame(pc.conn)
		if err != nil {
			var ne net.Error
			idleTimeout := errors.As(err, &ne) && ne.Timeout()
			pc.mu.Lock()
			quietIdle := idleTimeout && len(pc.pending) == 0
			pc.mu.Unlock()
			if quietIdle {
				// Normal idle reap: nobody is waiting, just retire the conn.
				pc.close(fmt.Errorf("%w: connection idle-closed", transport.ErrUnreachable))
				return
			}
			pc.close(mapReadErr(pc.pool.addr, err))
			return
		}
		resp, derr := remoting.DecodeResponse(frame)
		pc.mu.Lock()
		ch, ok := pc.pending[id]
		delete(pc.pending, id)
		pc.mu.Unlock()
		if ok {
			ch <- result{resp: resp, err: derr}
		}
	}
}

// mapReadErr translates a broken-connection read failure honestly: deadline
// expiries are timeouts, everything else (EOF, ECONNRESET, use-of-closed)
// means the peer is gone.
func mapReadErr(addr node.Addr, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: read %s: %v", transport.ErrTimeout, addr, err)
	}
	return fmt.Errorf("%w: read %s: %v", transport.ErrUnreachable, addr, err)
}

// close fails every pending waiter with err, closes the socket and removes
// the connection from its pool. Idempotent.
func (pc *pconn) close(err error) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return
	}
	pc.closed = true
	pc.failErr = err
	pending := pc.pending
	pc.pending = make(map[uint64]chan result)
	pc.mu.Unlock()

	pc.conn.Close()
	pc.pool.remove(pc)
	pc.pool.net.st.openConns.Add(-1)
	for _, ch := range pending {
		ch <- result{err: err}
	}
}
