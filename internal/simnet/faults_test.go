package simnet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// --- Options.Latency on best-effort delivery (regression) --------------------

// TestBestEffortHonorsLatency is the regression test for the historical gap
// where Options.Latency applied only to synchronous request/response: a
// best-effort message must now be held for the configured latency before its
// handler runs. A manual clock proves the message is withheld until simulated
// time passes the deadline, not merely delayed by scheduling.
func TestBestEffortHonorsLatency(t *testing.T) {
	clk := simclock.NewManual(time.Unix(0, 0))
	n := New(Options{Seed: 1, Clock: clk, Latency: 100 * time.Millisecond})
	defer n.Close()
	h := &echoHandler{}
	n.Register("b:1", h)
	n.Client("a:1").SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1"}})

	// Without advancing the clock the message must stay queued.
	time.Sleep(50 * time.Millisecond)
	if got := h.alertCount(); got != 0 {
		t.Fatalf("best-effort message delivered before latency elapsed (got %d)", got)
	}
	clk.Advance(100 * time.Millisecond)
	waitFor(t, func() bool { return h.alertCount() == 1 }, "latency-delayed best-effort delivery")
}

// TestBestEffortLatencyRealClock covers the same fix under the real clock
// (what fleets run on): delivery happens, and not before the latency.
func TestBestEffortLatencyRealClock(t *testing.T) {
	n := New(Options{Seed: 1, Latency: 60 * time.Millisecond})
	defer n.Close()
	h := &echoHandler{}
	n.Register("b:1", h)
	start := time.Now()
	n.Client("a:1").SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1"}})
	waitFor(t, func() bool { return h.alertCount() == 1 }, "delayed best-effort delivery")
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("best-effort message arrived after %v, before the 60ms latency", elapsed)
	}
}

// --- slow-but-alive nodes ----------------------------------------------------

// TestNodeDelaySlowButAlive: a node with an installed delay still answers
// every RPC — slower, not lossy — and removing the rule restores full speed.
func TestNodeDelaySlowButAlive(t *testing.T) {
	n := New(Options{Seed: 1})
	defer n.Close()
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetNodeDelay("b:1", 30*time.Millisecond)

	start := time.Now()
	resp, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	if err != nil || resp.Probe == nil {
		t.Fatalf("slow node must still answer: %v", err)
	}
	if rtt := time.Since(start); rtt < 55*time.Millisecond {
		t.Fatalf("round trip %v, want >= 2x30ms one-way delay", rtt)
	}
	n.SetNodeDelay("b:1", 0)
	start = time.Now()
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt > 25*time.Millisecond {
		t.Fatalf("round trip %v after clearing delay, want fast", rtt)
	}
}

// TestSlowNodeTimesOutBoundedRPCs: the delay races the caller's context
// deadline, so a prober with a tight timeout sees a failure — the mechanism
// that makes "slow" a protocol-visible gray failure.
func TestSlowNodeTimesOutBoundedRPCs(t *testing.T) {
	n := New(Options{Seed: 1})
	defer n.Close()
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetNodeDelay("b:1", 200*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Client("a:1").Send(ctx, "b:1", probe("a:1"))
	if err != transport.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Fatal("timed-out RPC still slept the full delay")
	}
}

// --- flapping rules ----------------------------------------------------------

// TestFlapScheduleTogglesLoss drives the flap phases with a manual clock:
// active at install, inactive after On elapses, active again a full cycle in.
func TestFlapScheduleTogglesLoss(t *testing.T) {
	clk := simclock.NewManual(time.Unix(0, 0))
	n := New(Options{Seed: 1, Clock: clk})
	defer n.Close()
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetFlap("b:1", FlapSpec{Loss: 1.0, Ingress: true, On: 50 * time.Millisecond, Off: 50 * time.Millisecond})

	send := func() error {
		_, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
		return err
	}
	if err := send(); err == nil {
		t.Fatal("flap should be in its On (lossy) phase right after install")
	}
	clk.Advance(60 * time.Millisecond) // into the Off phase
	if err := send(); err != nil {
		t.Fatalf("flap Off phase should deliver: %v", err)
	}
	clk.Advance(50 * time.Millisecond) // wraps into the next On phase
	if err := send(); err == nil {
		t.Fatal("flap should be lossy again one full cycle in")
	}
	n.ClearFlap("b:1")
	if err := send(); err != nil {
		t.Fatalf("cleared flap should deliver: %v", err)
	}
}

// --- asymmetric partitions ---------------------------------------------------

// TestAsymmetricPartition: deaf members hear only each other while their own
// traffic still reaches everyone.
func TestAsymmetricPartition(t *testing.T) {
	n := New(Options{Seed: 1})
	defer n.Close()
	handlers := map[node.Addr]*echoHandler{}
	for _, a := range []node.Addr{"a:1", "b:1", "c:1"} {
		h := &echoHandler{}
		handlers[a] = h
		n.Register(a, h)
	}
	n.SetAsymmetricPartition("a:1", "b:1")

	// Outside -> deaf is dropped.
	if _, err := n.Client("c:1").Send(context.Background(), "a:1", probe("c:1")); err == nil {
		t.Fatal("deaf member heard an outside sender")
	}
	// Deaf -> outside delivers the request, but the response path (outside ->
	// deaf) is blocked, like a one-way link.
	if _, err := n.Client("a:1").Send(context.Background(), "c:1", probe("a:1")); err != transport.ErrTimeout {
		t.Fatal("deaf member's own traffic should reach outside (and lose the response)")
	}
	// Deaf members hear each other.
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("deaf members should hear each other: %v", err)
	}
	n.ClearAsymmetricPartition()
	if _, err := n.Client("c:1").Send(context.Background(), "a:1", probe("c:1")); err != nil {
		t.Fatalf("cleared partition should deliver: %v", err)
	}
}

// --- WAN latency classes -----------------------------------------------------

// TestZoneLatencyClasses: the zone model charges intra- and cross-zone links
// differently, deterministically in the addresses.
func TestZoneLatencyClasses(t *testing.T) {
	model := ZoneLatency(3, time.Millisecond, 40*time.Millisecond)
	// Zones are address hashes; find two same-zone and two cross-zone addrs.
	zone := func(a node.Addr) uint32 { return addrHash(a) % 3 }
	addrs := make([]node.Addr, 64)
	for i := range addrs {
		addrs[i] = node.Addr(fmt.Sprintf("m%04d:9000", i))
	}
	var same, cross [2]node.Addr
	foundSame, foundCross := false, false
	for _, a := range addrs[1:] {
		if zone(a) == zone(addrs[0]) && !foundSame {
			same = [2]node.Addr{addrs[0], a}
			foundSame = true
		}
		if zone(a) != zone(addrs[0]) && !foundCross {
			cross = [2]node.Addr{addrs[0], a}
			foundCross = true
		}
	}
	if !foundSame || !foundCross {
		t.Fatal("test addresses did not span zones")
	}
	if d := model(same[0], same[1]); d != time.Millisecond {
		t.Fatalf("intra-zone delay = %v, want 1ms", d)
	}
	if d := model(cross[0], cross[1]); d != 40*time.Millisecond {
		t.Fatalf("cross-zone delay = %v, want 40ms", d)
	}

	// Installed on a network, the model delays the cross-zone link.
	n := New(Options{Seed: 1})
	defer n.Close()
	h := &echoHandler{}
	n.Register(cross[1], h)
	n.SetLatencyModel(model)
	start := time.Now()
	if _, err := n.Client(cross[0]).Send(context.Background(), cross[1], probe(cross[0])); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 75*time.Millisecond {
		t.Fatalf("cross-zone round trip %v, want >= 2x40ms", rtt)
	}
	n.SetLatencyModel(nil)
	start = time.Now()
	if _, err := n.Client(cross[0]).Send(context.Background(), cross[1], probe(cross[0])); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt > 30*time.Millisecond {
		t.Fatalf("round trip %v after removing model, want fast", rtt)
	}
}

// --- chaos: duplication and reordering ---------------------------------------

// TestChaosDuplicatesEveryMessage: Duplicate=1 doubles delivery and counts
// the copies.
func TestChaosDuplicatesEveryMessage(t *testing.T) {
	n := New(Options{Seed: 1})
	defer n.Close()
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetChaos(ChaosSpec{Duplicate: 1.0})
	cl := n.Client("a:1")
	for i := 0; i < 10; i++ {
		cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1", Seq: uint64(i)}})
	}
	waitFor(t, func() bool { return h.alertCount() == 20 }, "duplicated deliveries")
	if n.Duplicates() != 10 {
		t.Fatalf("Duplicates() = %d, want 10", n.Duplicates())
	}
	n.ClearChaos()
	cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1"}})
	waitFor(t, func() bool { return h.alertCount() == 21 }, "post-clear delivery")
	if n.Duplicates() != 10 {
		t.Fatal("cleared chaos still duplicating")
	}
}

// TestChaosReordersDelivery: with full reorder probability and a manual
// clock, jittered messages leave the delay heap in deadline order, not send
// order.
func TestChaosReordersDelivery(t *testing.T) {
	clk := simclock.NewManual(time.Unix(0, 0))
	n := New(Options{Seed: 7, Clock: clk, Shards: 1})
	defer n.Close()
	h := &traceHandler{}
	n.Register("d0:1", h)
	n.SetChaos(ChaosSpec{Reorder: 1.0, MaxJitter: 100 * time.Millisecond})
	cl := n.Client("s0:1")
	const sends = 20
	for i := 0; i < sends; i++ {
		cl.SendBestEffort("d0:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "s0:1", Seq: uint64(i)}})
	}
	clk.Advance(200 * time.Millisecond)
	waitFor(t, func() bool { return len(h.snapshot()) == sends }, "jittered deliveries")
	trace := h.snapshot()
	sendOrder := true
	for i := range trace {
		if trace[i] != alertTag("s0:1", uint64(i)) {
			sendOrder = false
			break
		}
	}
	if sendOrder {
		t.Fatal("full reorder jitter delivered every message in send order")
	}
}

// alertTag mirrors traceHandler's encoding of one delivered alert.
func alertTag(from node.Addr, seq uint64) string {
	return string(from) + "#" + string(rune('0'+seq%10)) + "-" +
		string(rune('0'+(seq/10)%10)) + string(rune('0'+(seq/100)%10))
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- table-driven determinism suite ------------------------------------------

// faultKindCase drives one fault kind through the deterministic send schedule
// of TestDeterministicTraceAcrossShards. Kinds that rely on simulated time run
// under a manual clock: schedule-driven kinds (flaps) advance the clock
// between send batches, delay-driven kinds (slow nodes, WAN classes, jitter,
// Options.Latency) hold every delayed message in the shard heaps until one
// final flush advance, so the delivery order is a pure function of the seed.
type faultKindCase struct {
	name    string
	manual  bool
	latency time.Duration
	install func(n *Network)
	// advanceEvery/advanceStep move a manual clock forward mid-schedule
	// (only safe for kinds that install no delay rules: delayed deliveries
	// racing live sends would interleave nondeterministically).
	advanceEvery int
	advanceStep  time.Duration
	// probabilistic marks kinds whose trace should change with the seed.
	probabilistic bool
}

func faultKindCases() []faultKindCase {
	return []faultKindCase{
		{
			name: "slow-nodes", manual: true, probabilistic: true,
			install: func(n *Network) {
				n.SetNodeDelay("d0:1", 30*time.Millisecond)
				n.SetNodeDelay("d3:1", 70*time.Millisecond)
				n.SetEgressLoss("s0:1", 0.3)
			},
		},
		{
			name: "oneway-links", probabilistic: true,
			install: func(n *Network) {
				n.BlockDirectional("s0:1", "d0:1")
				n.BlockDirectional("s1:1", "d2:1")
				n.SetEgressLoss("s2:1", 0.3)
			},
		},
		{
			name: "flap", manual: true, probabilistic: true,
			advanceEvery: 50, advanceStep: 5 * time.Millisecond,
			install: func(n *Network) {
				n.SetFlap("d1:1", FlapSpec{Loss: 1.0, Ingress: true, On: 30 * time.Millisecond, Off: 30 * time.Millisecond})
				n.SetFlap("s2:1", FlapSpec{Loss: 1.0, On: 20 * time.Millisecond, Off: 40 * time.Millisecond})
				n.SetEgressLoss("s0:1", 0.3)
			},
		},
		{
			name: "asym-partition", probabilistic: true,
			install: func(n *Network) {
				n.SetAsymmetricPartition("d0:1", "d1:1", "s0:1")
				n.SetIngressLoss("d2:1", 0.4)
			},
		},
		{
			name: "wan-zones", manual: true,
			install: func(n *Network) {
				n.SetLatencyModel(ZoneLatency(3, 2*time.Millisecond, 20*time.Millisecond))
			},
		},
		{
			name: "dup-reorder", manual: true, probabilistic: true,
			install: func(n *Network) {
				n.SetChaos(ChaosSpec{Duplicate: 0.3, Reorder: 0.5, MaxJitter: 50 * time.Millisecond})
			},
		},
		{
			name: "best-effort-latency", manual: true,
			latency: 10 * time.Millisecond,
			install: func(n *Network) {},
		},
	}
}

// faultTraceResult is everything a fault-kind replay must reproduce.
type faultTraceResult struct {
	traces map[node.Addr][]string
	total  int64
	alerts int64
	dups   int64
}

// runFaultKindTrace runs the fixed send schedule under tc's fault kind.
func runFaultKindTrace(t *testing.T, seed int64, tc faultKindCase) faultTraceResult {
	t.Helper()
	opts := Options{Seed: seed, Shards: 4, Latency: tc.latency}
	var clk *simclock.Manual
	if tc.manual {
		clk = simclock.NewManual(time.Unix(0, 0))
		opts.Clock = clk
	}
	net := New(opts)
	defer net.Close()
	dsts := []node.Addr{"d0:1", "d1:1", "d2:1", "d3:1", "d4:1", "d5:1"}
	handlers := make(map[node.Addr]*traceHandler, len(dsts))
	for _, d := range dsts {
		h := &traceHandler{}
		handlers[d] = h
		if err := net.Register(d, h); err != nil {
			t.Fatal(err)
		}
	}
	srcs := []node.Addr{"s0:1", "s1:1", "s2:1"}
	tc.install(net)
	clients := make([]transport.Client, len(srcs))
	for i, s := range srcs {
		clients[i] = net.Client(s)
	}
	const sends = 600
	for i := 0; i < sends; i++ {
		req := &remoting.Request{Alerts: &remoting.BatchedAlertMessage{
			Sender: srcs[i%len(srcs)], Seq: uint64(i),
		}}
		clients[i%len(clients)].SendBestEffort(dsts[i%len(dsts)], req)
		if clk != nil && tc.advanceEvery > 0 && (i+1)%tc.advanceEvery == 0 {
			clk.Advance(tc.advanceStep)
		}
	}
	if clk != nil {
		// Flush the delay heaps: one advance far past every pending deadline.
		clk.Advance(time.Second)
	}
	// Drain until every trace stops growing for several consecutive polls.
	var last, stable int
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, h := range handlers {
			total += len(h.snapshot())
		}
		if total == last && total > 0 {
			if stable++; stable >= 5 {
				break
			}
		} else {
			stable = 0
		}
		last = total
		time.Sleep(20 * time.Millisecond)
	}
	res := faultTraceResult{
		traces: make(map[node.Addr][]string, len(dsts)),
		total:  net.TotalMessages(),
		alerts: net.MessageCount((&remoting.Request{Alerts: &remoting.BatchedAlertMessage{}}).Kind()),
		dups:   net.Duplicates(),
	}
	for d, h := range handlers {
		res.traces[d] = h.snapshot()
	}
	return res
}

func sameFaultTrace(a, b faultTraceResult) bool {
	if a.total != b.total || a.alerts != b.alerts || a.dups != b.dups || len(a.traces) != len(b.traces) {
		return false
	}
	for d, ta := range a.traces {
		tb := b.traces[d]
		if len(ta) != len(tb) {
			return false
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return false
			}
		}
	}
	return true
}

// TestDeterministicFaultKindTraces extends TestDeterministicTraceAcrossShards
// into a table over every composable fault kind: replaying a kind twice from
// the same seed must reproduce the per-kind message counts, the duplicate
// count, and each destination's exact delivery trace; kinds with a
// probabilistic component must diverge under a different seed.
func TestDeterministicFaultKindTraces(t *testing.T) {
	for _, tc := range faultKindCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a := runFaultKindTrace(t, 4242, tc)
			b := runFaultKindTrace(t, 4242, tc)
			if !sameFaultTrace(a, b) {
				t.Fatalf("same seed diverged for %s (totals %d/%d, alerts %d/%d, dups %d/%d)",
					tc.name, a.total, b.total, a.alerts, b.alerts, a.dups, b.dups)
			}
			if a.total == 0 {
				t.Fatalf("no messages observed for %s", tc.name)
			}
			if tc.probabilistic {
				c := runFaultKindTrace(t, 777, tc)
				if sameFaultTrace(a, c) {
					t.Fatalf("different seeds produced identical traces for %s", tc.name)
				}
			}
		})
	}
}
