package simnet

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// echoHandler responds to probes and counts alerts.
type echoHandler struct {
	mu     sync.Mutex
	probes int
	alerts int
}

func (h *echoHandler) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case req.Probe != nil:
		h.probes++
		return &remoting.Response{Probe: &remoting.ProbeResponse{Status: remoting.NodeOK}}, nil
	case req.Alerts != nil:
		h.alerts++
		return remoting.AckResponse(), nil
	}
	return remoting.AckResponse(), nil
}

func (h *echoHandler) alertCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alerts
}

func probe(from node.Addr) *remoting.Request {
	return &remoting.Request{Probe: &remoting.ProbeRequest{Sender: from}}
}

func TestSendDeliversAndResponds(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	if err := n.Register("b:1", h); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if resp.Probe == nil || resp.Probe.Status != remoting.NodeOK {
		t.Fatalf("unexpected response %+v", resp)
	}
}

func TestSendToUnknownAddressFails(t *testing.T) {
	n := New(Options{Seed: 1})
	_, err := n.Client("a:1").Send(context.Background(), "nowhere:1", probe("a:1"))
	if err != transport.ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestCrashMakesNodeUnreachable(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.Crash("b:1")
	if n.Registered("b:1") {
		t.Fatal("crashed node still registered")
	}
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("send to crashed node should fail")
	}
}

func TestEgressLossDropsAllTraffic(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetEgressLoss("a:1", 1.0)
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("send should fail with 100% egress loss at sender")
	}
	n.SetEgressLoss("a:1", 0)
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("send should succeed after clearing loss: %v", err)
	}
}

func TestIngressLossAffectsResponsePath(t *testing.T) {
	// One-way partition: node a's ingress is blocked. a can still deliver
	// requests to b, but never hears the response (like iptables INPUT drop).
	n := New(Options{Seed: 1})
	ha, hb := &echoHandler{}, &echoHandler{}
	n.Register("a:1", ha)
	n.Register("b:1", hb)
	n.SetIngressLoss("a:1", 1.0)

	// a -> b request is delivered (b handles it) but the response times out.
	_, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	if err != transport.ErrTimeout {
		t.Fatalf("expected response-path timeout, got %v", err)
	}
	hb.mu.Lock()
	probes := hb.probes
	hb.mu.Unlock()
	if probes != 1 {
		t.Fatalf("request should still have been delivered to b, probes=%d", probes)
	}
	// b -> a is fully blocked.
	if _, err := n.Client("b:1").Send(context.Background(), "a:1", probe("b:1")); err == nil {
		t.Fatal("b should not reach a while a's ingress is blocked")
	}
}

func TestPartialLossRate(t *testing.T) {
	n := New(Options{Seed: 42})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetEgressLoss("a:1", 0.8)
	cl := n.Client("a:1")
	ok := 0
	const attempts = 1000
	for i := 0; i < attempts; i++ {
		if _, err := cl.Send(context.Background(), "b:1", probe("a:1")); err == nil {
			ok++
		}
	}
	// With 80% loss the success rate should be near 20%.
	if ok < attempts*10/100 || ok > attempts*30/100 {
		t.Errorf("success count %d out of %d not consistent with 80%% loss", ok, attempts)
	}
}

func TestBlockPairAndUnblock(t *testing.T) {
	n := New(Options{Seed: 1})
	ha, hb := &echoHandler{}, &echoHandler{}
	n.Register("a:1", ha)
	n.Register("b:1", hb)
	n.BlockPair("a:1", "b:1")
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("a->b should be blocked")
	}
	if _, err := n.Client("b:1").Send(context.Background(), "a:1", probe("b:1")); err == nil {
		t.Fatal("b->a should be blocked")
	}
	n.UnblockPair("a:1", "b:1")
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("a->b should work after unblock: %v", err)
	}
}

func TestBlockDirectionalOnly(t *testing.T) {
	n := New(Options{Seed: 1})
	ha, hb := &echoHandler{}, &echoHandler{}
	n.Register("a:1", ha)
	n.Register("b:1", hb)
	n.BlockDirectional("a:1", "b:1")
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("a->b should be blocked")
	}
	// b->a request goes through, and the response path a->b... the response
	// travels from a (handler side) back to b, i.e. direction a->b is blocked,
	// so this should time out on the response path.
	if _, err := n.Client("b:1").Send(context.Background(), "a:1", probe("b:1")); err != transport.ErrTimeout {
		t.Fatalf("expected timeout due to blocked response path, got %v", err)
	}
}

func TestSendBestEffortDelivered(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	cl := n.Client("a:1")
	for i := 0; i < 10; i++ {
		cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1"}})
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.alertCount() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.alertCount() != 10 {
		t.Fatalf("delivered %d best-effort messages, want 10", h.alertCount())
	}
}

func TestSendBestEffortToBlockedOrUnknownIsSilent(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.BlockDirectional("a:1", "b:1")
	cl := n.Client("a:1")
	cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{}})
	cl.SendBestEffort("nowhere:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{}})
	time.Sleep(50 * time.Millisecond)
	if h.alertCount() != 0 {
		t.Fatal("blocked best-effort message was delivered")
	}
}

func TestClearFaults(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetEgressLoss("a:1", 1.0)
	n.SetIngressLoss("b:1", 1.0)
	n.BlockPair("a:1", "b:1")
	n.ClearFaults()
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("send should succeed after ClearFaults: %v", err)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	n := New(Options{Seed: 1, AccountBandwidth: true})
	h := &echoHandler{}
	n.Register("b:1", h)
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatal(err)
	}
	sent := n.Bandwidth("a:1").SentRates()
	recv := n.Bandwidth("b:1").ReceivedRates()
	if len(sent) == 0 || sent[0] <= 0 {
		t.Error("sender bytes not accounted")
	}
	if len(recv) == 0 || recv[0] <= 0 {
		t.Error("receiver bytes not accounted")
	}
}

func TestReRegisterReplacesHandler(t *testing.T) {
	n := New(Options{Seed: 1})
	h1, h2 := &echoHandler{}, &echoHandler{}
	n.Register("b:1", h1)
	n.Register("b:1", h2)
	n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	h2.mu.Lock()
	defer h2.mu.Unlock()
	if h2.probes != 1 {
		t.Error("second handler should receive traffic after re-registration")
	}
}

func TestNumRegistered(t *testing.T) {
	n := New(Options{Seed: 1})
	n.Register("a:1", &echoHandler{})
	n.Register("b:1", &echoHandler{})
	if n.NumRegistered() != 2 {
		t.Fatalf("NumRegistered = %d, want 2", n.NumRegistered())
	}
	n.Deregister("a:1")
	if n.NumRegistered() != 1 {
		t.Fatalf("NumRegistered = %d, want 1", n.NumRegistered())
	}
}

func TestMessageCounts(t *testing.T) {
	net := New(Options{Seed: 1})
	if err := net.Register("b:1", transport.HandlerFunc(
		func(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
			return remoting.AckResponse(), nil
		})); err != nil {
		t.Fatal(err)
	}
	cl := net.Client("a:1")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := cl.Send(ctx, "b:1", &remoting.Request{Probe: &remoting.ProbeRequest{Sender: "a:1"}}); err != nil {
		t.Fatal(err)
	}
	cl.SendBestEffort("b:1", &remoting.Request{Leave: &remoting.LeaveMessage{Sender: "a:1"}})
	// Sends to unreachable destinations still count as send attempts.
	cl.SendBestEffort("nowhere:1", &remoting.Request{Leave: &remoting.LeaveMessage{Sender: "a:1"}})
	if got := net.MessageCount("probe"); got != 1 {
		t.Errorf("MessageCount(probe) = %d, want 1", got)
	}
	if got := net.MessageCount("leave"); got != 2 {
		t.Errorf("MessageCount(leave) = %d, want 2", got)
	}
	if got := net.TotalMessages(); got != 3 {
		t.Errorf("TotalMessages = %d, want 3", got)
	}
}
