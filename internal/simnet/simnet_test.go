package simnet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// echoHandler responds to probes and counts alerts.
type echoHandler struct {
	mu     sync.Mutex
	probes int
	alerts int
}

func (h *echoHandler) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case req.Probe != nil:
		h.probes++
		return &remoting.Response{Probe: &remoting.ProbeResponse{Status: remoting.NodeOK}}, nil
	case req.Alerts != nil:
		h.alerts++
		return remoting.AckResponse(), nil
	}
	return remoting.AckResponse(), nil
}

func (h *echoHandler) alertCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alerts
}

func probe(from node.Addr) *remoting.Request {
	return &remoting.Request{Probe: &remoting.ProbeRequest{Sender: from}}
}

func TestSendDeliversAndResponds(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	if err := n.Register("b:1", h); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if resp.Probe == nil || resp.Probe.Status != remoting.NodeOK {
		t.Fatalf("unexpected response %+v", resp)
	}
}

func TestSendToUnknownAddressFails(t *testing.T) {
	n := New(Options{Seed: 1})
	_, err := n.Client("a:1").Send(context.Background(), "nowhere:1", probe("a:1"))
	if err != transport.ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestCrashMakesNodeUnreachable(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.Crash("b:1")
	if n.Registered("b:1") {
		t.Fatal("crashed node still registered")
	}
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("send to crashed node should fail")
	}
}

func TestEgressLossDropsAllTraffic(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetEgressLoss("a:1", 1.0)
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("send should fail with 100% egress loss at sender")
	}
	n.SetEgressLoss("a:1", 0)
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("send should succeed after clearing loss: %v", err)
	}
}

func TestIngressLossAffectsResponsePath(t *testing.T) {
	// One-way partition: node a's ingress is blocked. a can still deliver
	// requests to b, but never hears the response (like iptables INPUT drop).
	n := New(Options{Seed: 1})
	ha, hb := &echoHandler{}, &echoHandler{}
	n.Register("a:1", ha)
	n.Register("b:1", hb)
	n.SetIngressLoss("a:1", 1.0)

	// a -> b request is delivered (b handles it) but the response times out.
	_, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	if err != transport.ErrTimeout {
		t.Fatalf("expected response-path timeout, got %v", err)
	}
	hb.mu.Lock()
	probes := hb.probes
	hb.mu.Unlock()
	if probes != 1 {
		t.Fatalf("request should still have been delivered to b, probes=%d", probes)
	}
	// b -> a is fully blocked.
	if _, err := n.Client("b:1").Send(context.Background(), "a:1", probe("b:1")); err == nil {
		t.Fatal("b should not reach a while a's ingress is blocked")
	}
}

func TestPartialLossRate(t *testing.T) {
	n := New(Options{Seed: 42})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetEgressLoss("a:1", 0.8)
	cl := n.Client("a:1")
	ok := 0
	const attempts = 1000
	for i := 0; i < attempts; i++ {
		if _, err := cl.Send(context.Background(), "b:1", probe("a:1")); err == nil {
			ok++
		}
	}
	// With 80% loss the success rate should be near 20%.
	if ok < attempts*10/100 || ok > attempts*30/100 {
		t.Errorf("success count %d out of %d not consistent with 80%% loss", ok, attempts)
	}
}

func TestBlockPairAndUnblock(t *testing.T) {
	n := New(Options{Seed: 1})
	ha, hb := &echoHandler{}, &echoHandler{}
	n.Register("a:1", ha)
	n.Register("b:1", hb)
	n.BlockPair("a:1", "b:1")
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("a->b should be blocked")
	}
	if _, err := n.Client("b:1").Send(context.Background(), "a:1", probe("b:1")); err == nil {
		t.Fatal("b->a should be blocked")
	}
	n.UnblockPair("a:1", "b:1")
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("a->b should work after unblock: %v", err)
	}
}

func TestBlockDirectionalOnly(t *testing.T) {
	n := New(Options{Seed: 1})
	ha, hb := &echoHandler{}, &echoHandler{}
	n.Register("a:1", ha)
	n.Register("b:1", hb)
	n.BlockDirectional("a:1", "b:1")
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("a->b should be blocked")
	}
	// b->a request goes through, and the response path a->b... the response
	// travels from a (handler side) back to b, i.e. direction a->b is blocked,
	// so this should time out on the response path.
	if _, err := n.Client("b:1").Send(context.Background(), "a:1", probe("b:1")); err != transport.ErrTimeout {
		t.Fatalf("expected timeout due to blocked response path, got %v", err)
	}
}

func TestSendBestEffortDelivered(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	cl := n.Client("a:1")
	for i := 0; i < 10; i++ {
		cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1"}})
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.alertCount() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.alertCount() != 10 {
		t.Fatalf("delivered %d best-effort messages, want 10", h.alertCount())
	}
}

func TestSendBestEffortToBlockedOrUnknownIsSilent(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.BlockDirectional("a:1", "b:1")
	cl := n.Client("a:1")
	cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{}})
	cl.SendBestEffort("nowhere:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{}})
	time.Sleep(50 * time.Millisecond)
	if h.alertCount() != 0 {
		t.Fatal("blocked best-effort message was delivered")
	}
}

func TestClearFaults(t *testing.T) {
	n := New(Options{Seed: 1})
	h := &echoHandler{}
	n.Register("b:1", h)
	n.SetEgressLoss("a:1", 1.0)
	n.SetIngressLoss("b:1", 1.0)
	n.BlockPair("a:1", "b:1")
	n.ClearFaults()
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("send should succeed after ClearFaults: %v", err)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	n := New(Options{Seed: 1, AccountBandwidth: true})
	h := &echoHandler{}
	n.Register("b:1", h)
	if _, err := n.Client("a:1").Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatal(err)
	}
	sent := n.Bandwidth("a:1").SentRates()
	recv := n.Bandwidth("b:1").ReceivedRates()
	if len(sent) == 0 || sent[0] <= 0 {
		t.Error("sender bytes not accounted")
	}
	if len(recv) == 0 || recv[0] <= 0 {
		t.Error("receiver bytes not accounted")
	}
}

func TestReRegisterReplacesHandler(t *testing.T) {
	n := New(Options{Seed: 1})
	h1, h2 := &echoHandler{}, &echoHandler{}
	n.Register("b:1", h1)
	n.Register("b:1", h2)
	n.Client("a:1").Send(context.Background(), "b:1", probe("a:1"))
	h2.mu.Lock()
	defer h2.mu.Unlock()
	if h2.probes != 1 {
		t.Error("second handler should receive traffic after re-registration")
	}
}

func TestNumRegistered(t *testing.T) {
	n := New(Options{Seed: 1})
	n.Register("a:1", &echoHandler{})
	n.Register("b:1", &echoHandler{})
	if n.NumRegistered() != 2 {
		t.Fatalf("NumRegistered = %d, want 2", n.NumRegistered())
	}
	n.Deregister("a:1")
	if n.NumRegistered() != 1 {
		t.Fatalf("NumRegistered = %d, want 1", n.NumRegistered())
	}
}

// traceHandler records the (sender, seq) of every delivered alert batch.
type traceHandler struct {
	mu    sync.Mutex
	trace []string
}

func (h *traceHandler) HandleRequest(_ context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
	h.mu.Lock()
	h.trace = append(h.trace, string(from)+"#"+string(rune('0'+req.Alerts.Seq%10))+"-"+
		string(rune('0'+(req.Alerts.Seq/10)%10))+string(rune('0'+(req.Alerts.Seq/100)%10)))
	h.mu.Unlock()
	return remoting.AckResponse(), nil
}

func (h *traceHandler) snapshot() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.trace...)
}

// runTrace drives one deterministic send schedule through a freshly seeded
// network and returns the per-destination delivery traces.
func runTrace(t *testing.T, seed int64) map[node.Addr][]string {
	t.Helper()
	net := New(Options{Seed: seed, Shards: 4})
	defer net.Close()
	dsts := []node.Addr{"d0:1", "d1:1", "d2:1", "d3:1", "d4:1", "d5:1"}
	handlers := make(map[node.Addr]*traceHandler, len(dsts))
	for _, d := range dsts {
		h := &traceHandler{}
		handlers[d] = h
		if err := net.Register(d, h); err != nil {
			t.Fatal(err)
		}
	}
	srcs := []node.Addr{"s0:1", "s1:1", "s2:1"}
	for _, s := range srcs {
		net.SetEgressLoss(s, 0.3)
	}
	net.SetIngressLoss("d1:1", 0.5)
	clients := make([]transport.Client, len(srcs))
	for i, s := range srcs {
		clients[i] = net.Client(s)
	}
	const sends = 600
	for i := 0; i < sends; i++ {
		req := &remoting.Request{Alerts: &remoting.BatchedAlertMessage{
			Sender: srcs[i%len(srcs)], Seq: uint64(i),
		}}
		clients[i%len(clients)].SendBestEffort(dsts[i%len(dsts)], req)
	}
	// Drain: wait until every trace stops growing for several consecutive
	// polls (a single quiet poll could be a scheduler hiccup on a loaded
	// machine, truncating the trace early).
	var last, stable int
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, h := range handlers {
			total += len(h.snapshot())
		}
		if total == last && total > 0 {
			if stable++; stable >= 5 {
				break
			}
		} else {
			stable = 0
		}
		last = total
		time.Sleep(20 * time.Millisecond)
	}
	out := make(map[node.Addr][]string, len(dsts))
	for d, h := range handlers {
		out[d] = h.snapshot()
	}
	return out
}

// TestDeterministicTraceAcrossShards asserts the sharded network is
// reproducible: for a fixed seed and send schedule, the same messages survive
// the loss rules and each destination observes them in the same order. Drop
// decisions come from per-shard RNGs, so a shared seed fully determines the
// trace even though delivery itself runs on concurrent shard workers.
func TestDeterministicTraceAcrossShards(t *testing.T) {
	a := runTrace(t, 1234)
	b := runTrace(t, 1234)
	if len(a) != len(b) {
		t.Fatalf("trace maps differ in size: %d vs %d", len(a), len(b))
	}
	delivered := 0
	for d, ta := range a {
		tb := b[d]
		if len(ta) != len(tb) {
			t.Fatalf("destination %s delivered %d vs %d messages across identically seeded runs", d, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("destination %s trace diverges at %d: %q vs %q", d, i, ta[i], tb[i])
			}
		}
		delivered += len(ta)
	}
	if delivered == 0 || delivered == 600 {
		t.Fatalf("delivered %d of 600: loss rules should drop some but not all", delivered)
	}
	// A different seed must produce a different trace (otherwise the assertion
	// above is vacuous).
	c := runTrace(t, 99)
	same := true
	for d, ta := range a {
		tc := c[d]
		if len(ta) != len(tc) {
			same = false
			break
		}
		for i := range ta {
			if ta[i] != tc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// nopHandler acks without allocating.
type nopHandler struct {
	calls atomic.Int64
	resp  *remoting.Response
}

func (h *nopHandler) HandleRequest(context.Context, node.Addr, *remoting.Request) (*remoting.Response, error) {
	h.calls.Add(1)
	return h.resp, nil
}

// TestSendBestEffortZeroAlloc asserts the steady-state best-effort path —
// counter bump, fault fast path, endpoint lookup, pooled event, shard queue —
// performs no per-message heap allocation.
func TestSendBestEffortZeroAlloc(t *testing.T) {
	net := New(Options{Seed: 1, Shards: 2})
	defer net.Close()
	h := &nopHandler{resp: remoting.AckResponse()}
	if err := net.Register("b:1", h); err != nil {
		t.Fatal(err)
	}
	cl := net.Client("a:1")
	req := &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1", Seq: 1}}
	// Warm up: grow the shard ring and stock the event pool beyond the
	// per-destination backlog bound, then let the worker drain.
	for i := 0; i < 8192; i++ {
		cl.SendBestEffort("b:1", req)
	}
	deadline := time.Now().Add(5 * time.Second)
	var drained int64
	for time.Now().Before(deadline) {
		c := h.calls.Load()
		if c == drained && c > 0 {
			break
		}
		drained = c
		time.Sleep(10 * time.Millisecond)
	}
	allocs := testing.AllocsPerRun(4000, func() {
		cl.SendBestEffort("b:1", req)
	})
	if allocs >= 1 {
		t.Errorf("SendBestEffort allocates %.2f times per message, want ~0 (pooled events)", allocs)
	}
}

// TestCloseStopsDelivery verifies Close drops queued traffic, keeps sync
// Sends working, and makes further best-effort sends harmless.
func TestCloseStopsDelivery(t *testing.T) {
	net := New(Options{Seed: 1})
	h := &echoHandler{}
	net.Register("b:1", h)
	net.Close()
	cl := net.Client("a:1")
	cl.SendBestEffort("b:1", &remoting.Request{Alerts: &remoting.BatchedAlertMessage{}})
	if _, err := cl.Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("synchronous Send should still work after Close: %v", err)
	}
	net.Close() // idempotent
}

// TestConcurrentFaultMutation races loss updates against ClearFaults and
// traffic (the flip-flop fault injector does exactly this) and then checks
// the rule accounting is still exact: after the dust settles, installed rules
// must drop traffic and cleared rules must let it through (i.e. the no-fault
// fast path did not get stuck on a leaked rule count).
func TestConcurrentFaultMutation(t *testing.T) {
	net := New(Options{Seed: 1, Shards: 2})
	defer net.Close()
	net.Register("b:1", &echoHandler{})
	cl := net.Client("a:1")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, mutate := range []func(){
		func() { net.SetIngressLoss("b:1", 1.0); net.SetIngressLoss("b:1", 0) },
		func() { net.SetEgressLoss("a:1", 0.5); net.SetEgressLoss("a:1", 0) },
		func() { net.ClearFaults() },
		func() { cl.SendBestEffort("b:1", &remoting.Request{Leave: &remoting.LeaveMessage{Sender: "a:1"}}) },
	} {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}(mutate)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	net.ClearFaults()
	if _, err := cl.Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("send should succeed with all faults cleared: %v", err)
	}
	net.SetEgressLoss("a:1", 1.0)
	if _, err := cl.Send(context.Background(), "b:1", probe("a:1")); err == nil {
		t.Fatal("send should fail with 100% egress loss installed after the churn")
	}
	net.SetEgressLoss("a:1", 0)
	if _, err := cl.Send(context.Background(), "b:1", probe("a:1")); err != nil {
		t.Fatalf("send should succeed after clearing the rule: %v", err)
	}
}

func TestMessageCounts(t *testing.T) {
	net := New(Options{Seed: 1})
	if err := net.Register("b:1", transport.HandlerFunc(
		func(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
			return remoting.AckResponse(), nil
		})); err != nil {
		t.Fatal(err)
	}
	cl := net.Client("a:1")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := cl.Send(ctx, "b:1", &remoting.Request{Probe: &remoting.ProbeRequest{Sender: "a:1"}}); err != nil {
		t.Fatal(err)
	}
	cl.SendBestEffort("b:1", &remoting.Request{Leave: &remoting.LeaveMessage{Sender: "a:1"}})
	// Sends to unreachable destinations still count as send attempts.
	cl.SendBestEffort("nowhere:1", &remoting.Request{Leave: &remoting.LeaveMessage{Sender: "a:1"}})
	if got := net.MessageCount("probe"); got != 1 {
		t.Errorf("MessageCount(probe) = %d, want 1", got)
	}
	if got := net.MessageCount("leave"); got != 2 {
		t.Errorf("MessageCount(leave) = %d, want 2", got)
	}
	if got := net.TotalMessages(); got != 3 {
		t.Errorf("TotalMessages = %d, want 3", got)
	}
}
