// Composable fault kinds beyond loss/blackhole/crash: slow-but-alive nodes
// (per-node delay injection), WAN-style per-link latency classes, flapping
// rules that toggle on a simclock schedule, asymmetric partitions, and
// best-effort delivery chaos (duplication and reordering). Every kind is
// installable and removable at runtime, sharded like the loss rules, and
// seed-deterministic: probabilistic decisions draw from the per-shard RNGs in
// send order, and time-driven kinds (flap schedules, delays) read only the
// network's simclock, so a manual clock replays them exactly.
//
// Delayed delivery rides a per-shard min-heap drained by a dedicated pump
// goroutine: events due in the future wait in the heap ordered by
// (due, sequence) and are handed to the shard's ordinary delivery queue once
// the clock passes their deadline. This is also what makes Options.Latency
// apply to best-effort traffic, not just synchronous request/response.
package simnet

import (
	"sync"
	"time"

	"repro/internal/node"
)

// LatencyModel assigns a one-way propagation delay to a (src, dst) link.
// Models must be pure functions of the addresses so that runs stay
// reproducible; see ZoneLatency for the WAN-class implementation.
type LatencyModel func(src, dst node.Addr) time.Duration

// latencyModelBox wraps a LatencyModel for atomic storage (atomic.Pointer
// needs a concrete type, and func types cannot be pointed at directly).
type latencyModelBox struct{ model LatencyModel }

// addrHash is the FNV-1a hash simnet uses everywhere address-keyed
// partitioning is needed (delivery shards, latency zones).
func addrHash(addr node.Addr) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(addr); i++ {
		h ^= uint32(addr[i])
		h *= prime32
	}
	return h
}

// ZoneLatency models a WAN deployment: every address hashes into one of
// `zones` zones; links inside a zone cost `intra` one-way, links across zones
// cost `inter`. Deterministic in the addresses, so identically seeded runs
// see identical link delays.
func ZoneLatency(zones int, intra, inter time.Duration) LatencyModel {
	if zones < 1 {
		zones = 1
	}
	return func(src, dst node.Addr) time.Duration {
		if addrHash(src)%uint32(zones) == addrHash(dst)%uint32(zones) {
			return intra
		}
		return inter
	}
}

// SetLatencyModel installs (or, with nil, removes) a per-link latency model.
// The model applies on top of Options.Latency and any per-node delays, to
// synchronous and best-effort traffic alike.
func (n *Network) SetLatencyModel(m LatencyModel) {
	if m == nil {
		if n.latencyModel.Swap(nil) != nil {
			n.delayRules.Add(-1)
		}
		return
	}
	if n.latencyModel.Swap(&latencyModelBox{model: m}) == nil {
		n.delayRules.Add(1)
	}
}

// SetNodeDelay makes a node slow-but-alive: every message it sends or
// receives (requests, responses, and best-effort alike) takes an extra d
// one-way. Unlike loss rules the node stays perfectly reachable — the gray
// failure the paper's multi-process cut detection is argued to tolerate.
// A non-positive d removes the rule.
func (n *Network) SetNodeDelay(addr node.Addr, d time.Duration) {
	s := n.shardFor(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, had := s.delays[addr]
	if d <= 0 {
		if had {
			delete(s.delays, addr)
			n.delayRules.Add(-1)
		}
		return
	}
	s.delays[addr] = d
	if !had {
		n.delayRules.Add(1)
	}
}

// extraDelay sums the installed delay rules for one direction of a link:
// per-node delays of both ends plus the latency model's link cost. With no
// rules installed it is a single atomic load.
func (n *Network) extraDelay(src, dst node.Addr) time.Duration {
	if n.delayRules.Load() == 0 {
		return 0
	}
	var d time.Duration
	ss := n.shardFor(src)
	ss.mu.RLock()
	d += ss.delays[src]
	ss.mu.RUnlock()
	ds := n.shardFor(dst)
	ds.mu.RLock()
	d += ds.delays[dst]
	ds.mu.RUnlock()
	if box := n.latencyModel.Load(); box != nil {
		d += box.model(src, dst)
	}
	return d
}

// --- flapping faults ---------------------------------------------------------

// FlapSpec describes a loss rule that toggles on a fixed simclock schedule:
// starting from installation the rule is active for On, inactive for Off,
// and repeats. Loss is the drop probability while active (1.0 = total
// partition, the Figure 9 flip-flop); Ingress selects which side of the
// node's traffic it applies to.
type FlapSpec struct {
	Loss    float64
	Ingress bool
	On      time.Duration
	Off     time.Duration
}

// flapRule is an installed FlapSpec plus its schedule origin.
type flapRule struct {
	FlapSpec
	start time.Time
}

// active evaluates the schedule at the given instant. The rule is evaluated
// lazily at message time — no goroutine toggles state — so the on/off
// boundary is exact in simulated time and replays deterministically under a
// manual clock.
func (r flapRule) active(now time.Time) bool {
	cycle := r.On + r.Off
	if cycle <= 0 {
		return true
	}
	phase := now.Sub(r.start) % cycle
	return phase < r.On
}

// SetFlap installs a flapping loss rule for addr, replacing any previous
// flap on that address. The schedule starts at the network clock's current
// time. A non-positive Loss removes the rule (as does ClearFlap).
func (n *Network) SetFlap(addr node.Addr, spec FlapSpec) {
	if spec.Loss <= 0 {
		n.ClearFlap(addr)
		return
	}
	rule := flapRule{FlapSpec: spec, start: n.clock.Now()}
	s := n.shardFor(addr)
	s.mu.Lock()
	_, had := s.flaps[addr]
	s.flaps[addr] = rule
	s.mu.Unlock()
	if !had {
		n.flapCount.Add(1)
		n.faultRules.Add(1)
	}
}

// ClearFlap removes addr's flapping rule.
func (n *Network) ClearFlap(addr node.Addr) {
	s := n.shardFor(addr)
	s.mu.Lock()
	_, had := s.flaps[addr]
	if had {
		delete(s.flaps, addr)
	}
	s.mu.Unlock()
	if had {
		n.flapCount.Add(-1)
		n.faultRules.Add(-1)
	}
}

// --- asymmetric partitions ---------------------------------------------------

// asymPartition is an installed asymmetric partition: the deaf set hears
// only itself while its own traffic still reaches everyone.
type asymPartition struct {
	deaf map[node.Addr]bool
}

// blocked reports whether the partition drops a src->dst packet.
func (p *asymPartition) blocked(src, dst node.Addr) bool {
	return p.deaf[dst] && !p.deaf[src]
}

// SetAsymmetricPartition makes the given members deaf: packets from outside
// the set to a member are dropped, while members keep sending (and keep
// hearing each other). This is the group generalization of a one-way link
// failure — to the rest of the cluster the deaf members look alive (their
// alerts, probes and gossip still arrive) while they themselves stop
// observing anyone. Installing a new partition replaces the previous one;
// an empty set clears it.
func (n *Network) SetAsymmetricPartition(deaf ...node.Addr) {
	if len(deaf) == 0 {
		n.ClearAsymmetricPartition()
		return
	}
	set := make(map[node.Addr]bool, len(deaf))
	for _, a := range deaf {
		set[a] = true
	}
	if n.partition.Swap(&asymPartition{deaf: set}) == nil {
		n.faultRules.Add(1)
	}
}

// ClearAsymmetricPartition removes the installed asymmetric partition.
func (n *Network) ClearAsymmetricPartition() {
	if n.partition.Swap(nil) != nil {
		n.faultRules.Add(-1)
	}
}

// --- best-effort chaos: duplication and reordering ---------------------------

// ChaosSpec configures best-effort delivery chaos. Each message is
// independently duplicated with probability Duplicate and delayed by a
// uniform random jitter in (0, MaxJitter] with probability Reorder;
// duplicates draw their own jitter. Jittered messages overtake each other in
// the per-shard delay heap, which is what produces reordering. Synchronous
// request/response traffic is unaffected — RPCs do not duplicate.
type ChaosSpec struct {
	Duplicate float64
	Reorder   float64
	MaxJitter time.Duration
}

// SetChaos installs best-effort chaos, replacing any previous spec. A spec
// with neither probability positive clears it.
func (n *Network) SetChaos(spec ChaosSpec) {
	if spec.Duplicate <= 0 && spec.Reorder <= 0 {
		n.ClearChaos()
		return
	}
	n.chaos.Store(&spec)
}

// ClearChaos removes the chaos spec.
func (n *Network) ClearChaos() {
	n.chaos.Store(nil)
}

// Duplicates returns how many best-effort messages the chaos layer has
// duplicated so far.
func (n *Network) Duplicates() int64 {
	return n.dups.Load()
}

// randJitter draws a uniform duration in (0, max] from the shard RNG (in
// send order, like the drop decisions, so traces stay seed-reproducible).
func (s *shard) randJitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return time.Duration(s.rng.Int63n(int64(max))) + 1
}

// --- delayed delivery --------------------------------------------------------

// delayedItem is one best-effort message waiting in a shard's delay heap.
type delayedItem struct {
	ev  *deliveryEvent
	due time.Time
	seq uint64
}

// delayQueue is a min-heap of delayed deliveries ordered by (due, seq): seq
// is assigned under the lock in push order, so messages with equal deadlines
// keep their send order and the drain order is fully determined by the
// deadlines — the reproducibility contract of the delay-based fault kinds.
type delayQueue struct {
	mu     sync.Mutex
	items  []delayedItem
	notify chan struct{}
	closed bool
	seq    uint64
}

func (q *delayQueue) init() { q.notify = make(chan struct{}, 1) }

// less orders the heap by deadline, then arrival.
func (q *delayQueue) less(i, j int) bool {
	if !q.items[i].due.Equal(q.items[j].due) {
		return q.items[i].due.Before(q.items[j].due)
	}
	return q.items[i].seq < q.items[j].seq
}

// push schedules ev for delivery at due. It reports false when the queue is
// already closed, in which case the caller still owns the event.
func (q *delayQueue) push(ev *deliveryEvent, due time.Time) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.seq++
	q.items = append(q.items, delayedItem{ev: ev, due: due, seq: q.seq})
	// Sift up.
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return true
}

// popLocked removes the heap head. Callers hold q.mu.
func (q *delayQueue) popLocked() delayedItem {
	head := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = delayedItem{}
	q.items = q.items[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.items) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return head
}

// close marks the queue closed, releases everything still waiting, and wakes
// the pump so it can exit.
func (q *delayQueue) close() {
	q.mu.Lock()
	q.closed = true
	items := q.items
	q.items = nil
	q.mu.Unlock()
	for _, it := range items {
		releaseEvent(it.ev)
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// delayPump drains one shard's delay heap: ready events move to the shard's
// ordinary delivery queue (preserving heap order), future events are waited
// out on the network clock, and a notify wake re-evaluates the head whenever
// a new (possibly earlier) event arrives.
func (n *Network) delayPump(s *shard) {
	defer n.workers.Done()
	q := &s.delayed
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return
		}
		if len(q.items) == 0 {
			q.mu.Unlock()
			<-q.notify
			continue
		}
		now := n.clock.Now()
		if head := q.items[0]; !head.due.After(now) {
			q.popLocked()
			q.mu.Unlock()
			s.queue.push(head.ev)
			continue
		}
		wait := q.items[0].due.Sub(now)
		q.mu.Unlock()
		select {
		case <-q.notify:
		case <-n.clock.After(wait):
		}
	}
}
