// Package simnet is an in-process network used to run whole clusters inside a
// single test or benchmark. It implements the transport interfaces and adds
// the fault-injection facilities needed to reproduce the paper's failure
// scenarios: probabilistic packet loss on a node's ingress or egress path
// (the iptables INPUT/OUTPUT rules of §7), directional blackholes between
// node pairs, crashes, and optional per-message latency. It can also account
// sent/received bytes per node to regenerate Table 2.
//
// Beyond the paper's faults, a composable fault-kind layer (faults.go) adds
// the gray-failure vocabulary of the adversarial scenario matrix: per-node
// delay injection (slow-but-alive processes), WAN-style per-link latency
// classes, loss rules that flap on a simclock schedule, asymmetric
// partitions, and best-effort duplication/reordering. All of them install
// and remove at runtime like the loss rules, shard the same way, and draw
// any randomness from the per-shard seeded RNGs so traces replay.
//
// The network is built to carry paper-scale fleets (1000–2000 nodes) in one
// process. Nothing funnels through a global dispatcher: endpoints, fault
// rules, RNG state, message counters and the best-effort delivery queues are
// all hash-partitioned into shards, so enqueue and delivery never serialize
// on a single lock or goroutine. Best-effort messages ride pooled delivery
// events (the same sync.Pool pattern as remoting's size buffers), which keeps
// steady-state delivery at zero allocations per message. When no fault rules
// are installed — the entire bootstrap workload — the per-message fault check
// reduces to two atomic loads.
//
// Call Close when done with a network to stop the per-shard delivery workers;
// fleets created by the harness do this automatically.
package simnet

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// deliveryEvent is a queued best-effort message awaiting dispatch to a
// handler. Events are recycled through a sync.Pool: at 1000+ nodes the
// best-effort path carries millions of messages per bootstrap, and a fresh
// allocation per message is what used to cap fleet sizes.
type deliveryEvent struct {
	from node.Addr
	req  *remoting.Request
	// st is the endpoint the message was addressed to when it was sent. The
	// worker delivers to this state's handler (not whatever is registered at
	// delivery time), so a deregistered endpoint's queued traffic is dropped
	// exactly as it was when each endpoint owned its inbox.
	st *endpointState
}

var eventPool = sync.Pool{New: func() any { return new(deliveryEvent) }}

// releaseEvent returns an undeliverable event's inbox slot and recycles it.
func releaseEvent(ev *deliveryEvent) {
	ev.st.pending.Add(-1)
	*ev = deliveryEvent{}
	eventPool.Put(ev)
}

// eventQueue is a growable FIFO ring of pooled delivery events. The overall
// backlog is bounded by the per-destination pending counters (the queue never
// holds more than the sum of every endpoint's inbox bound), so the ring only
// grows under genuine load and is reused afterwards; steady-state enqueue and
// dequeue allocate nothing.
type eventQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []*deliveryEvent
	head   int
	len    int
	closed bool
}

func (q *eventQueue) init() { q.cond = sync.NewCond(&q.mu) }

// push appends one event. It never blocks.
func (q *eventQueue) push(ev *deliveryEvent) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		releaseEvent(ev)
		return
	}
	if q.len == len(q.buf) {
		grown := make([]*deliveryEvent, max(64, 2*len(q.buf)))
		for i := 0; i < q.len; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.len)%len(q.buf)] = ev
	q.len++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop removes the oldest event, blocking until one is available or the queue
// is closed (nil return).
func (q *eventQueue) pop() *deliveryEvent {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.len == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.len == 0 {
		return nil
	}
	ev := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.len--
	return ev
}

// close wakes the worker and makes further pushes no-ops.
func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// endpointState is the simnet-side representation of one registered process.
type endpointState struct {
	handler transport.Handler
	// gone is set on deregistration; queued messages to a gone endpoint are
	// dropped at delivery time.
	gone atomic.Bool
	// pending counts queued-but-undelivered best-effort messages, bounding
	// each destination's backlog like a UDP socket buffer.
	pending atomic.Int32
}

// Options configure a simulated network.
type Options struct {
	// Clock supplies time for latency simulation and bandwidth accounting.
	Clock simclock.Clock
	// Seed makes drop decisions reproducible.
	Seed int64
	// Latency, if non-zero, is added to every message: each direction of a
	// synchronous request/response pays it (racing the caller's context
	// deadline), and best-effort messages are held in the destination
	// shard's delay heap until it elapses.
	Latency time.Duration
	// AccountBandwidth enables per-node byte accounting. It costs one sizing
	// pass per message (RequestSize/ResponseSize over the binary codec, with
	// a pooled scratch buffer), so it is off by default.
	AccountBandwidth bool
	// InboxSize bounds each node's best-effort message backlog; further
	// messages are dropped, mimicking UDP behaviour under load.
	InboxSize int
	// Shards is the number of delivery shards (rounded up to a power of two).
	// Endpoints, fault rules, counters and delivery queues are partitioned by
	// destination-address hash across shards, each drained by its own worker
	// goroutine. Defaults to 8.
	Shards int
}

// shard is one hash partition of the network: the endpoints whose addresses
// hash here, the fault rules keyed by those addresses, a private RNG for drop
// decisions, message counters, and the delivery queue + worker goroutine for
// best-effort traffic addressed to those endpoints.
type shard struct {
	mu          sync.RWMutex
	endpoints   map[node.Addr]*endpointState
	crashed     map[node.Addr]bool
	ingressLoss map[node.Addr]float64
	egressLoss  map[node.Addr]float64
	// blackholes for a (src, dst) pair live on src's shard.
	blackholes map[[2]node.Addr]bool
	// delays holds the slow-but-alive rules (per-node one-way delay).
	delays map[node.Addr]time.Duration
	// flaps holds the schedule-toggled loss rules, evaluated at message time.
	flaps map[node.Addr]flapRule

	rngMu sync.Mutex
	rng   *rand.Rand

	queue eventQueue
	// delayed holds best-effort messages whose delivery deadline lies in the
	// future (latency simulation, slow nodes, WAN classes, reorder jitter).
	delayed delayQueue

	msgTotal  atomic.Int64
	msgCounts sync.Map // request kind -> *atomic.Int64

	recMu     sync.Mutex
	recorders map[node.Addr]*metrics.BandwidthRecorder
}

// Network is a simulated cluster interconnect.
type Network struct {
	clock   simclock.Clock
	latency time.Duration
	start   time.Time

	shards    []*shard
	shardMask uint32

	// faultRules counts installed drop-deciding rules (loss, blackholes,
	// flaps, the asymmetric partition) and crashedCount the crash markers.
	// When both are zero — the entire bootstrap workload — the per-message
	// fault check short-circuits without touching any shard lock.
	faultRules   atomic.Int64
	crashedCount atomic.Int64
	// delayRules counts installed delay rules (per-node delays plus the
	// latency model); zero keeps the extra-delay lookup to one atomic load.
	// flapCount gates the clock read that flap evaluation needs.
	delayRules atomic.Int64
	flapCount  atomic.Int64

	latencyModel atomic.Pointer[latencyModelBox]
	partition    atomic.Pointer[asymPartition]
	chaos        atomic.Pointer[ChaosSpec]
	dups         atomic.Int64

	accounting bool
	inboxSize  int

	closeOnce sync.Once
	workers   sync.WaitGroup
}

// New creates a simulated network.
func New(opts Options) *Network {
	clk := opts.Clock
	if clk == nil {
		clk = simclock.NewReal()
	}
	inbox := opts.InboxSize
	if inbox <= 0 {
		inbox = 4096
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 8
	}
	// Round up to a power of two so routing is a mask, not a modulo.
	size := 1
	for size < shards {
		size <<= 1
	}
	n := &Network{
		clock:      clk,
		latency:    opts.Latency,
		start:      clk.Now(),
		shards:     make([]*shard, size),
		shardMask:  uint32(size - 1),
		accounting: opts.AccountBandwidth,
		inboxSize:  inbox,
	}
	for i := range n.shards {
		s := &shard{
			endpoints:   make(map[node.Addr]*endpointState),
			crashed:     make(map[node.Addr]bool),
			ingressLoss: make(map[node.Addr]float64),
			egressLoss:  make(map[node.Addr]float64),
			blackholes:  make(map[[2]node.Addr]bool),
			delays:      make(map[node.Addr]time.Duration),
			flaps:       make(map[node.Addr]flapRule),
			rng:         rand.New(rand.NewSource(opts.Seed + int64(i))),
			recorders:   make(map[node.Addr]*metrics.BandwidthRecorder),
		}
		s.queue.init()
		s.delayed.init()
		n.shards[i] = s
		n.workers.Add(2)
		go n.deliverLoop(s)
		go n.delayPump(s)
	}
	return n
}

// Close stops the delivery workers. Queued best-effort messages that have not
// been handed to a handler yet are dropped. Close is idempotent; using the
// network after Close only affects best-effort delivery (synchronous Sends
// still work, matching a network object kept alive by late Stop calls).
func (n *Network) Close() {
	n.closeOnce.Do(func() {
		for _, s := range n.shards {
			s.delayed.close()
			s.queue.close()
		}
	})
	n.workers.Wait()
}

// shardFor routes an address to its shard with an FNV-1a hash.
func (n *Network) shardFor(addr node.Addr) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(addr); i++ {
		h ^= uint32(addr[i])
		h *= prime32
	}
	return n.shards[h&n.shardMask]
}

// deliverLoop drains one shard's best-effort queue. Handlers are thin
// enqueuers (the membership engine applies messages on its own goroutine), so
// delivery passes a plain background context instead of allocating a
// per-message timeout: the simulated network owns no cancellation semantics.
//
// One worker serves all endpoints on the shard, so a handler that blocks
// (core's enqueue exerts backpressure when a node's event queue fills) stalls
// delivery to the shard's other endpoints until it drains — head-of-line
// blocking the old one-goroutine-per-endpoint design did not have, accepted
// here because per-endpoint dispatchers (N goroutines with N fixed-size
// inboxes) are what capped fleets at ~100 nodes. The engine side keeps the
// stall rare: past its queue's high-water mark it sheds inbound batches that
// are entirely stale instead of blocking the worker (core's enqueueBatch;
// core's TestShardWorkerSurvivesOverloadedEndpoint is the regression test),
// so only current-configuration traffic to a genuinely saturated node still
// blocks.
func (n *Network) deliverLoop(s *shard) {
	defer n.workers.Done()
	for {
		ev := s.queue.pop()
		if ev == nil {
			return
		}
		ev.st.pending.Add(-1)
		if !ev.st.gone.Load() {
			_, _ = ev.st.handler.HandleRequest(context.Background(), ev.from, ev.req)
		}
		*ev = deliveryEvent{}
		eventPool.Put(ev)
	}
}

// countMessage tallies one send attempt by request kind on the source's
// shard. Unlike bandwidth accounting this is always on — experiments use it
// to compare dissemination strategies by message count (e.g. messages per
// view change) — so it must not contend: counters are per-shard lock-free
// atomics (the per-kind map only allocates on first sight of a kind).
func (s *shard) countMessage(req *remoting.Request) {
	s.msgTotal.Add(1)
	kind := req.Kind()
	if c, ok := s.msgCounts.Load(kind); ok {
		c.(*atomic.Int64).Add(1)
		return
	}
	c, _ := s.msgCounts.LoadOrStore(kind, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// TotalMessages returns the number of send attempts observed so far
// (requests only; responses are not counted).
func (n *Network) TotalMessages() int64 {
	var total int64
	for _, s := range n.shards {
		total += s.msgTotal.Load()
	}
	return total
}

// MessageCount returns the number of send attempts of one request kind (as
// named by remoting.Request.Kind, e.g. "alerts", "votebatch", "fastround").
func (n *Network) MessageCount(kind string) int64 {
	var total int64
	for _, s := range n.shards {
		if c, ok := s.msgCounts.Load(kind); ok {
			total += c.(*atomic.Int64).Load()
		}
	}
	return total
}

// Register implements transport.Network. It binds a handler to an address.
// Registering clears any previous crash marker for the address (the process
// came back); a replaced registration stops receiving queued traffic.
func (n *Network) Register(addr node.Addr, handler transport.Handler) error {
	s := n.shardFor(addr)
	st := &endpointState{handler: handler}
	s.mu.Lock()
	if old, ok := s.endpoints[addr]; ok {
		old.gone.Store(true)
	}
	s.endpoints[addr] = st
	if s.crashed[addr] {
		delete(s.crashed, addr)
		n.crashedCount.Add(-1)
	}
	s.mu.Unlock()
	return nil
}

// Deregister implements transport.Network: the address becomes unreachable
// and its queued best-effort messages are dropped at delivery time.
func (n *Network) Deregister(addr node.Addr) {
	s := n.shardFor(addr)
	s.mu.Lock()
	st, ok := s.endpoints[addr]
	if ok {
		delete(s.endpoints, addr)
	}
	s.mu.Unlock()
	if ok {
		st.gone.Store(true)
	}
}

// Crash removes a process abruptly: it becomes unreachable and anything it
// still tries to send is dropped (unlike Deregister, which only stops it from
// receiving). Experiment code uses this to model process crashes without
// having to tear down the process object itself.
func (n *Network) Crash(addr node.Addr) {
	s := n.shardFor(addr)
	s.mu.Lock()
	if !s.crashed[addr] {
		s.crashed[addr] = true
		n.crashedCount.Add(1)
	}
	s.mu.Unlock()
	n.Deregister(addr)
}

// Client implements transport.Network.
func (n *Network) Client(addr node.Addr) transport.Client {
	return &client{net: n, from: addr}
}

// Registered reports whether an address currently has a handler.
func (n *Network) Registered(addr node.Addr) bool {
	s := n.shardFor(addr)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.endpoints[addr]
	return ok
}

// NumRegistered returns the number of live endpoints.
func (n *Network) NumRegistered() int {
	total := 0
	for _, s := range n.shards {
		s.mu.RLock()
		total += len(s.endpoints)
		s.mu.RUnlock()
	}
	return total
}

// --- fault injection -------------------------------------------------------

// setLoss installs or clears one loss rule, keeping the global rule count in
// step so the no-fault fast path stays exact. The map is selected under the
// shard lock: ClearFaults replaces the map objects, so a map captured before
// locking could be the orphaned one.
func (n *Network) setLoss(addr node.Addr, ingress bool, probability float64) {
	s := n.shardFor(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.egressLoss
	if ingress {
		m = s.ingressLoss
	}
	_, had := m[addr]
	if probability <= 0 {
		if had {
			delete(m, addr)
			n.faultRules.Add(-1)
		}
		return
	}
	m[addr] = probability
	if !had {
		n.faultRules.Add(1)
	}
}

// SetIngressLoss drops the given fraction [0,1] of packets arriving at addr.
func (n *Network) SetIngressLoss(addr node.Addr, probability float64) {
	n.setLoss(addr, true, probability)
}

// SetEgressLoss drops the given fraction [0,1] of packets leaving addr.
func (n *Network) SetEgressLoss(addr node.Addr, probability float64) {
	n.setLoss(addr, false, probability)
}

// BlockDirectional drops every packet flowing from src to dst (one direction
// only), modelling the one-way reachability problems of §7.
func (n *Network) BlockDirectional(src, dst node.Addr) {
	s := n.shardFor(src)
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]node.Addr{src, dst}
	if !s.blackholes[key] {
		s.blackholes[key] = true
		n.faultRules.Add(1)
	}
}

// UnblockDirectional removes a directional blackhole.
func (n *Network) UnblockDirectional(src, dst node.Addr) {
	s := n.shardFor(src)
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]node.Addr{src, dst}
	if s.blackholes[key] {
		delete(s.blackholes, key)
		n.faultRules.Add(-1)
	}
}

// BlockPair drops packets in both directions between a and b (a full packet
// blackhole, as in the Figure 12 experiment).
func (n *Network) BlockPair(a, b node.Addr) {
	n.BlockDirectional(a, b)
	n.BlockDirectional(b, a)
}

// UnblockPair removes a bidirectional blackhole.
func (n *Network) UnblockPair(a, b node.Addr) {
	n.UnblockDirectional(a, b)
	n.UnblockDirectional(b, a)
}

// ClearFaults removes every installed fault rule: loss, blackholes, flaps,
// the asymmetric partition, per-node delays, the latency model and chaos.
// (Options.Latency, being part of the network itself, stays.)
func (n *Network) ClearFaults() {
	for _, s := range n.shards {
		s.mu.Lock()
		removed := int64(len(s.ingressLoss) + len(s.egressLoss) + len(s.blackholes) + len(s.flaps))
		flapped := int64(len(s.flaps))
		delays := int64(len(s.delays))
		s.ingressLoss = make(map[node.Addr]float64)
		s.egressLoss = make(map[node.Addr]float64)
		s.blackholes = make(map[[2]node.Addr]bool)
		s.flaps = make(map[node.Addr]flapRule)
		s.delays = make(map[node.Addr]time.Duration)
		s.mu.Unlock()
		n.faultRules.Add(-removed)
		n.flapCount.Add(-flapped)
		n.delayRules.Add(-delays)
	}
	n.ClearAsymmetricPartition()
	n.SetLatencyModel(nil)
	n.ClearChaos()
}

// --- bandwidth accounting ---------------------------------------------------

func (n *Network) recorder(addr node.Addr) *metrics.BandwidthRecorder {
	s := n.shardFor(addr)
	s.recMu.Lock()
	defer s.recMu.Unlock()
	r, ok := s.recorders[addr]
	if !ok {
		r = metrics.NewBandwidthRecorder(n.start, time.Second)
		s.recorders[addr] = r
	}
	return r
}

// Bandwidth returns the recorder for addr (creating it if needed). Only
// meaningful when the network was created with AccountBandwidth.
func (n *Network) Bandwidth(addr node.Addr) *metrics.BandwidthRecorder {
	return n.recorder(addr)
}

func (n *Network) account(from, to node.Addr, req *remoting.Request, resp *remoting.Response) {
	if !n.accounting {
		return
	}
	now := n.clock.Now()
	if req != nil {
		size := remoting.RequestSize(req)
		n.recorder(from).RecordSent(now, size)
		n.recorder(to).RecordReceived(now, size)
	}
	if resp != nil {
		size := remoting.ResponseSize(resp)
		n.recorder(to).RecordSent(now, size)
		n.recorder(from).RecordReceived(now, size)
	}
}

// --- delivery ---------------------------------------------------------------

// chance draws one drop decision from the shard's private RNG. Sharding the
// RNG keeps decisions reproducible per shard for a fixed seed and send order
// without a global lock.
func (s *shard) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64() < p
}

// allowed checks the fault rules for a packet from src to dst. With no rules
// installed anywhere — the common case — it is two atomic loads. Flap rules
// fold into the loss probabilities of whichever direction they cover, so the
// RNG draw order (egress on the source shard, then ingress on the
// destination shard) is identical with and without flaps active.
func (n *Network) allowed(src, dst node.Addr) bool {
	if n.faultRules.Load() == 0 && n.crashedCount.Load() == 0 {
		return true
	}
	if p := n.partition.Load(); p != nil && p.blocked(src, dst) {
		return false
	}
	var now time.Time
	if n.flapCount.Load() > 0 {
		now = n.clock.Now()
	}
	ss := n.shardFor(src)
	ss.mu.RLock()
	egress := ss.egressLoss[src]
	blocked := ss.blackholes[[2]node.Addr{src, dst}]
	crashed := ss.crashed[src]
	if fr, ok := ss.flaps[src]; ok && !fr.Ingress && fr.active(now) && fr.Loss > egress {
		egress = fr.Loss
	}
	ss.mu.RUnlock()
	if blocked || crashed {
		return false
	}
	ds := n.shardFor(dst)
	ds.mu.RLock()
	ingress := ds.ingressLoss[dst]
	if fr, ok := ds.flaps[dst]; ok && fr.Ingress && fr.active(now) && fr.Loss > ingress {
		ingress = fr.Loss
	}
	ds.mu.RUnlock()
	if ss.chance(egress) {
		return false
	}
	if ds.chance(ingress) {
		return false
	}
	return true
}

func (n *Network) lookup(addr node.Addr) (*endpointState, bool) {
	s := n.shardFor(addr)
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.endpoints[addr]
	return st, ok
}

// client implements transport.Client for one source address.
type client struct {
	net  *Network
	from node.Addr
}

// sleepCtx waits out one direction's propagation delay, honoring the
// caller's deadline: a slow link makes RPCs *time out*, not merely take
// longer, which is what turns delay injection into a protocol-visible gray
// failure (probers bound each RPC with a context deadline).
func (n *Network) sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx == nil || ctx.Done() == nil {
		n.clock.Sleep(d)
		return true
	}
	select {
	case <-ctx.Done():
		return false
	case <-n.clock.After(d):
		return true
	}
}

// Send implements transport.Client. Both the request and the response path
// are subject to fault rules, so one-way partitions affect RPCs correctly:
// a node whose ingress is blocked can still send requests but never hears
// responses. Propagation delay (Options.Latency plus any delay rules) is
// paid per direction and races the context deadline.
func (c *client) Send(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
	n := c.net
	n.shardFor(c.from).countMessage(req)
	delay := n.latency + n.extraDelay(c.from, to)
	if delay > 0 && !n.sleepCtx(ctx, delay) {
		return nil, transport.ErrTimeout
	}
	if !n.allowed(c.from, to) {
		return nil, transport.ErrUnreachable
	}
	st, ok := n.lookup(to)
	if !ok {
		return nil, transport.ErrUnreachable
	}
	resp, err := st.handler.HandleRequest(ctx, c.from, req)
	if err != nil {
		return nil, err
	}
	// Response travels dst -> src and is subject to the reverse-path rules.
	if !n.allowed(to, c.from) {
		return nil, transport.ErrTimeout
	}
	n.account(c.from, to, req, resp)
	if delay > 0 && !n.sleepCtx(ctx, delay) {
		return nil, transport.ErrTimeout
	}
	return resp, nil
}

// SendBestEffort implements transport.Client: the message is queued on the
// destination shard if the fault rules allow it, and silently dropped
// otherwise (or if the destination's backlog or the shard queue is full).
// The steady-state path performs no allocation: delivery events come from a
// pool and per-kind counters are pre-existing atomics.
func (c *client) SendBestEffort(to node.Addr, req *remoting.Request) {
	n := c.net
	src := n.shardFor(c.from)
	src.countMessage(req)
	if !n.allowed(c.from, to) {
		return
	}
	st, ok := n.lookup(to)
	if !ok {
		return
	}
	delay := n.latency + n.extraDelay(c.from, to)
	if ch := n.chaos.Load(); ch != nil {
		// Chaos draws happen on the source shard in send order (after the
		// loss draws of allowed), keeping traces seed-reproducible.
		var jitter time.Duration
		if src.chance(ch.Reorder) {
			jitter = src.randJitter(ch.MaxJitter)
		}
		if src.chance(ch.Duplicate) {
			dupJitter := src.randJitter(ch.MaxJitter)
			n.dups.Add(1)
			n.deliverBestEffort(c.from, to, st, req, delay+dupJitter)
		}
		delay += jitter
	}
	n.deliverBestEffort(c.from, to, st, req, delay)
}

// deliverBestEffort queues one best-effort copy: immediately when it carries
// no delay, through the destination shard's delay heap otherwise. Each copy
// consumes an inbox slot (a duplicate beyond the destination's backlog bound
// is dropped like any other message).
func (n *Network) deliverBestEffort(from, to node.Addr, st *endpointState, req *remoting.Request, delay time.Duration) {
	// Backlog bound per destination, like a UDP socket buffer under load.
	if int(st.pending.Add(1)) > n.inboxSize {
		st.pending.Add(-1)
		return
	}
	n.account(from, to, req, nil)
	ev := eventPool.Get().(*deliveryEvent)
	ev.from, ev.req, ev.st = from, req, st
	s := n.shardFor(to)
	if delay <= 0 {
		s.queue.push(ev)
		return
	}
	if !s.delayed.push(ev, n.clock.Now().Add(delay)) {
		releaseEvent(ev)
	}
}

var _ transport.Network = (*Network)(nil)
var _ transport.Client = (*client)(nil)
