// Package simnet is an in-process network used to run whole clusters inside a
// single test or benchmark. It implements the transport interfaces and adds
// the fault-injection facilities needed to reproduce the paper's failure
// scenarios: probabilistic packet loss on a node's ingress or egress path
// (the iptables INPUT/OUTPUT rules of §7), directional blackholes between
// node pairs, crashes, and optional per-message latency. It can also account
// sent/received bytes per node to regenerate Table 2.
package simnet

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// asyncMsg is a queued best-effort message awaiting dispatch to a handler.
type asyncMsg struct {
	from node.Addr
	req  *remoting.Request
}

// endpointState is the simnet-side representation of one registered process.
type endpointState struct {
	handler transport.Handler
	inbox   chan asyncMsg
	quit    chan struct{}
	done    sync.WaitGroup
}

// Options configure a simulated network.
type Options struct {
	// Clock supplies time for latency simulation and bandwidth accounting.
	Clock simclock.Clock
	// Seed makes drop decisions reproducible.
	Seed int64
	// Latency, if non-zero, is added to every synchronous request/response.
	Latency time.Duration
	// AccountBandwidth enables per-node byte accounting. It costs one sizing
	// pass per message (RequestSize/ResponseSize over the binary codec, with
	// a pooled scratch buffer), so it is off by default.
	AccountBandwidth bool
	// InboxSize bounds each node's best-effort message queue; further
	// messages are dropped, mimicking UDP behaviour under load.
	InboxSize int
}

// Network is a simulated cluster interconnect.
type Network struct {
	clock   simclock.Clock
	latency time.Duration
	start   time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	mu          sync.RWMutex
	endpoints   map[node.Addr]*endpointState
	crashed     map[node.Addr]bool
	ingressLoss map[node.Addr]float64
	egressLoss  map[node.Addr]float64
	blackholes  map[[2]node.Addr]bool

	accounting bool
	inboxSize  int
	recMu      sync.Mutex
	recorders  map[node.Addr]*metrics.BandwidthRecorder

	msgTotal  atomic.Int64
	msgCounts sync.Map // request kind -> *atomic.Int64
}

// New creates a simulated network.
func New(opts Options) *Network {
	clk := opts.Clock
	if clk == nil {
		clk = simclock.NewReal()
	}
	inbox := opts.InboxSize
	if inbox <= 0 {
		inbox = 4096
	}
	return &Network{
		clock:       clk,
		latency:     opts.Latency,
		start:       clk.Now(),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		endpoints:   make(map[node.Addr]*endpointState),
		crashed:     make(map[node.Addr]bool),
		ingressLoss: make(map[node.Addr]float64),
		egressLoss:  make(map[node.Addr]float64),
		blackholes:  make(map[[2]node.Addr]bool),
		accounting:  opts.AccountBandwidth,
		inboxSize:   inbox,
		recorders:   make(map[node.Addr]*metrics.BandwidthRecorder),
	}
}

// countMessage tallies one send attempt by request kind. Unlike bandwidth
// accounting this is always on — experiments use it to compare dissemination
// strategies by message count (e.g. messages per view change) — so it must
// not contend: the counters are lock-free atomics (the per-kind map only
// allocates on first sight of a kind).
func (n *Network) countMessage(req *remoting.Request) {
	n.msgTotal.Add(1)
	kind := req.Kind()
	if c, ok := n.msgCounts.Load(kind); ok {
		c.(*atomic.Int64).Add(1)
		return
	}
	c, _ := n.msgCounts.LoadOrStore(kind, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// TotalMessages returns the number of send attempts observed so far
// (requests only; responses are not counted).
func (n *Network) TotalMessages() int64 { return n.msgTotal.Load() }

// MessageCount returns the number of send attempts of one request kind (as
// named by remoting.Request.Kind, e.g. "alerts", "votebatch", "fastround").
func (n *Network) MessageCount(kind string) int64 {
	if c, ok := n.msgCounts.Load(kind); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Register implements transport.Network. It binds a handler to an address and
// starts the dispatcher for best-effort messages. Registering clears any
// previous crash marker for the address (the process came back).
func (n *Network) Register(addr node.Addr, handler transport.Handler) error {
	st := &endpointState{
		handler: handler,
		inbox:   make(chan asyncMsg, n.inboxSize),
		quit:    make(chan struct{}),
	}
	n.mu.Lock()
	if old, ok := n.endpoints[addr]; ok {
		close(old.quit)
	}
	n.endpoints[addr] = st
	delete(n.crashed, addr)
	n.mu.Unlock()

	st.done.Add(1)
	go func() {
		defer st.done.Done()
		for {
			select {
			case <-st.quit:
				return
			case m := <-st.inbox:
				// Best-effort messages get a generous deadline; the handler
				// decides what to do with stale configuration traffic.
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, _ = st.handler.HandleRequest(ctx, m.from, m.req)
				cancel()
			}
		}
	}()
	return nil
}

// Deregister implements transport.Network: the address becomes unreachable.
func (n *Network) Deregister(addr node.Addr) {
	n.mu.Lock()
	st, ok := n.endpoints[addr]
	if ok {
		delete(n.endpoints, addr)
	}
	n.mu.Unlock()
	if ok {
		close(st.quit)
	}
}

// Crash removes a process abruptly: it becomes unreachable and anything it
// still tries to send is dropped (unlike Deregister, which only stops it from
// receiving). Experiment code uses this to model process crashes without
// having to tear down the process object itself.
func (n *Network) Crash(addr node.Addr) {
	n.mu.Lock()
	n.crashed[addr] = true
	n.mu.Unlock()
	n.Deregister(addr)
}

// Client implements transport.Network.
func (n *Network) Client(addr node.Addr) transport.Client {
	return &client{net: n, from: addr}
}

// Registered reports whether an address currently has a handler.
func (n *Network) Registered(addr node.Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.endpoints[addr]
	return ok
}

// NumRegistered returns the number of live endpoints.
func (n *Network) NumRegistered() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.endpoints)
}

// --- fault injection -------------------------------------------------------

// SetIngressLoss drops the given fraction [0,1] of packets arriving at addr.
func (n *Network) SetIngressLoss(addr node.Addr, probability float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if probability <= 0 {
		delete(n.ingressLoss, addr)
		return
	}
	n.ingressLoss[addr] = probability
}

// SetEgressLoss drops the given fraction [0,1] of packets leaving addr.
func (n *Network) SetEgressLoss(addr node.Addr, probability float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if probability <= 0 {
		delete(n.egressLoss, addr)
		return
	}
	n.egressLoss[addr] = probability
}

// BlockDirectional drops every packet flowing from src to dst (one direction
// only), modelling the one-way reachability problems of §7.
func (n *Network) BlockDirectional(src, dst node.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blackholes[[2]node.Addr{src, dst}] = true
}

// UnblockDirectional removes a directional blackhole.
func (n *Network) UnblockDirectional(src, dst node.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blackholes, [2]node.Addr{src, dst})
}

// BlockPair drops packets in both directions between a and b (a full packet
// blackhole, as in the Figure 12 experiment).
func (n *Network) BlockPair(a, b node.Addr) {
	n.BlockDirectional(a, b)
	n.BlockDirectional(b, a)
}

// UnblockPair removes a bidirectional blackhole.
func (n *Network) UnblockPair(a, b node.Addr) {
	n.UnblockDirectional(a, b)
	n.UnblockDirectional(b, a)
}

// ClearFaults removes every loss and blackhole rule.
func (n *Network) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ingressLoss = make(map[node.Addr]float64)
	n.egressLoss = make(map[node.Addr]float64)
	n.blackholes = make(map[[2]node.Addr]bool)
}

// --- bandwidth accounting ---------------------------------------------------

func (n *Network) recorder(addr node.Addr) *metrics.BandwidthRecorder {
	n.recMu.Lock()
	defer n.recMu.Unlock()
	r, ok := n.recorders[addr]
	if !ok {
		r = metrics.NewBandwidthRecorder(n.start, time.Second)
		n.recorders[addr] = r
	}
	return r
}

// Bandwidth returns the recorder for addr (creating it if needed). Only
// meaningful when the network was created with AccountBandwidth.
func (n *Network) Bandwidth(addr node.Addr) *metrics.BandwidthRecorder {
	return n.recorder(addr)
}

func (n *Network) account(from, to node.Addr, req *remoting.Request, resp *remoting.Response) {
	if !n.accounting {
		return
	}
	now := n.clock.Now()
	if req != nil {
		size := remoting.RequestSize(req)
		n.recorder(from).RecordSent(now, size)
		n.recorder(to).RecordReceived(now, size)
	}
	if resp != nil {
		size := remoting.ResponseSize(resp)
		n.recorder(to).RecordSent(now, size)
		n.recorder(from).RecordReceived(now, size)
	}
}

// --- delivery ---------------------------------------------------------------

func (n *Network) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < p
}

// allowed checks the fault rules for a packet from src to dst.
func (n *Network) allowed(src, dst node.Addr) bool {
	n.mu.RLock()
	egress := n.egressLoss[src]
	ingress := n.ingressLoss[dst]
	blocked := n.blackholes[[2]node.Addr{src, dst}]
	crashed := n.crashed[src]
	n.mu.RUnlock()
	if blocked || crashed {
		return false
	}
	if n.chance(egress) {
		return false
	}
	if n.chance(ingress) {
		return false
	}
	return true
}

func (n *Network) lookup(addr node.Addr) (*endpointState, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	st, ok := n.endpoints[addr]
	return st, ok
}

// client implements transport.Client for one source address.
type client struct {
	net  *Network
	from node.Addr
}

// Send implements transport.Client. Both the request and the response path
// are subject to fault rules, so one-way partitions affect RPCs correctly:
// a node whose ingress is blocked can still send requests but never hears
// responses.
func (c *client) Send(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
	n := c.net
	n.countMessage(req)
	if n.latency > 0 {
		n.clock.Sleep(n.latency)
	}
	if !n.allowed(c.from, to) {
		return nil, transport.ErrUnreachable
	}
	st, ok := n.lookup(to)
	if !ok {
		return nil, transport.ErrUnreachable
	}
	resp, err := st.handler.HandleRequest(ctx, c.from, req)
	if err != nil {
		return nil, err
	}
	// Response travels dst -> src and is subject to the reverse-path rules.
	if !n.allowed(to, c.from) {
		return nil, transport.ErrTimeout
	}
	n.account(c.from, to, req, resp)
	if n.latency > 0 {
		n.clock.Sleep(n.latency)
	}
	return resp, nil
}

// SendBestEffort implements transport.Client: the message is queued on the
// destination's inbox if the fault rules allow it, and silently dropped
// otherwise (or if the inbox is full).
func (c *client) SendBestEffort(to node.Addr, req *remoting.Request) {
	n := c.net
	n.countMessage(req)
	if !n.allowed(c.from, to) {
		return
	}
	st, ok := n.lookup(to)
	if !ok {
		return
	}
	n.account(c.from, to, req, nil)
	select {
	case st.inbox <- asyncMsg{from: c.from, req: req}:
	default:
		// Queue overflow: drop, like UDP under load.
	}
}

var _ transport.Network = (*Network)(nil)
var _ transport.Client = (*client)(nil)
