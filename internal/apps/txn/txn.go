// Package txn models the distributed transactional data platform of §7 of
// the paper ("Experience with end-to-end workloads"). The platform consists
// of a fleet of data servers plus a single transaction serialization server
// (as in Google Megastore or Apache Omid); every transaction must pass
// through the serialization server, and when the membership layer declares
// that server failed, the platform performs a failover during which the
// workload is paused.
//
// The membership layer is pluggable: the paper compares the platform's
// original all-to-all gossip failure detector (package gossipfd) against
// Rapid. Under a packet blackhole between the serialization server and one
// data server, the gossip detector repeatedly removes and re-adds the
// serialization server, each time triggering a failover and pausing clients;
// Rapid's L-of-K aggregation never removes it and the workload is
// uninterrupted. This model measures exactly the quantity of Figure 12:
// end-to-end transaction latency over time, plus total throughput.
package txn

import (
	"sort"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/simclock"
)

// MembershipSource abstracts a membership layer that must be polled (the
// baseline all-to-all gossip failure detector has no notification stream).
// Rapid-backed platforms do not poll: they pass a nil source to NewPlatform
// and push every view change through ApplyMembership from a subscriber
// callback, which is safe because Rapid delivers notifications off the
// protocol path and bounds the pending queue for slow consumers.
type MembershipSource interface {
	// AliveServers returns the servers currently believed alive.
	AliveServers() []node.Addr
}

// Options tune the platform model.
type Options struct {
	// Clock supplies all time for the model; nil means the wall clock. Tests
	// and deterministic simulations inject a simclock.Manual.
	Clock simclock.Clock
	// BaseLatency is the service time of a transaction in steady state.
	BaseLatency time.Duration
	// FailoverPause is how long the platform pauses while electing and
	// bootstrapping a new serialization server.
	FailoverPause time.Duration
	// CheckInterval is how often the platform consults the membership layer.
	CheckInterval time.Duration
}

// DefaultOptions returns a configuration that, scaled, matches the shape of
// the Figure 12 experiment (latencies of tens of ms, failovers of seconds).
func DefaultOptions() Options {
	return Options{
		BaseLatency:   20 * time.Millisecond,
		FailoverPause: 2 * time.Second,
		CheckInterval: 100 * time.Millisecond,
	}
}

// Scaled divides every duration by factor.
func (o Options) Scaled(factor float64) Options {
	if factor <= 0 {
		return o
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) / factor)
		if s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	o.BaseLatency = scale(o.BaseLatency)
	o.FailoverPause = scale(o.FailoverPause)
	o.CheckInterval = scale(o.CheckInterval)
	return o
}

// Platform is the transactional data platform driven by a membership source.
type Platform struct {
	opts    Options
	clock   simclock.Clock
	servers []node.Addr
	source  MembershipSource

	mu              sync.Mutex
	serialization   node.Addr
	failoverUntil   time.Time
	failovers       int
	stopCh          chan struct{}
	wg              sync.WaitGroup
	stopped         bool
	lastMembership  map[node.Addr]bool
	membershipFlaps int
	// pushed records that at least one membership view has been applied, so
	// SeedEndpoints cannot overwrite a newer concurrently-pushed view with
	// the possibly stale read it was seeded from.
	pushed bool
}

// NewPlatform creates a platform over the given data servers. The
// serialization server is always the lexicographically smallest alive server,
// which mirrors "the system has only one active serialization server".
//
// A non-nil source is polled every CheckInterval. A nil source starts no
// polling loop: the caller pushes membership changes through ApplyMembership
// (typically from a view-change subscriber callback).
func NewPlatform(servers []node.Addr, source MembershipSource, opts Options) *Platform {
	sorted := append([]node.Addr(nil), servers...)
	node.SortAddrs(sorted)
	clock := opts.Clock
	if clock == nil {
		clock = simclock.NewReal()
	}
	p := &Platform{
		opts:           opts,
		clock:          clock,
		servers:        sorted,
		source:         source,
		stopCh:         make(chan struct{}),
		lastMembership: make(map[node.Addr]bool),
	}
	p.serialization = p.pickSerializationServer(sorted)
	for _, s := range sorted {
		p.lastMembership[s] = true
	}
	if source != nil {
		p.wg.Add(1)
		go p.watchLoop()
	}
	return p
}

// Stop halts the platform's membership watcher.
func (p *Platform) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stopCh)
	p.wg.Wait()
}

// SerializationServer returns the currently active serialization server.
func (p *Platform) SerializationServer() node.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.serialization
}

// Failovers returns how many serialization-server failovers have occurred.
func (p *Platform) Failovers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers
}

// MembershipFlaps returns how many alive/dead transitions the platform has
// observed from its membership source (a direct measure of instability).
func (p *Platform) MembershipFlaps() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.membershipFlaps
}

func (p *Platform) pickSerializationServer(alive []node.Addr) node.Addr {
	if len(alive) == 0 {
		return ""
	}
	sorted := append([]node.Addr(nil), alive...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[0]
}

// watchLoop polls a MembershipSource that has no notification stream.
func (p *Platform) watchLoop() {
	defer p.wg.Done()
	// A single reused ticker: clock.After inside the loop would allocate a new
	// timer every iteration, none of which are collected until they fire.
	interval := p.opts.CheckInterval
	if interval <= 0 {
		interval = DefaultOptions().CheckInterval
	}
	ticker := p.clock.Ticker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C():
		}
		p.ApplyMembership(p.source.AliveServers())
	}
}

// ApplyEndpoints is ApplyMembership for a membership service's native
// view-change payload: subscribe it (via a closure) to the view-change
// stream, then call SeedEndpoints once with the current member list so a
// change installed before the subscription is not missed.
func (p *Platform) ApplyEndpoints(members []node.Endpoint) {
	p.ApplyMembership(node.EndpointAddrs(members))
}

// SeedEndpoints applies the membership read taken immediately after
// subscribing to the view-change stream. It is a no-op once any pushed view
// has been applied: a subscriber callback racing this call always carries a
// view at least as new as the seed read (the read happens after Subscribe,
// and notifications are delivered in order), so discarding the seed in that
// case can never lose a transition.
func (p *Platform) SeedEndpoints(members []node.Endpoint) {
	p.applyMembership(node.EndpointAddrs(members), true)
}

// ApplyMembership reacts to a membership change: if the serialization server
// is no longer in the alive set, a failover begins (pausing transactions for
// FailoverPause) and a new serialization server is selected. Push-driven
// platforms call it from their membership layer's subscriber callback;
// polling platforms call it from watchLoop.
func (p *Platform) ApplyMembership(alive []node.Addr) {
	p.applyMembership(alive, false)
}

// applyMembership applies one membership observation; the seed/push check
// happens under the same lock as the application, so a seed can never
// interleave past a concurrent push.
func (p *Platform) applyMembership(alive []node.Addr, seed bool) {
	aliveSet := make(map[node.Addr]bool, len(alive))
	for _, a := range alive {
		aliveSet[a] = true
	}
	p.mu.Lock()
	if seed && p.pushed {
		p.mu.Unlock()
		return
	}
	if !seed {
		p.pushed = true
	}
	for _, s := range p.servers {
		if p.lastMembership[s] != aliveSet[s] {
			p.membershipFlaps++
			p.lastMembership[s] = aliveSet[s]
		}
	}
	// The serialization-server role follows a fixed priority order over
	// the alive set, so any membership change that alters the preferred
	// holder — removal of the current one, or reappearance of a
	// higher-priority one — forces a reconfiguration. This is what makes
	// a flapping failure detector so damaging in Figure 12.
	preferred := p.pickSerializationServer(alive)
	if preferred != p.serialization {
		if p.serialization != "" || preferred == "" {
			p.failovers++
			p.failoverUntil = p.clock.Now().Add(p.opts.FailoverPause)
		}
		p.serialization = preferred
	}
	p.mu.Unlock()
}

// TxnResult is one transaction's outcome.
type TxnResult struct {
	At      time.Time
	Latency time.Duration
}

// SubmitTransaction executes one transaction: it waits out the failover that
// is in progress when it arrives (if any) and then incurs the base service
// latency. Only the pause observed at submission time is paid, so a
// continuously flapping membership degrades latency and throughput — as in
// Figure 12 — without starving clients completely.
func (p *Platform) SubmitTransaction() TxnResult {
	start := p.clock.Now()
	p.mu.Lock()
	pauseUntil := p.failoverUntil
	hasServer := p.serialization != ""
	p.mu.Unlock()
	if !hasServer {
		p.clock.Sleep(p.opts.CheckInterval)
	}
	if wait := pauseUntil.Sub(p.clock.Now()); wait > 0 {
		p.clock.Sleep(wait)
	}
	p.clock.Sleep(p.opts.BaseLatency)
	return TxnResult{At: start, Latency: p.clock.Since(start)}
}

// RunWorkload submits transactions back-to-back from `clients` concurrent
// clients for the given duration and returns every result. Throughput is
// len(results)/duration.
func (p *Platform) RunWorkload(clients int, duration time.Duration) []TxnResult {
	if clients <= 0 {
		clients = 1
	}
	var mu sync.Mutex
	var results []TxnResult
	deadline := p.clock.Now().Add(duration)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p.clock.Now().Before(deadline) {
				r := p.SubmitTransaction()
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].At.Before(results[j].At) })
	return results
}

// StaticMembership is a MembershipSource with a fixed alive set, useful in
// tests and as a "perfectly stable" control.
type StaticMembership struct {
	mu    sync.Mutex
	alive []node.Addr
}

// NewStaticMembership creates a static source.
func NewStaticMembership(alive []node.Addr) *StaticMembership {
	return &StaticMembership{alive: append([]node.Addr(nil), alive...)}
}

// AliveServers implements MembershipSource.
func (s *StaticMembership) AliveServers() []node.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]node.Addr(nil), s.alive...)
}

// Set replaces the alive set.
func (s *StaticMembership) Set(alive []node.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive = append([]node.Addr(nil), alive...)
}
