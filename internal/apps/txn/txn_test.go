package txn

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
)

func servers(n int) []node.Addr {
	out := make([]node.Addr, n)
	for i := range out {
		out[i] = node.Addr(fmt.Sprintf("data-%02d:1", i))
	}
	return out
}

func fastOpts() Options { return DefaultOptions().Scaled(20) }

func TestSerializationServerIsLowestAddress(t *testing.T) {
	s := servers(5)
	src := NewStaticMembership(s)
	p := NewPlatform(s, src, fastOpts())
	defer p.Stop()
	if p.SerializationServer() != s[0] {
		t.Fatalf("serialization server = %v, want %v", p.SerializationServer(), s[0])
	}
}

func TestStableMembershipNoFailovers(t *testing.T) {
	s := servers(4)
	src := NewStaticMembership(s)
	p := NewPlatform(s, src, fastOpts())
	defer p.Stop()
	results := p.RunWorkload(2, 300*time.Millisecond)
	if len(results) == 0 {
		t.Fatal("no transactions completed")
	}
	if p.Failovers() != 0 {
		t.Fatalf("failovers = %d, want 0 under stable membership", p.Failovers())
	}
	for _, r := range results {
		if r.Latency > 10*fastOpts().BaseLatency {
			t.Fatalf("transaction latency %v is excessive under stable membership", r.Latency)
		}
	}
}

// TestPushDrivenMembership exercises the subscriber-stream entry point: a
// platform built without a polling source reacts to ApplyMembership pushes
// immediately, with no watch loop running.
func TestPushDrivenMembership(t *testing.T) {
	s := servers(4)
	p := NewPlatform(s, nil, fastOpts())
	defer p.Stop()
	if p.SerializationServer() != s[0] {
		t.Fatalf("serialization server = %v, want %v", p.SerializationServer(), s[0])
	}
	// Pushing the removal of the serialization server fails over synchronously.
	p.ApplyMembership(s[1:])
	if p.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1 after pushed removal", p.Failovers())
	}
	if p.SerializationServer() != s[1] {
		t.Fatalf("serialization server = %v, want %v", p.SerializationServer(), s[1])
	}
	if p.MembershipFlaps() != 1 {
		t.Fatalf("flaps = %d, want 1", p.MembershipFlaps())
	}
	// An identical push is a no-op.
	p.ApplyMembership(s[1:])
	if p.Failovers() != 1 || p.MembershipFlaps() != 1 {
		t.Fatalf("idempotent push changed state: failovers=%d flaps=%d", p.Failovers(), p.MembershipFlaps())
	}
}

// TestSeedEndpointsYieldsToPushes pins the subscribe-then-seed contract: a
// seed read applies when it arrives first, but never overwrites state a
// pushed view change has already installed.
func TestSeedEndpointsYieldsToPushes(t *testing.T) {
	s := servers(3)
	eps := make([]node.Endpoint, len(s))
	for i, a := range s {
		eps[i] = node.Endpoint{Addr: a}
	}

	// Seed first: it applies (here the removal of the serialization server).
	p := NewPlatform(s, nil, fastOpts())
	defer p.Stop()
	p.SeedEndpoints(eps[1:])
	if p.SerializationServer() != s[1] {
		t.Fatalf("seed before any push should apply, server=%v", p.SerializationServer())
	}

	// Push first: the (stale) seed must be discarded.
	q := NewPlatform(s, nil, fastOpts())
	defer q.Stop()
	q.ApplyEndpoints(eps[1:]) // pushed view: s[0] is gone
	q.SeedEndpoints(eps)      // stale seed read claims s[0] is alive
	if q.SerializationServer() != s[1] {
		t.Fatalf("stale seed overwrote a pushed view, server=%v", q.SerializationServer())
	}
}

func TestMembershipRemovalTriggersFailoverAndPause(t *testing.T) {
	s := servers(4)
	src := NewStaticMembership(s)
	opts := fastOpts()
	p := NewPlatform(s, src, opts)
	defer p.Stop()

	// Remove the serialization server from the membership.
	src.Set(s[1:])
	deadline := time.Now().Add(5 * time.Second)
	for p.Failovers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", p.Failovers())
	}
	if p.SerializationServer() != s[1] {
		t.Fatalf("new serialization server = %v, want %v", p.SerializationServer(), s[1])
	}
	// A transaction submitted during the failover pause takes much longer
	// than the base latency.
	r := p.SubmitTransaction()
	if r.Latency < opts.FailoverPause/2 {
		t.Fatalf("transaction during failover took %v, expected a pause near %v", r.Latency, opts.FailoverPause)
	}
}

func TestFlappingMembershipCausesRepeatedFailovers(t *testing.T) {
	s := servers(4)
	src := NewStaticMembership(s)
	opts := fastOpts()
	p := NewPlatform(s, src, opts)
	defer p.Stop()

	// Flap the serialization server in and out of the membership.
	for i := 0; i < 3; i++ {
		src.Set(s[1:])
		time.Sleep(4 * opts.CheckInterval)
		src.Set(s)
		time.Sleep(4 * opts.CheckInterval)
	}
	if p.Failovers() < 2 {
		t.Fatalf("failovers = %d, want repeated failovers under a flapping membership", p.Failovers())
	}
	if p.MembershipFlaps() < 4 {
		t.Fatalf("membership flaps = %d, want several", p.MembershipFlaps())
	}
}

func TestThroughputDropsUnderFlapping(t *testing.T) {
	s := servers(4)
	opts := fastOpts()

	stableSrc := NewStaticMembership(s)
	stable := NewPlatform(s, stableSrc, opts)
	stableResults := stable.RunWorkload(2, 400*time.Millisecond)
	stable.Stop()

	flappySrc := NewStaticMembership(s)
	flappy := NewPlatform(s, flappySrc, opts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			flappySrc.Set(s[1:])
			time.Sleep(50 * time.Millisecond)
			flappySrc.Set(s)
			time.Sleep(50 * time.Millisecond)
		}
	}()
	flappyResults := flappy.RunWorkload(2, 400*time.Millisecond)
	<-done
	flappy.Stop()

	if len(flappyResults) >= len(stableResults) {
		t.Fatalf("throughput under flapping membership (%d txns) should be lower than stable (%d txns)",
			len(flappyResults), len(stableResults))
	}
}
