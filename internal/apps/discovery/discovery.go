// Package discovery models the service-discovery workload of §7 of the paper
// (Figure 13): a load balancer discovers a fleet of backend web servers
// through a membership service and rewrites its configuration on every
// membership change. Each configuration reload briefly degrades request
// latency (nginx re-reading its configuration), and requests routed to
// backends that have failed but are still listed incur a timeout before
// being retried.
//
// The measured effect is the one the paper reports: when ten backends fail,
// Serf/Memberlist delivers the failures as several independent membership
// updates, causing multiple reloads and repeated latency spikes, whereas
// Rapid delivers one multi-node change and a single reload.
//
// The load balancer is push-driven: wire UpdateFromEndpoints (or
// UpdateBackends) into the membership layer's view-change subscriber stream.
// Only membership baselines without a notification stream (SWIM/Memberlist)
// need to poll and call UpdateBackends on a timer.
package discovery

import (
	"sort"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/simclock"
)

// Options tune the load-balancer model.
type Options struct {
	// Clock supplies all time for the model; nil means the wall clock. Tests
	// and deterministic simulations inject a simclock.Manual.
	Clock simclock.Clock
	// BaseLatency is the request latency when the backend is healthy and no
	// reload is in progress.
	BaseLatency time.Duration
	// ReloadPenalty is the extra latency incurred while a configuration
	// reload is in progress.
	ReloadPenalty time.Duration
	// ReloadDuration is how long a reload takes.
	ReloadDuration time.Duration
	// DeadBackendTimeout is the timeout paid when a request is routed to a
	// failed backend that is still in the configuration.
	DeadBackendTimeout time.Duration
}

// DefaultOptions matches the shape of the Figure 13 experiment.
func DefaultOptions() Options {
	return Options{
		BaseLatency:        10 * time.Millisecond,
		ReloadPenalty:      100 * time.Millisecond,
		ReloadDuration:     1 * time.Second,
		DeadBackendTimeout: 300 * time.Millisecond,
	}
}

// Scaled divides every duration by factor.
func (o Options) Scaled(factor float64) Options {
	if factor <= 0 {
		return o
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) / factor)
		if s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	o.BaseLatency = scale(o.BaseLatency)
	o.ReloadPenalty = scale(o.ReloadPenalty)
	o.ReloadDuration = scale(o.ReloadDuration)
	o.DeadBackendTimeout = scale(o.DeadBackendTimeout)
	return o
}

// LoadBalancer is the modelled nginx front-end.
type LoadBalancer struct {
	opts  Options
	clock simclock.Clock

	mu          sync.Mutex
	backends    []node.Addr
	deadActual  map[node.Addr]bool
	reloadUntil time.Time
	reloads     int
	rrIndex     int
	// pushed records that at least one membership update has been applied,
	// so SeedFromEndpoints cannot overwrite a newer concurrently-pushed view
	// with the possibly stale read it was seeded from.
	pushed bool
}

// NewLoadBalancer creates a load balancer with an initial backend list.
func NewLoadBalancer(backends []node.Addr, opts Options) *LoadBalancer {
	sorted := append([]node.Addr(nil), backends...)
	node.SortAddrs(sorted)
	clock := opts.Clock
	if clock == nil {
		clock = simclock.NewReal()
	}
	return &LoadBalancer{
		opts:       opts,
		clock:      clock,
		backends:   sorted,
		deadActual: make(map[node.Addr]bool),
	}
}

// UpdateFromEndpoints installs the backend list carried by a membership
// view-change notification. It is the push-driven entry point: subscribe it
// (via a closure) to the membership service's view-change stream instead of
// polling the member list, then call SeedFromEndpoints once so a change
// installed before the subscription is not missed.
func (lb *LoadBalancer) UpdateFromEndpoints(members []node.Endpoint) {
	lb.update(node.EndpointAddrs(members), false)
}

// SeedFromEndpoints applies the membership read taken immediately after
// subscribing to the view-change stream. It is a no-op once any pushed
// update has been applied: a subscriber callback racing this call always
// carries a view at least as new as the seed read, so discarding the seed in
// that case can never lose a transition.
func (lb *LoadBalancer) SeedFromEndpoints(members []node.Endpoint) {
	lb.update(node.EndpointAddrs(members), true)
}

// UpdateBackends installs a new backend list, as the membership service's
// view-change callback would. Every call that changes the list triggers a
// configuration reload.
func (lb *LoadBalancer) UpdateBackends(backends []node.Addr) {
	lb.update(backends, false)
}

// update applies one backend-list observation; the seed/push check happens
// under the same lock as the application, so a seed can never interleave
// past a concurrent push.
func (lb *LoadBalancer) update(backends []node.Addr, seed bool) {
	sorted := append([]node.Addr(nil), backends...)
	node.SortAddrs(sorted)
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if seed && lb.pushed {
		return
	}
	if !seed {
		lb.pushed = true
	}
	if equalAddrs(lb.backends, sorted) {
		return
	}
	lb.backends = sorted
	lb.reloads++
	lb.reloadUntil = lb.clock.Now().Add(lb.opts.ReloadDuration)
}

// MarkActuallyDead records that a backend has really failed (whether or not
// the membership layer has noticed yet). Requests routed to it time out.
func (lb *LoadBalancer) MarkActuallyDead(addr node.Addr) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.deadActual[addr] = true
}

// Reloads returns how many configuration reloads have occurred.
func (lb *LoadBalancer) Reloads() int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.reloads
}

// Backends returns the currently configured backend list.
func (lb *LoadBalancer) Backends() []node.Addr {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return append([]node.Addr(nil), lb.backends...)
}

// RequestResult is one simulated HTTP request.
type RequestResult struct {
	At      time.Time
	Latency time.Duration
	// TimedOut reports whether the request hit a dead backend first.
	TimedOut bool
}

// ServeRequest routes one request round-robin and returns its latency, which
// accounts for in-progress reloads and dead-but-configured backends.
func (lb *LoadBalancer) ServeRequest() RequestResult {
	start := lb.clock.Now()
	lb.mu.Lock()
	if len(lb.backends) == 0 {
		lb.mu.Unlock()
		return RequestResult{At: start, Latency: lb.opts.DeadBackendTimeout, TimedOut: true}
	}
	backend := lb.backends[lb.rrIndex%len(lb.backends)]
	lb.rrIndex++
	reloading := lb.clock.Now().Before(lb.reloadUntil)
	dead := lb.deadActual[backend]
	lb.mu.Unlock()

	latency := lb.opts.BaseLatency
	if reloading {
		latency += lb.opts.ReloadPenalty
	}
	timedOut := false
	if dead {
		// Timeout, then retry against a healthy backend.
		latency += lb.opts.DeadBackendTimeout
		timedOut = true
	}
	return RequestResult{At: start, Latency: latency, TimedOut: timedOut}
}

// RunWorkload issues requests at the given rate for the given duration.
func (lb *LoadBalancer) RunWorkload(requestsPerSecond int, duration time.Duration) []RequestResult {
	if requestsPerSecond <= 0 {
		requestsPerSecond = 100
	}
	interval := time.Second / time.Duration(requestsPerSecond)
	var results []RequestResult
	deadline := lb.clock.Now().Add(duration)
	for lb.clock.Now().Before(deadline) {
		results = append(results, lb.ServeRequest())
		lb.clock.Sleep(interval)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].At.Before(results[j].At) })
	return results
}

func equalAddrs(a, b []node.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
