package discovery

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
)

func backends(n int) []node.Addr {
	out := make([]node.Addr, n)
	for i := range out {
		out[i] = node.Addr(fmt.Sprintf("web-%02d:80", i))
	}
	return out
}

func fastOpts() Options { return DefaultOptions().Scaled(20) }

func TestRequestsAtBaseLatencyWhenHealthy(t *testing.T) {
	lb := NewLoadBalancer(backends(10), fastOpts())
	for i := 0; i < 50; i++ {
		r := lb.ServeRequest()
		if r.TimedOut {
			t.Fatal("request timed out against a healthy fleet")
		}
		if r.Latency != fastOpts().BaseLatency {
			t.Fatalf("latency = %v, want base %v", r.Latency, fastOpts().BaseLatency)
		}
	}
	if lb.Reloads() != 0 {
		t.Fatal("no reloads expected without membership changes")
	}
}

func TestUpdateBackendsTriggersReloadOnce(t *testing.T) {
	lb := NewLoadBalancer(backends(10), fastOpts())
	lb.UpdateBackends(backends(8))
	lb.UpdateBackends(backends(8)) // identical list: no reload
	if lb.Reloads() != 1 {
		t.Fatalf("reloads = %d, want 1", lb.Reloads())
	}
	if len(lb.Backends()) != 8 {
		t.Fatalf("backends = %d, want 8", len(lb.Backends()))
	}
}

// TestSeedFromEndpointsYieldsToPushes pins the subscribe-then-seed contract:
// a seed read applies when it arrives first, but never overwrites a backend
// list a pushed view change has already installed.
func TestSeedFromEndpointsYieldsToPushes(t *testing.T) {
	eps := func(n int) []node.Endpoint {
		out := make([]node.Endpoint, n)
		for i, a := range backends(n) {
			out[i] = node.Endpoint{Addr: a}
		}
		return out
	}

	lb := NewLoadBalancer(backends(10), fastOpts())
	lb.SeedFromEndpoints(eps(8))
	if len(lb.Backends()) != 8 {
		t.Fatalf("seed before any push should apply, backends=%d", len(lb.Backends()))
	}

	lb2 := NewLoadBalancer(backends(10), fastOpts())
	lb2.UpdateFromEndpoints(eps(7)) // pushed view change
	lb2.SeedFromEndpoints(eps(10))  // stale seed read
	if len(lb2.Backends()) != 7 || lb2.Reloads() != 1 {
		t.Fatalf("stale seed overwrote a pushed view: backends=%d reloads=%d",
			len(lb2.Backends()), lb2.Reloads())
	}
}

func TestReloadPenaltyApplied(t *testing.T) {
	opts := fastOpts()
	lb := NewLoadBalancer(backends(10), opts)
	lb.UpdateBackends(backends(9))
	r := lb.ServeRequest()
	if r.Latency < opts.BaseLatency+opts.ReloadPenalty {
		t.Fatalf("latency during reload = %v, want at least %v", r.Latency, opts.BaseLatency+opts.ReloadPenalty)
	}
	time.Sleep(opts.ReloadDuration + 10*time.Millisecond)
	r = lb.ServeRequest()
	if r.Latency != opts.BaseLatency {
		t.Fatalf("latency after reload = %v, want base %v", r.Latency, opts.BaseLatency)
	}
}

func TestDeadBackendTimeoutUntilMembershipCatchesUp(t *testing.T) {
	opts := fastOpts()
	bs := backends(5)
	lb := NewLoadBalancer(bs, opts)
	lb.MarkActuallyDead(bs[2])
	timedOut := 0
	for i := 0; i < 10; i++ {
		if lb.ServeRequest().TimedOut {
			timedOut++
		}
	}
	if timedOut == 0 {
		t.Fatal("requests to a dead-but-configured backend should time out")
	}
	// Once the membership layer removes it, no more timeouts (after reload).
	alive := append(append([]node.Addr(nil), bs[:2]...), bs[3:]...)
	lb.UpdateBackends(alive)
	time.Sleep(opts.ReloadDuration + 10*time.Millisecond)
	for i := 0; i < 10; i++ {
		if lb.ServeRequest().TimedOut {
			t.Fatal("request timed out after the dead backend was removed")
		}
	}
}

func TestBatchedRemovalCausesFewerReloadsThanIncremental(t *testing.T) {
	// This is the Figure 13 contrast: Rapid delivers one multi-node change
	// (one reload); Memberlist delivers the failures one at a time (many
	// reloads, each with its latency penalty window).
	opts := fastOpts()
	bs := backends(50)

	rapidLB := NewLoadBalancer(bs, opts)
	rapidLB.UpdateBackends(bs[10:]) // single batched removal of 10 backends
	if rapidLB.Reloads() != 1 {
		t.Fatalf("batched removal should cause exactly 1 reload, got %d", rapidLB.Reloads())
	}

	serfLB := NewLoadBalancer(bs, opts)
	for i := 9; i >= 0; i-- {
		serfLB.UpdateBackends(bs[i:])
	}
	if serfLB.Reloads() != 10 {
		t.Fatalf("incremental removal should cause 10 reloads, got %d", serfLB.Reloads())
	}
}

func TestEmptyBackendListTimesOut(t *testing.T) {
	lb := NewLoadBalancer(nil, fastOpts())
	if r := lb.ServeRequest(); !r.TimedOut {
		t.Fatal("requests with no backends should time out")
	}
}

func TestRunWorkloadProducesResults(t *testing.T) {
	lb := NewLoadBalancer(backends(5), fastOpts())
	results := lb.RunWorkload(200, 200*time.Millisecond)
	if len(results) < 10 {
		t.Fatalf("workload produced only %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].At.Before(results[i-1].At) {
			t.Fatal("results not sorted by time")
		}
	}
}
