package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Errorf("counter = %d, want 10000", c.Value())
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Error("Last on empty series should report false")
	}
	base := time.Unix(0, 0)
	s.Record(base, 1)
	s.Record(base.Add(time.Second), 2)
	s.Record(base.Add(2*time.Second), 2)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.UniqueValues() != 2 {
		t.Errorf("UniqueValues = %d, want 2", s.UniqueValues())
	}
	last, ok := s.Last()
	if !ok || last.Value != 2 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	samples := s.Samples()
	samples[0].Value = 99
	if s.Samples()[0].Value == 99 {
		t.Error("Samples must return a copy")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 5}, {100, 10}, {99, 10}, {10, 1},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty input should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{5, 1, 3}
	Percentile(vals, 50)
	if vals[0] != 5 || vals[1] != 1 || vals[2] != 3 {
		t.Error("Percentile must not sort the caller's slice")
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	prop := func(raw []float64, p float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return Percentile(vals, p) == 0
		}
		pct := math.Mod(math.Abs(p), 100)
		got := Percentile(vals, pct)
		return got >= Percentile(vals, 0) && got <= Percentile(vals, 100)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("percentile out of range: %v", err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty should be 0")
	}
	if Max([]float64{2, 9, 6}) != 9 {
		t.Error("Max wrong")
	}
	if Max(nil) != 0 {
		t.Error("Max of empty should be 0")
	}
}

func TestBandwidthRecorder(t *testing.T) {
	start := time.Unix(100, 0)
	r := NewBandwidthRecorder(start, time.Second)
	r.RecordReceived(start, 1024)
	r.RecordReceived(start.Add(500*time.Millisecond), 1024)
	r.RecordReceived(start.Add(2*time.Second), 512)
	rates := r.ReceivedRates()
	if len(rates) != 3 {
		t.Fatalf("expected 3 buckets (including empty middle), got %d: %v", len(rates), rates)
	}
	if rates[0] != 2048 || rates[1] != 0 || rates[2] != 512 {
		t.Errorf("rates = %v", rates)
	}
	sum := Summarize(rates)
	if sum.MaxKBps != 2 {
		t.Errorf("MaxKBps = %v, want 2", sum.MaxKBps)
	}
	if sum.MeanKBps <= 0 || sum.MeanKBps >= 2 {
		t.Errorf("MeanKBps = %v, want in (0,2)", sum.MeanKBps)
	}
}

func TestBandwidthRecorderSentSeparate(t *testing.T) {
	start := time.Unix(0, 0)
	r := NewBandwidthRecorder(start, time.Second)
	r.RecordSent(start, 100)
	if len(r.ReceivedRates()) != 0 {
		t.Error("sent bytes must not appear in received rates")
	}
	if len(r.SentRates()) != 1 {
		t.Error("sent rates missing")
	}
}

func TestBandwidthRecorderBeforeStartClamped(t *testing.T) {
	start := time.Unix(100, 0)
	r := NewBandwidthRecorder(start, time.Second)
	r.RecordSent(start.Add(-10*time.Second), 100)
	rates := r.SentRates()
	if len(rates) != 1 || rates[0] != 100 {
		t.Errorf("early samples should be clamped to the first bucket, got %v", rates)
	}
}

func TestNewBandwidthRecorderDefaultsBucket(t *testing.T) {
	r := NewBandwidthRecorder(time.Unix(0, 0), 0)
	r.RecordSent(time.Unix(0, 0), 2048)
	if got := r.SentRates()[0]; got != 2048 {
		t.Errorf("default bucket should be 1s; rate = %v", got)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if s := d.Summary(); s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty distribution summary = %+v", s)
	}
	for _, v := range []float64{2, 4, 9} {
		d.Observe(v)
	}
	s := d.Summary()
	if s.Count != 3 || s.Max != 9 || s.Mean != 5 {
		t.Fatalf("summary = %+v, want count=3 mean=5 max=9", s)
	}
	if d.Count() != 3 {
		t.Fatalf("Count = %d, want 3", d.Count())
	}
}

func TestDistributionConcurrent(t *testing.T) {
	var d Distribution
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				d.Observe(1)
			}
		}()
	}
	wg.Wait()
	if d.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", d.Count())
	}
}
