// Package metrics provides the measurement utilities used by the experiment
// harness: monotonically increasing counters, per-node time series of
// reported cluster sizes, percentile helpers, and per-node bandwidth
// accounting used to regenerate Table 2 of the paper.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a concurrency-safe last-value metric (e.g. the engine's current
// adaptive batching window in nanoseconds). Unlike Counter it can move in
// both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta atomically (e.g. open-connection counts that
// rise on dial and fall on close).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Distribution accumulates count/sum/max of a stream of observations, enough
// to report mean and peak batch sizes without retaining samples.
type Distribution struct {
	mu    sync.Mutex
	count int64
	sum   float64
	max   float64
}

// Observe records one observation.
func (d *Distribution) Observe(v float64) {
	d.mu.Lock()
	d.count++
	d.sum += v
	if v > d.max {
		d.max = v
	}
	d.mu.Unlock()
}

// Count returns the number of observations.
func (d *Distribution) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// DistributionSummary is a point-in-time aggregate of a Distribution.
type DistributionSummary struct {
	Count int64
	Mean  float64
	Max   float64
}

// Summary returns the current aggregate.
func (d *Distribution) Summary() DistributionSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DistributionSummary{Count: d.count, Max: d.max}
	if d.count > 0 {
		s.Mean = d.sum / float64(d.count)
	}
	return s
}

// Sample is one observation in a time series: the time it was recorded and
// the observed value (for membership experiments, the reported cluster size).
type Sample struct {
	At    time.Time
	Value float64
}

// Series is a concurrency-safe append-only time series.
type Series struct {
	mu      sync.Mutex
	samples []Sample
}

// Record appends an observation.
func (s *Series) Record(at time.Time, v float64) {
	s.mu.Lock()
	s.samples = append(s.samples, Sample{At: at, Value: v})
	s.mu.Unlock()
}

// Samples returns a copy of all observations in insertion order.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Len returns the number of observations recorded so far.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Last returns the most recent observation and true, or false if empty.
func (s *Series) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// UniqueValues returns the number of distinct values observed. The paper's
// Table 1 reports the number of unique cluster sizes seen during bootstrap.
func (s *Series) UniqueValues() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := make(map[float64]struct{}, len(s.samples))
	for _, sm := range s.samples {
		set[sm.Value] = struct{}{}
	}
	return len(set)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the values using
// nearest-rank on a sorted copy. It returns 0 for an empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean, or 0 for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max returns the maximum value, or 0 for an empty input.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// BandwidthRecorder accumulates sent/received byte counts into fixed-width
// time buckets per node. Table 2 of the paper reports mean, p99 and max
// KB/s per process; the recorder produces exactly those aggregates.
type BandwidthRecorder struct {
	mu       sync.Mutex
	start    time.Time
	bucket   time.Duration
	received map[int]float64
	sent     map[int]float64
}

// NewBandwidthRecorder creates a recorder with the given bucket width.
func NewBandwidthRecorder(start time.Time, bucket time.Duration) *BandwidthRecorder {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &BandwidthRecorder{
		start:    start,
		bucket:   bucket,
		received: make(map[int]float64),
		sent:     make(map[int]float64),
	}
}

func (b *BandwidthRecorder) idx(at time.Time) int {
	d := at.Sub(b.start)
	if d < 0 {
		d = 0
	}
	return int(d / b.bucket)
}

// RecordReceived accounts bytes received at the given time.
func (b *BandwidthRecorder) RecordReceived(at time.Time, bytes int) {
	b.mu.Lock()
	b.received[b.idx(at)] += float64(bytes)
	b.mu.Unlock()
}

// RecordSent accounts bytes sent at the given time.
func (b *BandwidthRecorder) RecordSent(at time.Time, bytes int) {
	b.mu.Lock()
	b.sent[b.idx(at)] += float64(bytes)
	b.mu.Unlock()
}

// ratesPerSecond converts bucket totals into per-second rates, including
// zero-valued buckets between the first and last active bucket so quiet
// periods lower the mean, as they would in a real packet capture.
func (b *BandwidthRecorder) ratesPerSecond(buckets map[int]float64) []float64 {
	if len(buckets) == 0 {
		return nil
	}
	minIdx, maxIdx := math.MaxInt32, -1
	for i := range buckets {
		if i < minIdx {
			minIdx = i
		}
		if i > maxIdx {
			maxIdx = i
		}
	}
	secondsPerBucket := b.bucket.Seconds()
	rates := make([]float64, 0, maxIdx-minIdx+1)
	for i := minIdx; i <= maxIdx; i++ {
		rates = append(rates, buckets[i]/secondsPerBucket)
	}
	return rates
}

// ReceivedRates returns the per-bucket received rates in bytes/second.
func (b *BandwidthRecorder) ReceivedRates() []float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ratesPerSecond(b.received)
}

// SentRates returns the per-bucket sent rates in bytes/second.
func (b *BandwidthRecorder) SentRates() []float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ratesPerSecond(b.sent)
}

// BandwidthSummary is the Table-2 style aggregate for one direction.
type BandwidthSummary struct {
	MeanKBps float64
	P99KBps  float64
	MaxKBps  float64
}

// Summarize computes mean/p99/max in KB/s from byte/s rates.
func Summarize(rates []float64) BandwidthSummary {
	kb := make([]float64, len(rates))
	for i, r := range rates {
		kb[i] = r / 1024.0
	}
	return BandwidthSummary{
		MeanKBps: Mean(kb),
		P99KBps:  Percentile(kb, 99),
		MaxKBps:  Max(kb),
	}
}
