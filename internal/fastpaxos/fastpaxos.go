// Package fastpaxos implements Rapid's leaderless view-change consensus
// (§4.3): a Fast Paxos fast path in which every process broadcasts a vote for
// the multi-process cut it detected, and any process that observes a fast
// quorum (at least N − ⌊(N−1)/4⌋ processes, i.e. roughly three quarters of
// the membership) of identical votes decides without further communication.
// If votes conflict or too few arrive, a randomized fallback timer starts a
// classical Paxos recovery round (package paxos).
package fastpaxos

import (
	"math/rand"
	"sync"

	"repro/internal/node"
	"repro/internal/paxos"
	"repro/internal/remoting"
)

// Config carries the static parameters of one consensus instance.
type Config struct {
	// MyAddr is this process' address.
	MyAddr node.Addr
	// MyIndex is this process' index in the sorted membership.
	MyIndex int
	// MembershipSize is N.
	MembershipSize int
	// ConfigurationID stamps all messages.
	ConfigurationID uint64
	// Client sends direct messages (used by the recovery path).
	Client paxos.Sender
	// Broadcaster sends votes and recovery messages to the membership.
	Broadcaster paxos.Broadcaster
	// VoteSink, when non-nil, receives this process' fast-round vote instead
	// of it being broadcast immediately. The membership service uses this to
	// coalesce votes with alerts into one batched wire message per window
	// (§6); the recovery path always uses Broadcaster directly.
	VoteSink func(*remoting.FastRoundPhase2b)
	// OnDecide is invoked exactly once with the decided proposal.
	OnDecide func([]node.Endpoint)
}

// FastPaxos is one consensus instance. All methods are safe for concurrent use.
type FastPaxos struct {
	cfg    Config
	inner  *paxos.Paxos
	quorum int

	mu            sync.Mutex
	decided       bool
	votesReceived map[node.Addr]bool
	votesPerValue map[string]*tally
	proposed      bool
}

type tally struct {
	count int
	value []node.Endpoint
}

// FastQuorumSize returns the number of identical votes needed for the fast
// path with n processes: n − ⌊(n−1)/4⌋.
func FastQuorumSize(n int) int {
	if n <= 0 {
		return 1
	}
	return n - (n-1)/4
}

// New creates a consensus instance for one configuration.
func New(cfg Config) *FastPaxos {
	f := &FastPaxos{
		cfg:           cfg,
		quorum:        FastQuorumSize(cfg.MembershipSize),
		votesReceived: make(map[node.Addr]bool),
		votesPerValue: make(map[string]*tally),
	}
	f.inner = paxos.New(paxos.Config{
		MyAddr:          cfg.MyAddr,
		MyIndex:         cfg.MyIndex,
		MembershipSize:  cfg.MembershipSize,
		ConfigurationID: cfg.ConfigurationID,
		Client:          cfg.Client,
		Broadcaster:     cfg.Broadcaster,
		OnDecide:        f.decide,
	})
	return f
}

// Propose casts this process' vote for the given cut-detection proposal: the
// vote is registered with the recovery path (for safety) and broadcast to the
// membership as a fast-round phase 2b message.
func (f *FastPaxos) Propose(proposal []node.Endpoint) {
	f.mu.Lock()
	if f.decided || f.proposed {
		f.mu.Unlock()
		return
	}
	f.proposed = true
	f.mu.Unlock()

	f.inner.RegisterFastRoundVote(proposal)
	vote := &remoting.FastRoundPhase2b{
		Sender:          f.cfg.MyAddr,
		ConfigurationID: f.cfg.ConfigurationID,
		Proposal:        proposal,
	}
	if f.cfg.VoteSink != nil {
		f.cfg.VoteSink(vote)
		return
	}
	f.cfg.Broadcaster.Broadcast(&remoting.Request{FastRound: vote})
}

// HasProposed reports whether this process already cast its fast-round vote.
func (f *FastPaxos) HasProposed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.proposed
}

// Decided reports whether the instance reached a decision.
func (f *FastPaxos) Decided() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.decided
}

// HandleFastRoundVote counts one fast-round vote. A fast quorum of identical
// votes decides immediately.
func (f *FastPaxos) HandleFastRoundVote(msg *remoting.FastRoundPhase2b) {
	if msg.ConfigurationID != f.cfg.ConfigurationID {
		return
	}
	f.mu.Lock()
	if f.decided || f.votesReceived[msg.Sender] {
		f.mu.Unlock()
		return
	}
	f.votesReceived[msg.Sender] = true
	key := paxos.Key(msg.Proposal)
	t, ok := f.votesPerValue[key]
	if !ok {
		t = &tally{value: append([]node.Endpoint(nil), msg.Proposal...)}
		f.votesPerValue[key] = t
	}
	t.count++
	if t.count < f.quorum {
		f.mu.Unlock()
		return
	}
	value := t.value
	f.mu.Unlock()
	f.decide(value)
}

// VotesForLeadingProposal returns the highest vote count observed so far and
// the total number of votes received (for diagnostics and experiments).
func (f *FastPaxos) VotesForLeadingProposal() (leading, total int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, t := range f.votesPerValue {
		if t.count > leading {
			leading = t.count
		}
	}
	return leading, len(f.votesReceived)
}

// StartClassicalRound begins the Paxos recovery path if no decision has been
// reached. The membership service calls this from its fallback timer.
func (f *FastPaxos) StartClassicalRound() {
	f.mu.Lock()
	if f.decided {
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	f.inner.StartPhase1a(2)
}

// HandlePhase1a routes a recovery message to the inner Paxos instance.
func (f *FastPaxos) HandlePhase1a(msg *remoting.Phase1a) { f.inner.HandlePhase1a(msg) }

// HandlePhase1b routes a recovery message to the inner Paxos instance.
func (f *FastPaxos) HandlePhase1b(msg *remoting.Phase1b) { f.inner.HandlePhase1b(msg) }

// HandlePhase2a routes a recovery message to the inner Paxos instance.
func (f *FastPaxos) HandlePhase2a(msg *remoting.Phase2a) { f.inner.HandlePhase2a(msg) }

// HandlePhase2b routes a recovery message to the inner Paxos instance.
func (f *FastPaxos) HandlePhase2b(msg *remoting.Phase2b) { f.inner.HandlePhase2b(msg) }

// decide is the single decision funnel shared by the fast and recovery paths:
// it surfaces the decision to the membership service exactly once.
func (f *FastPaxos) decide(value []node.Endpoint) {
	f.mu.Lock()
	if f.decided {
		f.mu.Unlock()
		return
	}
	f.decided = true
	onDecide := f.cfg.OnDecide
	f.mu.Unlock()
	if onDecide != nil {
		onDecide(value)
	}
}

// RandomFallbackJitter returns a deterministic-per-node jitter multiplier in
// [0, n) used to stagger fallback timers so that a single coordinator usually
// emerges. Exposed here so that the membership service and tests share the
// same policy.
func RandomFallbackJitter(seed int64, n int) int {
	if n <= 1 {
		return 0
	}
	return rand.New(rand.NewSource(seed)).Intn(n)
}
