package fastpaxos

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/node"
	"repro/internal/paxos"
	"repro/internal/remoting"
)

// router wires FastPaxos instances with synchronous in-memory delivery.
type router struct {
	mu    sync.Mutex
	nodes map[node.Addr]*FastPaxos
	drop  map[node.Addr]bool
}

func newRouter() *router {
	return &router{nodes: make(map[node.Addr]*FastPaxos), drop: make(map[node.Addr]bool)}
}

func (r *router) dispatch(to node.Addr, req *remoting.Request) {
	r.mu.Lock()
	f, ok := r.nodes[to]
	dropped := r.drop[to]
	r.mu.Unlock()
	if !ok || dropped {
		return
	}
	switch {
	case req.FastRound != nil:
		f.HandleFastRoundVote(req.FastRound)
	case req.P1a != nil:
		f.HandlePhase1a(req.P1a)
	case req.P1b != nil:
		f.HandlePhase1b(req.P1b)
	case req.P2a != nil:
		f.HandlePhase2a(req.P2a)
	case req.P2b != nil:
		f.HandlePhase2b(req.P2b)
	}
}

type nodeClient struct {
	r       *router
	members []node.Addr
}

func (c *nodeClient) SendBestEffort(to node.Addr, req *remoting.Request) { c.r.dispatch(to, req) }
func (c *nodeClient) Broadcast(req *remoting.Request) {
	for _, m := range c.members {
		c.r.dispatch(m, req)
	}
}

type cluster struct {
	router    *router
	addrs     []node.Addr
	instances map[node.Addr]*FastPaxos
	mu        sync.Mutex
	decisions map[node.Addr][]node.Endpoint
}

func newCluster(n int, configID uint64) *cluster {
	c := &cluster{
		router:    newRouter(),
		instances: make(map[node.Addr]*FastPaxos),
		decisions: make(map[node.Addr][]node.Endpoint),
	}
	for i := 0; i < n; i++ {
		c.addrs = append(c.addrs, node.Addr(fmt.Sprintf("n%03d:1", i)))
	}
	for i, addr := range c.addrs {
		addr := addr
		client := &nodeClient{r: c.router, members: c.addrs}
		f := New(Config{
			MyAddr:          addr,
			MyIndex:         i,
			MembershipSize:  n,
			ConfigurationID: configID,
			Client:          client,
			Broadcaster:     client,
			OnDecide: func(v []node.Endpoint) {
				c.mu.Lock()
				c.decisions[addr] = v
				c.mu.Unlock()
			},
		})
		c.router.nodes[addr] = f
		c.instances[addr] = f
	}
	return c
}

func (c *cluster) decisionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.decisions)
}

func (c *cluster) uniqueDecisions() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool)
	for _, v := range c.decisions {
		out[paxos.Key(v)] = true
	}
	return out
}

func proposal(addrs ...string) []node.Endpoint {
	out := make([]node.Endpoint, len(addrs))
	for i, a := range addrs {
		out[i] = node.Endpoint{Addr: node.Addr(a), ID: node.ID{High: uint64(i + 1), Low: 3}}
	}
	return out
}

func TestFastQuorumSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 4}, {6, 5},
		{10, 8}, {100, 76}, {1000, 751},
	}
	for _, c := range cases {
		if got := FastQuorumSize(c.n); got != c.want {
			t.Errorf("FastQuorumSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFastPathDecidesWhenAllVotesIdentical(t *testing.T) {
	c := newCluster(10, 7)
	prop := proposal("dead-1:1", "dead-2:1")
	for _, f := range c.instances {
		f.Propose(prop)
	}
	if c.decisionCount() != 10 {
		t.Fatalf("decisions = %d, want 10", c.decisionCount())
	}
	uniq := c.uniqueDecisions()
	if len(uniq) != 1 || !uniq[paxos.Key(prop)] {
		t.Fatalf("unexpected decisions: %v", uniq)
	}
}

func TestFastPathDecidesWithExactlyQuorumVotes(t *testing.T) {
	const n = 8
	c := newCluster(n, 7)
	prop := proposal("dead:1")
	quorum := FastQuorumSize(n) // 7681 -> for n=8: 8-1=7... (8-1)/4=1, so 7
	for i := 0; i < quorum; i++ {
		c.instances[c.addrs[i]].Propose(prop)
	}
	if c.decisionCount() != n {
		t.Fatalf("decisions = %d, want all %d nodes to learn via the fast path", c.decisionCount(), n)
	}
}

func TestFastPathDoesNotDecideBelowQuorum(t *testing.T) {
	const n = 8
	c := newCluster(n, 7)
	prop := proposal("dead:1")
	quorum := FastQuorumSize(n)
	for i := 0; i < quorum-1; i++ {
		c.instances[c.addrs[i]].Propose(prop)
	}
	if c.decisionCount() != 0 {
		t.Fatalf("decided with %d < quorum %d votes", quorum-1, quorum)
	}
}

func TestConflictingVotesFallBackToClassicalPaxos(t *testing.T) {
	const n = 8
	c := newCluster(n, 7)
	vA, vB := proposal("a:1"), proposal("b:1")
	for i, addr := range c.addrs {
		if i < n/2 {
			c.instances[addr].Propose(vA)
		} else {
			c.instances[addr].Propose(vB)
		}
	}
	if c.decisionCount() != 0 {
		t.Fatalf("split votes must not reach a fast decision, got %d decisions", c.decisionCount())
	}
	// Fallback timers fire: one (or more) nodes start the recovery round.
	c.instances[c.addrs[0]].StartClassicalRound()
	if c.decisionCount() == 0 {
		t.Fatal("classical recovery did not produce a decision")
	}
	uniq := c.uniqueDecisions()
	if len(uniq) != 1 {
		t.Fatalf("conflicting decisions after recovery: %v", uniq)
	}
	if !uniq[paxos.Key(vA)] && !uniq[paxos.Key(vB)] {
		t.Fatalf("recovery decided a value nobody proposed: %v", uniq)
	}
}

func TestDuplicateVotesFromSameSenderIgnored(t *testing.T) {
	const n = 8
	c := newCluster(n, 7)
	f := c.instances[c.addrs[0]]
	prop := proposal("dead:1")
	for i := 0; i < 20; i++ {
		f.HandleFastRoundVote(&remoting.FastRoundPhase2b{
			Sender:          "same:1",
			ConfigurationID: 7,
			Proposal:        prop,
		})
	}
	leading, total := f.VotesForLeadingProposal()
	if leading != 1 || total != 1 {
		t.Fatalf("duplicate votes counted: leading=%d total=%d", leading, total)
	}
}

func TestVotesFromWrongConfigurationIgnored(t *testing.T) {
	c := newCluster(4, 7)
	f := c.instances[c.addrs[0]]
	for i := 0; i < 4; i++ {
		f.HandleFastRoundVote(&remoting.FastRoundPhase2b{
			Sender:          node.Addr(fmt.Sprintf("x%d:1", i)),
			ConfigurationID: 8,
			Proposal:        proposal("dead:1"),
		})
	}
	if f.Decided() {
		t.Fatal("votes from another configuration must not decide")
	}
}

func TestProposeIsIdempotent(t *testing.T) {
	c := newCluster(4, 7)
	f := c.instances[c.addrs[0]]
	f.Propose(proposal("a:1"))
	if !f.HasProposed() {
		t.Fatal("HasProposed should be true after Propose")
	}
	// A second, different proposal from the same node must not be cast.
	f.Propose(proposal("b:1"))
	peer := c.instances[c.addrs[1]]
	leading, total := peer.VotesForLeadingProposal()
	if total != 1 || leading != 1 {
		t.Fatalf("peer saw %d votes (leading %d), want exactly the first vote", total, leading)
	}
}

func TestDecideCalledExactlyOnce(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	f := New(Config{
		MyAddr:          "a:1",
		MyIndex:         0,
		MembershipSize:  2,
		ConfigurationID: 1,
		Client:          &nodeClient{r: newRouter()},
		Broadcaster:     &nodeClient{r: newRouter()},
		OnDecide: func([]node.Endpoint) {
			mu.Lock()
			calls++
			mu.Unlock()
		},
	})
	prop := proposal("dead:1")
	f.HandleFastRoundVote(&remoting.FastRoundPhase2b{Sender: "a:1", ConfigurationID: 1, Proposal: prop})
	f.HandleFastRoundVote(&remoting.FastRoundPhase2b{Sender: "b:1", ConfigurationID: 1, Proposal: prop})
	f.HandleFastRoundVote(&remoting.FastRoundPhase2b{Sender: "c:1", ConfigurationID: 1, Proposal: prop})
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("OnDecide called %d times, want 1", calls)
	}
}

func TestRandomFallbackJitterBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		j := RandomFallbackJitter(seed, 10)
		if j < 0 || j >= 10 {
			t.Fatalf("jitter %d out of range", j)
		}
	}
	if RandomFallbackJitter(1, 1) != 0 || RandomFallbackJitter(1, 0) != 0 {
		t.Fatal("jitter for n<=1 should be 0")
	}
}

func TestAgreementPropertyUnderPartialVoting(t *testing.T) {
	// Property: whatever subset of nodes votes (all for one of two values),
	// and whichever nodes later run recovery, no two nodes decide different
	// values.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		c := newCluster(n, 1)
		vA, vB := proposal("vA:1"), proposal("vB:1")
		for _, addr := range c.addrs {
			switch r.Intn(3) {
			case 0:
				c.instances[addr].Propose(vA)
			case 1:
				c.instances[addr].Propose(vB)
			default:
				// does not vote
			}
		}
		// A random subset of nodes times out and runs recovery.
		for _, addr := range c.addrs {
			if r.Intn(2) == 0 {
				c.instances[addr].StartClassicalRound()
			}
		}
		return len(c.uniqueDecisions()) <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
