// Package zkmock models membership management through a logically
// centralized coordination service, the way applications use Apache ZooKeeper
// (§2.1 of the paper): members register ephemeral nodes kept alive by session
// heartbeats, and discover each other by reading the group and registering
// one-shot watches.
//
// The model captures the behaviours the paper measures against:
//
//   - Watch herds: every membership change fires a notification to every
//     watcher, each of which re-reads the full member list and re-registers
//     its watch, so the i-th join triggers i−1 full reads.
//   - Eventually consistent client views: clients observe different
//     sequences of membership sizes while notifications and re-reads race.
//   - Session-expiry based failure detection: a member is removed only when
//     its session times out, regardless of what other members observe. A
//     member whose egress path still works keeps its session alive even if
//     nobody can reach it (the Figure 9 blind spot).
package zkmock

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

const messageKind = "zk"

// message is the wire payload for the ZooKeeper-style protocol.
type message struct {
	Type    string // "register", "heartbeat", "read-watch", "watch-fire", "deregister"
	From    node.Addr
	Members []node.Addr // responses: the full group listing
	Version uint64
}

func encode(m *message) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(m)
	return buf.Bytes()
}

func decode(data []byte) (*message, bool) {
	var m message
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, false
	}
	return &m, true
}

func wrap(m *message) *remoting.Request {
	return &remoting.Request{Custom: &remoting.CustomMessage{Kind: messageKind, Data: encode(m)}}
}

func wrapResp(m *message) *remoting.Response {
	return &remoting.Response{Custom: &remoting.CustomMessage{Kind: messageKind, Data: encode(m)}}
}

// RegistryOptions tune the coordination service.
type RegistryOptions struct {
	// SessionTimeout is how long a member may go without heartbeats before
	// its ephemeral registration is expired.
	SessionTimeout time.Duration
	// ExpiryTick is how often sessions are checked.
	ExpiryTick time.Duration
	// Clock supplies time.
	Clock simclock.Clock
}

// DefaultRegistryOptions mirrors common ZooKeeper deployments (10 s sessions).
func DefaultRegistryOptions() RegistryOptions {
	return RegistryOptions{SessionTimeout: 10 * time.Second, ExpiryTick: time.Second, Clock: simclock.NewReal()}
}

// Scaled divides every duration by factor.
func (o RegistryOptions) Scaled(factor float64) RegistryOptions {
	if factor <= 0 {
		return o
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) / factor)
		if s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	o.SessionTimeout = scale(o.SessionTimeout)
	o.ExpiryTick = scale(o.ExpiryTick)
	return o
}

// Registry is the coordination service (standing in for a 3-node ensemble).
type Registry struct {
	opts   RegistryOptions
	addr   node.Addr
	net    transport.Network
	client transport.Client
	clock  simclock.Clock

	mu       sync.Mutex
	sessions map[node.Addr]time.Time
	watchers map[node.Addr]bool
	version  uint64
	stopped  bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// StartRegistry boots the coordination service at the given address.
func StartRegistry(addr node.Addr, opts RegistryOptions, net transport.Network) (*Registry, error) {
	if opts.Clock == nil {
		opts.Clock = simclock.NewReal()
	}
	if opts.SessionTimeout <= 0 {
		opts.SessionTimeout = 10 * time.Second
	}
	if opts.ExpiryTick <= 0 {
		opts.ExpiryTick = time.Second
	}
	r := &Registry{
		opts:     opts,
		addr:     addr,
		net:      net,
		client:   net.Client(addr),
		clock:    opts.Clock,
		sessions: make(map[node.Addr]time.Time),
		watchers: make(map[node.Addr]bool),
		stopCh:   make(chan struct{}),
	}
	if err := net.Register(addr, r); err != nil {
		return nil, err
	}
	r.wg.Add(1)
	go r.expiryLoop()
	return r, nil
}

// Stop halts the registry.
func (r *Registry) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stopCh)
	r.wg.Wait()
	r.net.Deregister(r.addr)
}

// Addr returns the registry's address.
func (r *Registry) Addr() node.Addr { return r.addr }

// GroupSize returns the number of registered (non-expired) members.
func (r *Registry) GroupSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// membersLocked returns the sorted group listing.
func (r *Registry) membersLocked() []node.Addr {
	out := make([]node.Addr, 0, len(r.sessions))
	for a := range r.sessions {
		out = append(out, a)
	}
	node.SortAddrs(out)
	return out
}

// fireWatchesLocked notifies every one-shot watcher and clears the watch set
// (this is the herd: every watcher will come back to re-read and re-watch).
func (r *Registry) fireWatchesLocked() {
	watchers := make([]node.Addr, 0, len(r.watchers))
	for w := range r.watchers {
		watchers = append(watchers, w)
	}
	r.watchers = make(map[node.Addr]bool)
	version := r.version
	for _, w := range watchers {
		r.client.SendBestEffort(w, wrap(&message{Type: "watch-fire", From: r.addr, Version: version}))
	}
}

// expiryLoop removes members whose sessions have timed out.
func (r *Registry) expiryLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case <-r.clock.After(r.opts.ExpiryTick):
		}
		now := r.clock.Now()
		r.mu.Lock()
		expired := false
		for a, last := range r.sessions {
			if now.Sub(last) >= r.opts.SessionTimeout {
				delete(r.sessions, a)
				expired = true
			}
		}
		if expired {
			r.version++
			r.fireWatchesLocked()
		}
		r.mu.Unlock()
	}
}

// HandleRequest implements transport.Handler for the registry.
func (r *Registry) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	if req == nil || req.Custom == nil || req.Custom.Kind != messageKind {
		return remoting.AckResponse(), nil
	}
	m, ok := decode(req.Custom.Data)
	if !ok {
		return remoting.AckResponse(), nil
	}
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	switch m.Type {
	case "register":
		if _, exists := r.sessions[m.From]; !exists {
			r.sessions[m.From] = now
			r.version++
			r.fireWatchesLocked()
		} else {
			r.sessions[m.From] = now
		}
		return wrapResp(&message{Type: "ok", Version: r.version}), nil
	case "deregister":
		if _, exists := r.sessions[m.From]; exists {
			delete(r.sessions, m.From)
			r.version++
			r.fireWatchesLocked()
		}
		return wrapResp(&message{Type: "ok", Version: r.version}), nil
	case "heartbeat":
		if _, exists := r.sessions[m.From]; exists {
			r.sessions[m.From] = now
		}
		return wrapResp(&message{Type: "ok", Version: r.version}), nil
	case "read-watch":
		r.watchers[m.From] = true
		return wrapResp(&message{Type: "listing", Members: r.membersLocked(), Version: r.version}), nil
	default:
		return remoting.AckResponse(), nil
	}
}

var _ transport.Handler = (*Registry)(nil)

// ClientOptions tune a member agent.
type ClientOptions struct {
	// HeartbeatInterval is the session keepalive period.
	HeartbeatInterval time.Duration
	// ReadTimeout bounds registry RPCs.
	ReadTimeout time.Duration
	// Clock supplies time.
	Clock simclock.Clock
}

// DefaultClientOptions uses a heartbeat of one third of the default session.
func DefaultClientOptions() ClientOptions {
	return ClientOptions{HeartbeatInterval: 3 * time.Second, ReadTimeout: 2 * time.Second, Clock: simclock.NewReal()}
}

// Scaled divides every duration by factor.
func (o ClientOptions) Scaled(factor float64) ClientOptions {
	if factor <= 0 {
		return o
	}
	scale := func(d time.Duration) time.Duration {
		s := time.Duration(float64(d) / factor)
		if s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	o.HeartbeatInterval = scale(o.HeartbeatInterval)
	o.ReadTimeout = scale(o.ReadTimeout)
	return o
}

// Client is a member agent: it registers itself, heartbeats, and maintains a
// watched view of the group.
type Client struct {
	opts     ClientOptions
	addr     node.Addr
	registry node.Addr
	net      transport.Network
	client   transport.Client
	clock    simclock.Clock

	mu       sync.Mutex
	members  []node.Addr
	reads    int
	onChange []func(members []node.Addr)
	stopped  bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// StartClient registers a member with the registry and begins heartbeating
// and watching the group.
func StartClient(addr node.Addr, registry node.Addr, opts ClientOptions, net transport.Network) (*Client, error) {
	if opts.Clock == nil {
		opts.Clock = simclock.NewReal()
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 3 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 2 * time.Second
	}
	c := &Client{
		opts:     opts,
		addr:     addr,
		registry: registry,
		net:      net,
		client:   net.Client(addr),
		clock:    opts.Clock,
		stopCh:   make(chan struct{}),
	}
	if err := net.Register(addr, c); err != nil {
		return nil, err
	}
	c.call(&message{Type: "register", From: addr})
	c.readAndWatch()
	c.wg.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// Stop halts the client and removes its registration.
func (c *Client) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	c.call(&message{Type: "deregister", From: c.addr})
	close(c.stopCh)
	c.wg.Wait()
	c.net.Deregister(c.addr)
}

// Addr returns the client's address.
func (c *Client) Addr() node.Addr { return c.addr }

// NumAlive returns the size of the group as last read from the registry.
func (c *Client) NumAlive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.members)
}

// Reads returns how many full group reads this client has performed (a proxy
// for the herd cost).
func (c *Client) Reads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads
}

// OnChange registers a callback invoked with the member list after every read.
func (c *Client) OnChange(cb func(members []node.Addr)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = append(c.onChange, cb)
}

func (c *Client) call(m *message) (*message, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ReadTimeout)
	defer cancel()
	resp, err := c.client.Send(ctx, c.registry, wrap(m))
	if err != nil || resp == nil || resp.Custom == nil {
		return nil, false
	}
	return decode(resp.Custom.Data)
}

// readAndWatch performs the read + watch re-registration cycle.
func (c *Client) readAndWatch() {
	resp, ok := c.call(&message{Type: "read-watch", From: c.addr})
	if !ok || resp.Type != "listing" {
		return
	}
	c.mu.Lock()
	c.members = resp.Members
	c.reads++
	callbacks := make([]func([]node.Addr), len(c.onChange))
	copy(callbacks, c.onChange)
	members := append([]node.Addr(nil), resp.Members...)
	c.mu.Unlock()
	for _, cb := range callbacks {
		cb(members)
	}
}

func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.clock.After(c.opts.HeartbeatInterval):
		}
		c.call(&message{Type: "heartbeat", From: c.addr})
	}
}

// HandleRequest implements transport.Handler: the client only reacts to watch
// notifications, by re-reading the group and re-registering its watch.
func (c *Client) HandleRequest(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	if req == nil || req.Custom == nil || req.Custom.Kind != messageKind {
		return remoting.AckResponse(), nil
	}
	m, ok := decode(req.Custom.Data)
	if !ok || m.Type != "watch-fire" {
		return remoting.AckResponse(), nil
	}
	c.mu.Lock()
	stopped := c.stopped
	c.mu.Unlock()
	if !stopped {
		c.readAndWatch()
	}
	return remoting.AckResponse(), nil
}

var _ transport.Handler = (*Client)(nil)
