package zkmock

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/simnet"
)

const registryAddr = node.Addr("zk:2181")

func regOpts() RegistryOptions { return DefaultRegistryOptions().Scaled(50) }
func cliOpts() ClientOptions   { return DefaultClientOptions().Scaled(50) }
func caddr(i int) node.Addr    { return node.Addr(fmt.Sprintf("zkc-%02d:1", i)) }

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestRegisterAndDiscover(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	reg, err := StartRegistry(registryAddr, regOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Stop()
	const n = 5
	var clients []*Client
	for i := 0; i < n; i++ {
		c, err := StartClient(caddr(i), registryAddr, cliOpts(), net)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	defer func() {
		for _, c := range clients {
			c.Stop()
		}
	}()
	if reg.GroupSize() != n {
		t.Fatalf("registry group size = %d, want %d", reg.GroupSize(), n)
	}
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, c := range clients {
			if c.NumAlive() != n {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("clients did not converge to group size %d", n)
	}
}

func TestWatchHerdOnJoins(t *testing.T) {
	// The i-th registration fires a watch at each of the i-1 existing
	// watchers, each of which re-reads the group: the total number of reads
	// grows quadratically with the group size (the documented ZooKeeper herd).
	net := simnet.New(simnet.Options{Seed: 2})
	reg, err := StartRegistry(registryAddr, regOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Stop()
	const n = 8
	var clients []*Client
	for i := 0; i < n; i++ {
		c, err := StartClient(caddr(i), registryAddr, cliOpts(), net)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	defer func() {
		for _, c := range clients {
			c.Stop()
		}
	}()
	waitUntil(t, 10*time.Second, func() bool {
		for _, c := range clients {
			if c.NumAlive() != n {
				return false
			}
		}
		return true
	})
	totalReads := 0
	for _, c := range clients {
		totalReads += c.Reads()
	}
	// Each client does one initial read; the herd adds re-reads at every
	// registration (watch notifications can coalesce, so we only require
	// clear evidence of herd re-reads beyond the n initial reads).
	if totalReads < n+n/2 {
		t.Fatalf("expected a watch herd (many re-reads), got only %d total reads", totalReads)
	}
}

func TestSessionExpiryRemovesSilentMember(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 3})
	reg, err := StartRegistry(registryAddr, regOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Stop()
	c0, err := StartClient(caddr(0), registryAddr, cliOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Stop()
	c1, err := StartClient(caddr(1), registryAddr, cliOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	if reg.GroupSize() != 2 {
		t.Fatalf("group size = %d, want 2", reg.GroupSize())
	}
	// Crash client 1: its heartbeats stop and its session expires.
	net.Crash(c1.Addr())
	if !waitUntil(t, 20*time.Second, func() bool { return reg.GroupSize() == 1 }) {
		t.Fatal("silent member's session never expired")
	}
	if !waitUntil(t, 10*time.Second, func() bool { return c0.NumAlive() == 1 }) {
		t.Fatal("surviving client was not notified of the expiry")
	}
}

func TestIngressBlockedClientKeepsSessionAlive(t *testing.T) {
	// The Figure 9 blind spot: a client that cannot receive any packets keeps
	// its registration because its outgoing heartbeats still reach the
	// registry, so ZooKeeper-style membership does not react at all.
	net := simnet.New(simnet.Options{Seed: 4})
	reg, err := StartRegistry(registryAddr, regOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Stop()
	c0, err := StartClient(caddr(0), registryAddr, cliOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Stop()
	c1, err := StartClient(caddr(1), registryAddr, cliOpts(), net)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Stop()
	net.SetIngressLoss(c1.Addr(), 1.0)
	// Wait for several session timeouts; the victim must still be registered.
	time.Sleep(5 * regOpts().SessionTimeout)
	if reg.GroupSize() != 2 {
		t.Fatalf("registry removed a member that still sends heartbeats: size=%d", reg.GroupSize())
	}
}
