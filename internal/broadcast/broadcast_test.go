package broadcast

import (
	"context"
	"sync"
	"testing"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// recordingClient captures best-effort sends for inspection.
type recordingClient struct {
	mu    sync.Mutex
	sends []node.Addr
}

func (c *recordingClient) Send(_ context.Context, to node.Addr, _ *remoting.Request) (*remoting.Response, error) {
	c.mu.Lock()
	c.sends = append(c.sends, to)
	c.mu.Unlock()
	return remoting.AckResponse(), nil
}

func (c *recordingClient) SendBestEffort(to node.Addr, _ *remoting.Request) {
	c.mu.Lock()
	c.sends = append(c.sends, to)
	c.mu.Unlock()
}

func (c *recordingClient) sent() []node.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]node.Addr, len(c.sends))
	copy(out, c.sends)
	return out
}

var _ transport.Client = (*recordingClient)(nil)

func members(n int) []node.Addr {
	out := make([]node.Addr, n)
	for i := range out {
		out[i] = node.Addr(string(rune('a'+i)) + ":1")
	}
	return out
}

func TestUnicastToAllSendsToEveryMember(t *testing.T) {
	cl := &recordingClient{}
	b := NewUnicastToAll(cl)
	b.SetMembership(members(5))
	b.Broadcast(&remoting.Request{Leave: &remoting.LeaveMessage{}})
	got := cl.sent()
	if len(got) != 5 {
		t.Fatalf("broadcast reached %d members, want 5", len(got))
	}
	seen := make(map[node.Addr]bool)
	for _, a := range got {
		seen[a] = true
	}
	if len(seen) != 5 {
		t.Fatalf("broadcast had duplicate destinations: %v", got)
	}
}

func TestUnicastToAllEmptyMembershipIsNoop(t *testing.T) {
	cl := &recordingClient{}
	b := NewUnicastToAll(cl)
	b.Broadcast(&remoting.Request{})
	if len(cl.sent()) != 0 {
		t.Fatal("broadcast with no membership should send nothing")
	}
}

func TestUnicastToAllSetMembershipCopies(t *testing.T) {
	cl := &recordingClient{}
	b := NewUnicastToAll(cl)
	m := members(3)
	b.SetMembership(m)
	m[0] = "mutated:1"
	got := b.Members()
	if got[0] == "mutated:1" {
		t.Fatal("SetMembership must copy the slice")
	}
}

func TestUnicastToAllMembershipReplacedOnViewChange(t *testing.T) {
	cl := &recordingClient{}
	b := NewUnicastToAll(cl)
	b.SetMembership(members(5))
	b.SetMembership(members(2))
	b.Broadcast(&remoting.Request{})
	if len(cl.sent()) != 2 {
		t.Fatalf("broadcast after view change reached %d members, want 2", len(cl.sent()))
	}
}

func TestGossipFanoutRespected(t *testing.T) {
	cl := &recordingClient{}
	g := NewGossip(cl, "self:0", 3, 1)
	g.SetMembership(members(10))
	g.Broadcast(&remoting.Request{})
	if len(cl.sent()) != 3 {
		t.Fatalf("gossip broadcast sent %d messages, want fanout 3", len(cl.sent()))
	}
}

func TestGossipFanoutLargerThanMembership(t *testing.T) {
	cl := &recordingClient{}
	g := NewGossip(cl, "self:0", 10, 1)
	g.SetMembership(members(4))
	g.Broadcast(&remoting.Request{})
	if len(cl.sent()) != 4 {
		t.Fatalf("gossip should cap fanout at membership size, sent %d", len(cl.sent()))
	}
}

func TestGossipMinimumFanout(t *testing.T) {
	cl := &recordingClient{}
	g := NewGossip(cl, "self:0", 0, 1)
	g.SetMembership(members(4))
	g.Broadcast(&remoting.Request{})
	if len(cl.sent()) != 1 {
		t.Fatalf("fanout below 1 should be clamped to 1, sent %d", len(cl.sent()))
	}
}

func TestGossipEmptyMembership(t *testing.T) {
	cl := &recordingClient{}
	g := NewGossip(cl, "self:0", 3, 1)
	g.Broadcast(&remoting.Request{})
	if len(cl.sent()) != 0 {
		t.Fatal("gossip with no members should send nothing")
	}
}

func TestGossipTargetsDistinct(t *testing.T) {
	cl := &recordingClient{}
	g := NewGossip(cl, "self:0", 5, 99)
	g.SetMembership(members(20))
	g.Broadcast(&remoting.Request{})
	seen := make(map[node.Addr]bool)
	for _, a := range cl.sent() {
		if seen[a] {
			t.Fatalf("gossip chose the same target twice: %v", a)
		}
		seen[a] = true
	}
}
