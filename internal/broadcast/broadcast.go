// Package broadcast provides the dissemination primitives used for alerts and
// consensus votes. Rapid's default is a best-effort unicast-to-all
// broadcaster (the counting fast path only needs a best-effort channel); a
// fanout gossip broadcaster is provided as an alternative with lower
// per-sender cost at the price of extra hops.
package broadcast

import (
	"math/rand"
	"sync"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// Broadcaster delivers a request to every member of the current membership.
type Broadcaster interface {
	// Broadcast sends req to all current members, best-effort.
	Broadcast(req *remoting.Request)
	// SetMembership replaces the recipient list after a view change.
	SetMembership(members []node.Addr)
}

// UnicastToAll sends each broadcast directly to every member. This mirrors
// Rapid's default broadcaster: O(N) messages per broadcast from the sender.
type UnicastToAll struct {
	client transport.Client

	mu      sync.RWMutex
	members []node.Addr
}

// NewUnicastToAll creates a broadcaster sending via the given client.
func NewUnicastToAll(client transport.Client) *UnicastToAll {
	return &UnicastToAll{client: client}
}

// SetMembership implements Broadcaster.
func (b *UnicastToAll) SetMembership(members []node.Addr) {
	copied := make([]node.Addr, len(members))
	copy(copied, members)
	b.mu.Lock()
	b.members = copied
	b.mu.Unlock()
}

// Broadcast implements Broadcaster.
func (b *UnicastToAll) Broadcast(req *remoting.Request) {
	b.mu.RLock()
	members := b.members
	b.mu.RUnlock()
	for _, m := range members {
		b.client.SendBestEffort(m, req)
	}
}

// Members returns the current recipient list (for tests).
func (b *UnicastToAll) Members() []node.Addr {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]node.Addr, len(b.members))
	copy(out, b.members)
	return out
}

// Gossip forwards each broadcast to a random fanout subset of the membership;
// receivers are expected to re-broadcast (the membership service does this
// for batched alert/vote messages, deduplicating on per-sender sequence
// numbers). It reduces per-sender cost from O(N) to O(fanout) per hop.
type Gossip struct {
	client transport.Client
	self   node.Addr
	fanout int

	// rngMu guards the rng and the scratch index permutation reused across
	// Broadcast calls, keeping recipient sampling O(fanout) per call with no
	// allocation.
	rngMu   sync.Mutex
	rng     *rand.Rand
	scratch []int

	mu      sync.RWMutex
	members []node.Addr
}

// NewGossip creates a gossip broadcaster with the given fanout (minimum 1).
// The sender's own address is excluded from recipient sampling: the local
// process applies its batches directly, so a self-send would only waste a
// fanout slot.
func NewGossip(client transport.Client, self node.Addr, fanout int, seed int64) *Gossip {
	if fanout < 1 {
		fanout = 1
	}
	return &Gossip{client: client, self: self, fanout: fanout, rng: rand.New(rand.NewSource(seed))}
}

// SetMembership implements Broadcaster. The local address is filtered out
// once here so Broadcast's sampling stays O(fanout).
func (g *Gossip) SetMembership(members []node.Addr) {
	copied := make([]node.Addr, 0, len(members))
	for _, m := range members {
		if m != g.self {
			copied = append(copied, m)
		}
	}
	g.mu.Lock()
	g.members = copied
	g.mu.Unlock()
}

// Broadcast implements Broadcaster: the request is sent to `fanout` members
// chosen uniformly at random (without replacement). Sampling is a partial
// Fisher-Yates over a reused index slice — starting each call from the
// previous call's arrangement still yields a uniform subset, because every
// prefix position is re-drawn — so the cost per call is O(fanout), not O(N).
func (g *Gossip) Broadcast(req *remoting.Request) {
	g.mu.RLock()
	members := g.members
	g.mu.RUnlock()
	n := len(members)
	if n == 0 {
		return
	}
	count := g.fanout
	if count > n {
		count = n
	}
	var targets [16]node.Addr
	picks := targets[:0]
	if count > len(targets) {
		picks = make([]node.Addr, 0, count)
	}
	g.rngMu.Lock()
	if len(g.scratch) != n {
		g.scratch = make([]int, n)
		for i := range g.scratch {
			g.scratch[i] = i
		}
	}
	for i := 0; i < count; i++ {
		j := i + g.rng.Intn(n-i)
		g.scratch[i], g.scratch[j] = g.scratch[j], g.scratch[i]
		picks = append(picks, members[g.scratch[i]])
	}
	g.rngMu.Unlock()
	for _, to := range picks {
		g.client.SendBestEffort(to, req)
	}
}

var _ Broadcaster = (*UnicastToAll)(nil)
var _ Broadcaster = (*Gossip)(nil)
