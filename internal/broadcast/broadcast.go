// Package broadcast provides the dissemination primitives used for alerts and
// consensus votes. Rapid's default is a best-effort unicast-to-all
// broadcaster (the counting fast path only needs a best-effort channel); a
// fanout gossip broadcaster is provided as an alternative with lower
// per-sender cost at the price of extra hops.
package broadcast

import (
	"math/rand"
	"sync"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// Broadcaster delivers a request to every member of the current membership.
type Broadcaster interface {
	// Broadcast sends req to all current members, best-effort.
	Broadcast(req *remoting.Request)
	// SetMembership replaces the recipient list after a view change.
	SetMembership(members []node.Addr)
}

// UnicastToAll sends each broadcast directly to every member. This mirrors
// Rapid's default broadcaster: O(N) messages per broadcast from the sender.
type UnicastToAll struct {
	client transport.Client

	mu      sync.RWMutex
	members []node.Addr
}

// NewUnicastToAll creates a broadcaster sending via the given client.
func NewUnicastToAll(client transport.Client) *UnicastToAll {
	return &UnicastToAll{client: client}
}

// SetMembership implements Broadcaster.
func (b *UnicastToAll) SetMembership(members []node.Addr) {
	copied := make([]node.Addr, len(members))
	copy(copied, members)
	b.mu.Lock()
	b.members = copied
	b.mu.Unlock()
}

// Broadcast implements Broadcaster.
func (b *UnicastToAll) Broadcast(req *remoting.Request) {
	b.mu.RLock()
	members := b.members
	b.mu.RUnlock()
	for _, m := range members {
		b.client.SendBestEffort(m, req)
	}
}

// Members returns the current recipient list (for tests).
func (b *UnicastToAll) Members() []node.Addr {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]node.Addr, len(b.members))
	copy(out, b.members)
	return out
}

// Gossip forwards each broadcast to a random fanout subset of the membership;
// receivers are expected to re-broadcast (the membership service does this for
// alert messages). It reduces per-sender cost from O(N) to O(fanout).
type Gossip struct {
	client transport.Client
	fanout int
	rng    *rand.Rand
	rngMu  sync.Mutex

	mu      sync.RWMutex
	members []node.Addr
}

// NewGossip creates a gossip broadcaster with the given fanout (minimum 1).
func NewGossip(client transport.Client, fanout int, seed int64) *Gossip {
	if fanout < 1 {
		fanout = 1
	}
	return &Gossip{client: client, fanout: fanout, rng: rand.New(rand.NewSource(seed))}
}

// SetMembership implements Broadcaster.
func (g *Gossip) SetMembership(members []node.Addr) {
	copied := make([]node.Addr, len(members))
	copy(copied, members)
	g.mu.Lock()
	g.members = copied
	g.mu.Unlock()
}

// Broadcast implements Broadcaster: the request is sent to `fanout` members
// chosen uniformly at random (without replacement).
func (g *Gossip) Broadcast(req *remoting.Request) {
	g.mu.RLock()
	members := g.members
	g.mu.RUnlock()
	if len(members) == 0 {
		return
	}
	g.rngMu.Lock()
	perm := g.rng.Perm(len(members))
	g.rngMu.Unlock()
	count := g.fanout
	if count > len(members) {
		count = len(members)
	}
	for i := 0; i < count; i++ {
		g.client.SendBestEffort(members[perm[i]], req)
	}
}

var _ Broadcaster = (*UnicastToAll)(nil)
var _ Broadcaster = (*Gossip)(nil)
