package edgefd

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// scriptedSubject answers probes according to a controllable health flag.
type scriptedSubject struct {
	mu      sync.Mutex
	healthy bool
	status  remoting.NodeStatus
	probes  int
}

func (s *scriptedSubject) setHealthy(h bool) {
	s.mu.Lock()
	s.healthy = h
	s.mu.Unlock()
}

func (s *scriptedSubject) probeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probes
}

// scriptedClient routes probes to the scripted subject.
type scriptedClient struct {
	subject *scriptedSubject
}

func (c *scriptedClient) Send(_ context.Context, _ node.Addr, req *remoting.Request) (*remoting.Response, error) {
	c.subject.mu.Lock()
	defer c.subject.mu.Unlock()
	c.subject.probes++
	if req.Probe == nil || !c.subject.healthy {
		return nil, transport.ErrUnreachable
	}
	return &remoting.Response{Probe: &remoting.ProbeResponse{Status: c.subject.status}}, nil
}

func (c *scriptedClient) SendBestEffort(node.Addr, *remoting.Request) {}

var _ transport.Client = (*scriptedClient)(nil)

// failureRecorder collects failure callbacks.
type failureRecorder struct {
	mu    sync.Mutex
	calls []node.Addr
}

func (r *failureRecorder) callback(subject node.Addr) {
	r.mu.Lock()
	r.calls = append(r.calls, subject)
	r.mu.Unlock()
}

func (r *failureRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.calls)
}

func params(subject *scriptedSubject, rec *failureRecorder) Params {
	return Params{
		Observer:  "observer:1",
		Subject:   "subject:1",
		Client:    &scriptedClient{subject: subject},
		Clock:     simclock.NewReal(),
		Interval:  time.Millisecond,
		Timeout:   10 * time.Millisecond,
		OnFailure: rec.callback,
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestPingPongDetectsPersistentFailure(t *testing.T) {
	subject := &scriptedSubject{healthy: false}
	rec := &failureRecorder{}
	m := NewPingPongFactory(DefaultPingPongOptions())(params(subject, rec))
	m.Start()
	defer m.Stop()
	if !waitFor(t, 2*time.Second, func() bool { return rec.count() >= 1 }) {
		t.Fatal("ping-pong detector never reported the dead subject")
	}
	// The window requires at least 10 probes before deciding.
	if subject.probeCount() < 10 {
		t.Errorf("detector decided after only %d probes; the 10-probe window should be filled first", subject.probeCount())
	}
}

func TestPingPongDoesNotReportHealthySubject(t *testing.T) {
	subject := &scriptedSubject{healthy: true, status: remoting.NodeOK}
	rec := &failureRecorder{}
	m := NewPingPongFactory(DefaultPingPongOptions())(params(subject, rec))
	m.Start()
	defer m.Stop()
	waitFor(t, 100*time.Millisecond, func() bool { return subject.probeCount() >= 30 })
	if rec.count() != 0 {
		t.Fatal("healthy subject was reported as faulty")
	}
}

func TestPingPongBootstrappingSubjectIsHealthy(t *testing.T) {
	subject := &scriptedSubject{healthy: true, status: remoting.NodeBootstrapping}
	rec := &failureRecorder{}
	m := NewPingPongFactory(DefaultPingPongOptions())(params(subject, rec))
	m.Start()
	defer m.Stop()
	waitFor(t, 100*time.Millisecond, func() bool { return subject.probeCount() >= 20 })
	if rec.count() != 0 {
		t.Fatal("bootstrapping subject must not be reported as faulty")
	}
}

func TestPingPongReportsOnlyOnce(t *testing.T) {
	subject := &scriptedSubject{healthy: false}
	rec := &failureRecorder{}
	m := NewPingPongFactory(DefaultPingPongOptions())(params(subject, rec))
	m.Start()
	defer m.Stop()
	waitFor(t, 2*time.Second, func() bool { return rec.count() >= 1 })
	// Keep probing for a while; no further reports should be produced.
	time.Sleep(30 * time.Millisecond)
	if rec.count() != 1 {
		t.Fatalf("detector reported %d times, want exactly 1", rec.count())
	}
}

func TestPingPongToleratesMinorLoss(t *testing.T) {
	// A subject that fails 2 of every 10 probes stays below the 40% threshold.
	subject := &scriptedSubject{healthy: true, status: remoting.NodeOK}
	rec := &failureRecorder{}
	p := params(subject, rec)
	flip := 0
	var mu sync.Mutex
	p.Client = transportClientFunc(func(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
		mu.Lock()
		flip++
		f := flip
		mu.Unlock()
		if f%5 == 0 { // 20% failures
			return nil, transport.ErrUnreachable
		}
		return &remoting.Response{Probe: &remoting.ProbeResponse{Status: remoting.NodeOK}}, nil
	})
	m := NewPingPongFactory(DefaultPingPongOptions())(p)
	m.Start()
	defer m.Stop()
	time.Sleep(60 * time.Millisecond)
	if rec.count() != 0 {
		t.Fatal("20% probe loss should not trigger the 40% threshold")
	}
}

// transportClientFunc adapts a function to transport.Client.
type transportClientFunc func(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error)

func (f transportClientFunc) Send(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
	return f(ctx, to, req)
}
func (f transportClientFunc) SendBestEffort(node.Addr, *remoting.Request) {}

func TestCountingDetectorConsecutiveFailures(t *testing.T) {
	subject := &scriptedSubject{healthy: false}
	rec := &failureRecorder{}
	m := NewCountingFactory(3)(params(subject, rec))
	m.Start()
	defer m.Stop()
	if !waitFor(t, time.Second, func() bool { return rec.count() == 1 }) {
		t.Fatal("counting detector never fired")
	}
	if subject.probeCount() < 3 {
		t.Errorf("counting detector fired after %d probes, want at least 3", subject.probeCount())
	}
}

func TestCountingDetectorResetsOnSuccess(t *testing.T) {
	subject := &scriptedSubject{healthy: true, status: remoting.NodeOK}
	rec := &failureRecorder{}
	p := params(subject, rec)
	// Alternate failure/success so no streak of 3 forms.
	var mu sync.Mutex
	n := 0
	p.Client = transportClientFunc(func(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error) {
		mu.Lock()
		n++
		v := n
		mu.Unlock()
		if v%2 == 0 {
			return nil, transport.ErrUnreachable
		}
		return &remoting.Response{Probe: &remoting.ProbeResponse{Status: remoting.NodeOK}}, nil
	})
	m := NewCountingFactory(3)(p)
	m.Start()
	defer m.Stop()
	time.Sleep(50 * time.Millisecond)
	if rec.count() != 0 {
		t.Fatal("alternating success/failure must not trigger a 3-consecutive-failure detector")
	}
}

func TestPhiAccrualDetectsSilence(t *testing.T) {
	subject := &scriptedSubject{healthy: true, status: remoting.NodeOK}
	rec := &failureRecorder{}
	opts := DefaultPhiAccrualOptions()
	opts.Threshold = 3
	opts.MinStdDev = time.Millisecond
	m := NewPhiAccrualFactory(opts)(params(subject, rec))
	m.Start()
	defer m.Stop()
	// Healthy phase establishes a baseline of inter-success intervals.
	waitFor(t, time.Second, func() bool { return subject.probeCount() >= 20 })
	subject.setHealthy(false)
	if !waitFor(t, 2*time.Second, func() bool { return rec.count() >= 1 }) {
		t.Fatal("phi-accrual detector never suspected the silent subject")
	}
}

func TestPhiAccrualStaysQuietWhileHealthy(t *testing.T) {
	subject := &scriptedSubject{healthy: true, status: remoting.NodeOK}
	rec := &failureRecorder{}
	m := NewPhiAccrualFactory(DefaultPhiAccrualOptions())(params(subject, rec))
	m.Start()
	defer m.Stop()
	waitFor(t, 200*time.Millisecond, func() bool { return subject.probeCount() >= 40 })
	if rec.count() != 0 {
		t.Fatal("phi-accrual detector reported a healthy subject")
	}
}

func TestStopBeforeStartAndDoubleStop(t *testing.T) {
	subject := &scriptedSubject{healthy: false}
	rec := &failureRecorder{}
	m := NewCountingFactory(3)(params(subject, rec))
	m.Stop()
	m.Stop()
	m.Start() // starting after stop is a no-op
	time.Sleep(20 * time.Millisecond)
	if rec.count() != 0 {
		t.Fatal("a stopped monitor must not probe")
	}
}

func TestStopHaltsProbing(t *testing.T) {
	subject := &scriptedSubject{healthy: true, status: remoting.NodeOK}
	rec := &failureRecorder{}
	m := NewCountingFactory(3)(params(subject, rec))
	m.Start()
	waitFor(t, time.Second, func() bool { return subject.probeCount() > 0 })
	m.Stop()
	before := subject.probeCount()
	time.Sleep(30 * time.Millisecond)
	if subject.probeCount() > before+1 {
		t.Fatalf("probing continued after Stop: %d -> %d", before, subject.probeCount())
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if std < 1.9 || std > 2.1 {
		t.Errorf("std = %v, want 2", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("meanStd of empty input should be zeros")
	}
}

func TestPhiValueMonotonicInElapsed(t *testing.T) {
	prev := 0.0
	for i := 1; i <= 10; i++ {
		phi := phiValue(float64(i), 1.0, 0.5)
		if phi < prev {
			t.Fatalf("phi should not decrease as silence grows: phi(%d)=%v < %v", i, phi, prev)
		}
		prev = phi
	}
}
