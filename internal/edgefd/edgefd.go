// Package edgefd provides Rapid's pluggable edge failure detectors (§4.1,
// §6). An edge failure detector runs on an observer and monitors one subject;
// when it concludes the edge is faulty it invokes a callback, and the
// membership service converts that into an irrevocable REMOVE alert.
//
// Three implementations are provided:
//
//   - PingPong: the paper's default — periodic probes, marking the edge
//     faulty when at least 40% of the last 10 probe attempts failed.
//   - Counting: marks the edge faulty after a fixed number of consecutive
//     probe failures (a simpler, more aggressive detector).
//   - PhiAccrual: an adaptive detector in the style of Hayashibara et al.,
//     computing a suspicion level from the distribution of probe round-trip
//     successes and failing the edge when it crosses a threshold.
//
// Any function matching Factory can be plugged into the membership service,
// which mirrors Rapid's support for application-supplied detectors.
package edgefd

import (
	"context"
	"math"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simclock"
	"repro/internal/transport"
)

// Callback is invoked (once) when a monitor concludes its subject's edge is
// faulty.
type Callback func(subject node.Addr)

// Monitor probes a single subject on behalf of a single observer.
type Monitor interface {
	// Start begins probing in a background goroutine.
	Start()
	// Stop halts probing. It is safe to call multiple times.
	Stop()
}

// Params bundles everything a monitor needs.
type Params struct {
	Observer node.Addr
	Subject  node.Addr
	Client   transport.Client
	Clock    simclock.Clock
	// Interval between probes.
	Interval time.Duration
	// Timeout for each probe RPC.
	Timeout time.Duration
	// OnFailure is invoked once when the edge is deemed faulty.
	OnFailure Callback
}

// Factory builds a monitor for one observer/subject edge. The membership
// service calls the factory once per subject after every view change.
type Factory func(p Params) Monitor

// --- shared probing loop -----------------------------------------------------

// prober is the common probe loop; the judge decides when the edge fails.
type prober struct {
	p     Params
	judge func(success bool) bool // returns true when the edge is now faulty

	mu       sync.Mutex
	started  bool
	stopped  bool
	reported bool
	quit     chan struct{}
	done     sync.WaitGroup
}

func newProber(p Params, judge func(bool) bool) *prober {
	return &prober{p: p, judge: judge, quit: make(chan struct{})}
}

// Start implements Monitor.
func (pr *prober) Start() {
	pr.mu.Lock()
	if pr.started || pr.stopped {
		pr.mu.Unlock()
		return
	}
	pr.started = true
	// Add while still holding the lock: a concurrent Stop that observes
	// started == true must find the WaitGroup counter already incremented,
	// otherwise its Wait races with this Add.
	pr.done.Add(1)
	pr.mu.Unlock()
	go pr.loop()
}

// Stop implements Monitor.
func (pr *prober) Stop() {
	pr.mu.Lock()
	if pr.stopped {
		pr.mu.Unlock()
		return
	}
	pr.stopped = true
	started := pr.started
	pr.mu.Unlock()
	close(pr.quit)
	if started {
		pr.done.Wait()
	}
}

func (pr *prober) loop() {
	defer pr.done.Done()
	// One reusable ticker and one immutable probe request per edge: with
	// paper-scale fleets (1000 nodes x K=10 edges) a per-iteration timer or
	// request allocation is a measurable share of the probe path.
	tick := pr.p.Clock.Ticker(pr.p.Interval)
	defer tick.Stop()
	req := &remoting.Request{Probe: &remoting.ProbeRequest{Sender: pr.p.Observer}}
	for {
		select {
		case <-pr.quit:
			return
		case <-tick.C():
		}
		success := pr.probeOnce(req)
		pr.mu.Lock()
		alreadyReported := pr.reported
		pr.mu.Unlock()
		if alreadyReported {
			continue
		}
		if pr.judge(success) {
			pr.mu.Lock()
			pr.reported = true
			pr.mu.Unlock()
			if pr.p.OnFailure != nil {
				pr.p.OnFailure(pr.p.Subject)
			}
		}
	}
}

// probeOnce sends a single probe and reports whether it succeeded. A subject
// that reports itself as bootstrapping is treated as healthy, as in §6.
func (pr *prober) probeOnce(req *remoting.Request) bool {
	ctx, cancel := context.WithTimeout(context.Background(), pr.p.Timeout)
	defer cancel()
	resp, err := pr.p.Client.Send(ctx, pr.p.Subject, req)
	if err != nil {
		return false
	}
	return resp != nil && resp.Probe != nil &&
		(resp.Probe.Status == remoting.NodeOK || resp.Probe.Status == remoting.NodeBootstrapping)
}

// --- PingPong detector -------------------------------------------------------

// PingPongOptions tune the windowed detector. The defaults match §6 of the
// paper: an edge is faulty when 40% of the last 10 probes failed.
type PingPongOptions struct {
	WindowSize       int
	FailureThreshold float64
}

// DefaultPingPongOptions returns the paper's parameters.
func DefaultPingPongOptions() PingPongOptions {
	return PingPongOptions{WindowSize: 10, FailureThreshold: 0.4}
}

// NewPingPongFactory returns a Factory producing windowed ping-pong monitors.
func NewPingPongFactory(opts PingPongOptions) Factory {
	if opts.WindowSize <= 0 {
		opts.WindowSize = 10
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 0.4
	}
	return func(p Params) Monitor {
		window := make([]bool, 0, opts.WindowSize)
		var mu sync.Mutex
		judge := func(success bool) bool {
			mu.Lock()
			defer mu.Unlock()
			window = append(window, !success)
			if len(window) > opts.WindowSize {
				window = window[1:]
			}
			if len(window) < opts.WindowSize {
				return false
			}
			failures := 0
			for _, failed := range window {
				if failed {
					failures++
				}
			}
			return float64(failures) >= opts.FailureThreshold*float64(opts.WindowSize)
		}
		return newProber(p, judge)
	}
}

// --- Counting detector -------------------------------------------------------

// NewCountingFactory returns a Factory that fails an edge after
// consecutiveFailures probe failures in a row. It reacts faster than the
// windowed detector and is useful in tests and latency-sensitive setups.
func NewCountingFactory(consecutiveFailures int) Factory {
	if consecutiveFailures <= 0 {
		consecutiveFailures = 3
	}
	return func(p Params) Monitor {
		var mu sync.Mutex
		streak := 0
		judge := func(success bool) bool {
			mu.Lock()
			defer mu.Unlock()
			if success {
				streak = 0
				return false
			}
			streak++
			return streak >= consecutiveFailures
		}
		return newProber(p, judge)
	}
}

// --- Phi-accrual detector ----------------------------------------------------

// PhiAccrualOptions tune the adaptive detector.
type PhiAccrualOptions struct {
	// Threshold is the suspicion level above which the edge is faulty.
	Threshold float64
	// MinSamples is the number of successful probes required before the
	// detector starts suspecting.
	MinSamples int
	// MinStdDev floors the standard deviation estimate.
	MinStdDev time.Duration
}

// DefaultPhiAccrualOptions returns commonly used parameters (threshold 8).
func DefaultPhiAccrualOptions() PhiAccrualOptions {
	return PhiAccrualOptions{Threshold: 8, MinSamples: 5, MinStdDev: 10 * time.Millisecond}
}

// NewPhiAccrualFactory returns a Factory producing φ-accrual monitors: the
// suspicion level φ = -log10(P(no heartbeat for Δt)) is computed from the
// observed distribution of inter-success times; when φ exceeds the threshold
// the edge is reported faulty.
func NewPhiAccrualFactory(opts PhiAccrualOptions) Factory {
	if opts.Threshold <= 0 {
		opts.Threshold = 8
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 5
	}
	if opts.MinStdDev <= 0 {
		opts.MinStdDev = 10 * time.Millisecond
	}
	return func(p Params) Monitor {
		var mu sync.Mutex
		var lastSuccess time.Time
		var intervals []float64 // seconds between successful probes
		judge := func(success bool) bool {
			mu.Lock()
			defer mu.Unlock()
			now := p.Clock.Now()
			if success {
				if !lastSuccess.IsZero() {
					intervals = append(intervals, now.Sub(lastSuccess).Seconds())
					if len(intervals) > 100 {
						intervals = intervals[1:]
					}
				}
				lastSuccess = now
				return false
			}
			if len(intervals) < opts.MinSamples || lastSuccess.IsZero() {
				return false
			}
			mean, std := meanStd(intervals)
			minStd := opts.MinStdDev.Seconds()
			if std < minStd {
				std = minStd
			}
			elapsed := now.Sub(lastSuccess).Seconds()
			phi := phiValue(elapsed, mean, std)
			return phi >= opts.Threshold
		}
		return newProber(p, judge)
	}
}

// meanStd returns the mean and standard deviation of the samples.
func meanStd(samples []float64) (mean, std float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean = sum / float64(len(samples))
	var variance float64
	for _, s := range samples {
		variance += (s - mean) * (s - mean)
	}
	variance /= float64(len(samples))
	return mean, math.Sqrt(variance)
}

// phiValue computes the φ suspicion level assuming normally distributed
// inter-arrival times, following the φ-accrual failure detector.
func phiValue(elapsed, mean, std float64) float64 {
	y := (elapsed - mean) / std
	e := math.Exp(-y * (1.5976 + 0.070566*y*y))
	if elapsed > mean {
		return -math.Log10(e / (1.0 + e))
	}
	return -math.Log10(1.0 - 1.0/(1.0+e))
}
