// Package transport defines the messaging interfaces that the membership
// service is written against. Two implementations exist in this repository:
// an in-process simulated network with fault injection (package simnet) used
// by tests, experiments and benchmarks, and a TCP transport (package tcpnet)
// used by the standalone agent binary.
package transport

import (
	"context"
	"errors"

	"repro/internal/node"
	"repro/internal/remoting"
)

// ErrUnreachable is returned when a destination cannot be reached, whether
// because it does not exist, has crashed, or a fault rule dropped the message.
var ErrUnreachable = errors.New("transport: destination unreachable")

// ErrTimeout is returned when a request did not complete within its deadline.
var ErrTimeout = errors.New("transport: request timed out")

// Handler processes an inbound request and produces a response. A membership
// service instance implements Handler.
type Handler interface {
	HandleRequest(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error)

// HandleRequest implements Handler.
func (f HandlerFunc) HandleRequest(ctx context.Context, from node.Addr, req *remoting.Request) (*remoting.Response, error) {
	return f(ctx, from, req)
}

// Client sends requests to other processes on behalf of one local process.
type Client interface {
	// Send delivers a request and waits for the response or an error.
	Send(ctx context.Context, to node.Addr, req *remoting.Request) (*remoting.Response, error)
	// SendBestEffort delivers a request asynchronously, ignoring the response
	// and any delivery failure. Alert gossip and consensus votes use this.
	SendBestEffort(to node.Addr, req *remoting.Request)
}

// Network is the factory interface shared by the simulated and real networks:
// it binds a handler to an address and hands out clients for that address.
type Network interface {
	// Register binds handler to addr so other processes can reach it.
	Register(addr node.Addr, handler Handler) error
	// Deregister removes the binding, making the address unreachable.
	Deregister(addr node.Addr)
	// Client returns a Client whose messages originate from addr.
	Client(addr node.Addr) Client
}
