package harness

import (
	"testing"
	"time"

	"repro/internal/node"
)

func launch(t *testing.T, system System, n int) *Fleet {
	t.Helper()
	f, err := Launch(Options{System: system, N: n, TimeScale: 50, Seed: int64(n) * 7})
	if err != nil {
		t.Fatalf("Launch(%s, %d): %v", system, n, err)
	}
	return f
}

func TestLaunchRapidFleetConverges(t *testing.T) {
	f := launch(t, SystemRapid, 8)
	defer f.Stop()
	if _, ok := f.WaitForSize(8, 30*time.Second); !ok {
		t.Fatal("rapid fleet did not converge")
	}
	if len(f.Agents()) != 8 {
		t.Fatalf("agents = %d, want 8", len(f.Agents()))
	}
	// Give the sampler a few ticks after convergence before inspecting series.
	time.Sleep(100 * time.Millisecond)
	if got := f.UniqueReportedSizes(nil); got < 1 {
		t.Fatalf("UniqueReportedSizes = %d", got)
	}
	latencies := f.JoinLatencies()
	if len(latencies) != 8 {
		t.Fatalf("join latencies recorded for %d agents, want 8", len(latencies))
	}
	per := f.PerAgentConvergence(8)
	if len(per) != 8 {
		t.Fatalf("per-agent convergence has %d entries, want 8", len(per))
	}
}

func TestLaunchMemberlistFleetConverges(t *testing.T) {
	f := launch(t, SystemMemberlist, 8)
	defer f.Stop()
	if _, ok := f.WaitForSize(8, 30*time.Second); !ok {
		t.Fatal("memberlist fleet did not converge")
	}
}

func TestLaunchZooKeeperFleetConverges(t *testing.T) {
	f := launch(t, SystemZooKeeper, 8)
	defer f.Stop()
	if _, ok := f.WaitForSize(8, 30*time.Second); !ok {
		t.Fatal("zookeeper fleet did not converge")
	}
}

func TestLaunchRapidCFleetConverges(t *testing.T) {
	f := launch(t, SystemRapidC, 6)
	defer f.Stop()
	if _, ok := f.WaitForSize(6, 30*time.Second); !ok {
		t.Fatal("rapid-c fleet did not converge")
	}
}

func TestCrashAndWaitExcluding(t *testing.T) {
	f := launch(t, SystemRapid, 8)
	defer f.Stop()
	if _, ok := f.WaitForSize(8, 30*time.Second); !ok {
		t.Fatal("fleet did not converge")
	}
	victim := f.Agents()[3].Addr()
	f.Crash(victim)
	excluded := map[node.Addr]bool{victim: true}
	if _, ok := f.WaitForSizeExcluding(7, excluded, 30*time.Second); !ok {
		t.Fatal("survivors did not remove the crashed agent")
	}
	if _, found := f.Agent(victim); !found {
		t.Fatal("Agent lookup by address failed")
	}
}

func TestUnknownSystemRejected(t *testing.T) {
	if _, err := Launch(Options{System: System("nope"), N: 3}); err == nil {
		t.Fatal("unknown system should be rejected")
	}
}

func TestZeroSizeRejected(t *testing.T) {
	if _, err := Launch(Options{System: SystemRapid, N: 0}); err == nil {
		t.Fatal("zero-size fleet should be rejected")
	}
}
