// Package harness boots whole clusters of membership agents — Rapid, Rapid-C,
// the SWIM/Memberlist baseline and the ZooKeeper-style baseline — inside one
// process on the simulated network, injects the paper's failure scenarios,
// and records the per-node time series of reported cluster sizes that the
// evaluation figures are drawn from.
//
// A Fleet owns the simulated network (including its delivery shards, sized
// via Options.SimnetShards and released by Stop), launches every member
// through the paper's bootstrap-storm workload (all joins at once unless
// Options.JoinConcurrency bounds them), samples each agent's reported size on
// a fixed interval, and retains per-member join-call latencies for the
// Figure 5 percentiles. Fleets of 1000–2000 Rapid agents are routine; see
// experiments.RunBootstrapConvergence for the paper-scale sweep built on top.
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/centralized"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/swim"
	"repro/internal/zkmock"
)

// System identifies which membership implementation a fleet runs.
type System string

// The systems compared throughout the paper's evaluation.
const (
	SystemRapid      System = "rapid"
	SystemRapidC     System = "rapid-c"
	SystemMemberlist System = "memberlist"
	SystemZooKeeper  System = "zookeeper"
)

// Agent is the minimal surface the harness needs from any membership agent.
type Agent interface {
	// Addr is the agent's address.
	Addr() node.Addr
	// ReportedSize is the cluster size this agent currently believes in.
	ReportedSize() int
	// Stop shuts the agent down.
	Stop()
}

// --- adapters ----------------------------------------------------------------

type rapidAgent struct{ c *core.Cluster }

func (a rapidAgent) Addr() node.Addr   { return a.c.Addr() }
func (a rapidAgent) ReportedSize() int { return a.c.Size() }
func (a rapidAgent) Stop()             { a.c.Stop() }

type rapidCAgent struct{ m *centralized.Member }

func (a rapidCAgent) Addr() node.Addr   { return a.m.Addr() }
func (a rapidCAgent) ReportedSize() int { return a.m.Size() }
func (a rapidCAgent) Stop()             { a.m.Stop() }

type swimAgent struct{ n *swim.Node }

func (a swimAgent) Addr() node.Addr   { return a.n.Addr() }
func (a swimAgent) ReportedSize() int { return a.n.NumAlive() }
func (a swimAgent) Stop()             { a.n.Stop() }

type zkAgent struct{ c *zkmock.Client }

func (a zkAgent) Addr() node.Addr   { return a.c.Addr() }
func (a zkAgent) ReportedSize() int { return a.c.NumAlive() }
func (a zkAgent) Stop()             { a.c.Stop() }

// --- fleet -------------------------------------------------------------------

// Options configure a fleet.
type Options struct {
	// System selects the membership implementation.
	System System
	// N is the number of cluster members (agents).
	N int
	// TimeScale compresses every protocol duration by this factor so the
	// paper's second-scale experiments run in milliseconds.
	TimeScale float64
	// SampleInterval is how often every agent's reported size is recorded.
	SampleInterval time.Duration
	// Seed makes the run reproducible.
	Seed int64
	// AccountBandwidth enables per-node byte accounting (Table 2).
	AccountBandwidth bool
	// JoinConcurrency bounds how many joins run at once (0 = all at once).
	JoinConcurrency int
	// Broadcast selects the dissemination strategy for Rapid fleets
	// (unicast-to-all or gossip); empty uses the core default.
	Broadcast core.BroadcastMode
	// GossipFanout is the per-hop fanout for the gossip broadcaster.
	GossipFanout int
	// SimnetShards overrides the simulated network's delivery shard count
	// (0 = simnet default). Paper-scale fleets (1000+) spread enqueue and
	// delivery across shards, so more shards help when cores are available.
	SimnetShards int
	// JoinAttempts overrides how many times each Rapid joiner retries the
	// two-phase join (0 = core default). Bootstrap storms at 1000+ nodes
	// admit joiners in waves, so large fleets need more attempts than the
	// default tuned for 100-node runs.
	JoinAttempts int
	// BatchingWindowMin/Max override the Rapid engine's adaptive batching
	// window range (0 = scaled core default). The values are used as given —
	// they are not divided by TimeScale — so experiments can sweep the
	// floor/ceiling independently of the time compression.
	BatchingWindowMin time.Duration
	BatchingWindowMax time.Duration
}

// Fleet is a running cluster of agents plus its infrastructure processes.
type Fleet struct {
	Options Options
	Net     *simnet.Network

	mu       sync.Mutex
	agents   []Agent
	series   map[node.Addr]*metrics.Series
	joinTime map[node.Addr]time.Duration
	started  time.Time
	infra    []func() // shutdown hooks for seeds/registries/ensembles

	samplerStop chan struct{}
	samplerDone sync.WaitGroup
}

// seedAddr is the bootstrap address used by every system.
const seedAddr = node.Addr("seed-0:9000")

// registryAddr is the ZooKeeper-style registry address.
const registryAddr = node.Addr("zk-registry:2181")

func ensembleAddrs() []node.Addr {
	return []node.Addr{"rapid-c-a:9100", "rapid-c-b:9100", "rapid-c-c:9100"}
}

// memberAddr names the i-th cluster member.
func memberAddr(i int) node.Addr {
	return node.Addr(fmt.Sprintf("m%04d:9000", i))
}

// MemberAddr exposes the fleet's address naming scheme to experiments.
func MemberAddr(i int) node.Addr { return memberAddr(i) }

// Launch boots a fleet: infrastructure first (seed / registry / ensemble),
// then all remaining members concurrently, which is exactly the bootstrap
// workload of Figure 5. It returns once every join call has returned.
func Launch(opts Options) (*Fleet, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("harness: fleet size must be positive")
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 50
	}
	if opts.SampleInterval <= 0 {
		opts.SampleInterval = 20 * time.Millisecond
	}
	node.SeedIDGenerator(opts.Seed)
	f := &Fleet{
		Options: opts,
		Net: simnet.New(simnet.Options{
			Seed:             opts.Seed,
			AccountBandwidth: opts.AccountBandwidth,
			Shards:           opts.SimnetShards,
		}),
		series:      make(map[node.Addr]*metrics.Series),
		joinTime:    make(map[node.Addr]time.Duration),
		samplerStop: make(chan struct{}),
	}
	f.started = time.Now()

	if err := f.startInfrastructure(); err != nil {
		f.Net.Close()
		return nil, err
	}
	f.startSampler()

	if err := f.startMembers(); err != nil {
		f.Stop()
		return nil, err
	}
	return f, nil
}

// startInfrastructure boots the per-system bootstrap processes.
func (f *Fleet) startInfrastructure() error {
	switch f.Options.System {
	case SystemRapid:
		settings := f.rapidSettings()
		seed, err := core.StartCluster(seedAddr, settings, f.Net)
		if err != nil {
			return err
		}
		f.addAgent(rapidAgent{seed}, 0)
		f.infra = append(f.infra, func() {})
	case SystemRapidC:
		ens := centralized.DefaultEnsembleSettings()
		ens.ConsensusFallbackBase = scaled(4*time.Second, f.Options.TimeScale)
		ens.ProposalBatchWindow = scaled(time.Second, f.Options.TimeScale)
		nodes, err := centralized.StartEnsemble(ensembleAddrs(), ens, f.Net)
		if err != nil {
			return err
		}
		f.infra = append(f.infra, func() {
			for _, n := range nodes {
				n.Stop()
			}
		})
	case SystemMemberlist:
		seed, err := swim.Start(seedAddr, nil, swim.DefaultOptions().Scaled(f.Options.TimeScale), f.Net)
		if err != nil {
			return err
		}
		f.addAgent(swimAgent{seed}, 0)
	case SystemZooKeeper:
		reg, err := zkmock.StartRegistry(registryAddr, zkmock.DefaultRegistryOptions().Scaled(f.Options.TimeScale), f.Net)
		if err != nil {
			return err
		}
		f.infra = append(f.infra, reg.Stop)
	default:
		return fmt.Errorf("harness: unknown system %q", f.Options.System)
	}
	return nil
}

// startMembers launches the remaining members concurrently.
func (f *Fleet) startMembers() error {
	// Members 1..N-1 for decentralized systems (the seed counts as member 0);
	// members 0..N-1 for registry/ensemble systems.
	start := 1
	if f.Options.System == SystemRapidC || f.Options.System == SystemZooKeeper {
		start = 0
	}
	type result struct {
		agent Agent
		idx   int
		err   error
		took  time.Duration
	}
	count := f.Options.N - start
	results := make(chan result, count)
	limit := f.Options.JoinConcurrency
	if limit <= 0 {
		limit = count
	}
	sem := make(chan struct{}, limit)
	for i := start; i < f.Options.N; i++ {
		i := i
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			begin := time.Now()
			agent, err := f.startMember(i)
			results <- result{agent: agent, idx: i, err: err, took: time.Since(begin)}
		}()
	}
	var firstErr error
	for j := 0; j < count; j++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("harness: member %d failed to join: %w", r.idx, r.err)
			}
			continue
		}
		f.addAgent(r.agent, r.took)
	}
	return firstErr
}

// rapidSettings builds the core settings for this fleet's Rapid agents.
func (f *Fleet) rapidSettings() core.Settings {
	settings := core.ScaledSettings(f.Options.TimeScale)
	if f.Options.Broadcast != "" {
		settings.Broadcast = f.Options.Broadcast
	}
	if f.Options.GossipFanout > 0 {
		settings.GossipFanout = f.Options.GossipFanout
	}
	if f.Options.JoinAttempts > 0 {
		settings.JoinAttempts = f.Options.JoinAttempts
	}
	if f.Options.BatchingWindowMin > 0 {
		settings.BatchingWindowMin = f.Options.BatchingWindowMin
	}
	if f.Options.BatchingWindowMax > 0 {
		settings.BatchingWindowMax = f.Options.BatchingWindowMax
	}
	return settings
}

// startMember boots one cluster member of the configured system.
func (f *Fleet) startMember(i int) (Agent, error) {
	addr := memberAddr(i)
	switch f.Options.System {
	case SystemRapid:
		settings := f.rapidSettings()
		c, err := core.JoinCluster(addr, []node.Addr{seedAddr}, settings, f.Net)
		if err != nil {
			return nil, err
		}
		return rapidAgent{c}, nil
	case SystemRapidC:
		ms := centralized.DefaultMemberSettings()
		ms.PollInterval = scaled(5*time.Second, f.Options.TimeScale)
		ms.ProbeInterval = scaled(time.Second, f.Options.TimeScale)
		ms.ProbeTimeout = scaled(500*time.Millisecond, f.Options.TimeScale)
		// A wall-clock retry budget, not a protocol duration: small fleets
		// join in milliseconds regardless, but a 1000-member storm against
		// the 3-node ensemble needs minutes on a saturated core.
		ms.JoinTimeout = 180 * time.Second
		m, err := centralized.JoinViaEnsemble(addr, ensembleAddrs(), ms, f.Net)
		if err != nil {
			return nil, err
		}
		return rapidCAgent{m}, nil
	case SystemMemberlist:
		n, err := swim.Start(addr, []node.Addr{seedAddr}, swim.DefaultOptions().Scaled(f.Options.TimeScale), f.Net)
		if err != nil {
			return nil, err
		}
		return swimAgent{n}, nil
	case SystemZooKeeper:
		c, err := zkmock.StartClient(addr, registryAddr, zkmock.DefaultClientOptions().Scaled(f.Options.TimeScale), f.Net)
		if err != nil {
			return nil, err
		}
		return zkAgent{c}, nil
	default:
		return nil, fmt.Errorf("harness: unknown system %q", f.Options.System)
	}
}

func (f *Fleet) addAgent(a Agent, joinTime time.Duration) {
	s := &metrics.Series{}
	// Record an initial observation so short-lived experiments (and agents
	// that converge before the first sampler tick) still have data.
	s.Record(time.Now(), float64(a.ReportedSize()))
	f.mu.Lock()
	defer f.mu.Unlock()
	f.agents = append(f.agents, a)
	f.series[a.Addr()] = s
	f.joinTime[a.Addr()] = joinTime
}

// startSampler records every agent's reported size at the sample interval.
func (f *Fleet) startSampler() {
	f.samplerDone.Add(1)
	go func() {
		defer f.samplerDone.Done()
		ticker := time.NewTicker(f.Options.SampleInterval)
		defer ticker.Stop()
		for {
			select {
			case <-f.samplerStop:
				return
			case now := <-ticker.C:
				f.mu.Lock()
				agents := append([]Agent(nil), f.agents...)
				f.mu.Unlock()
				for _, a := range agents {
					f.mu.Lock()
					s := f.series[a.Addr()]
					f.mu.Unlock()
					if s != nil {
						s.Record(now, float64(a.ReportedSize()))
					}
				}
			}
		}
	}()
}

// Agents returns the running agents.
func (f *Fleet) Agents() []Agent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Agent(nil), f.agents...)
}

// Agent returns the agent bound to addr, if any.
func (f *Fleet) Agent(addr node.Addr) (Agent, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range f.agents {
		if a.Addr() == addr {
			return a, true
		}
	}
	return nil, false
}

// RapidStats returns every Rapid agent's engine stats (empty for other
// systems). Experiments use it to assert control-plane health — no shed
// events, adaptive window inside its configured bounds — after a run.
func (f *Fleet) RapidStats() []core.EngineStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []core.EngineStats
	for _, a := range f.agents {
		if ra, ok := a.(rapidAgent); ok {
			out = append(out, ra.c.Stats())
		}
	}
	return out
}

// Series returns the recorded size series for one agent.
func (f *Fleet) Series(addr node.Addr) *metrics.Series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.series[addr]
}

// Started returns the fleet's launch time (t=0 of every experiment).
func (f *Fleet) Started() time.Time { return f.started }

// JoinLatencies returns each member's join-call duration.
func (f *Fleet) JoinLatencies() map[node.Addr]time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[node.Addr]time.Duration, len(f.joinTime))
	for k, v := range f.joinTime {
		out[k] = v
	}
	return out
}

// WaitForSize blocks until every agent reports the target size or the timeout
// elapses; it returns the time that took and whether convergence was reached.
func (f *Fleet) WaitForSize(target int, timeout time.Duration) (time.Duration, bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.allReport(target) {
			return time.Since(f.started), true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return time.Since(f.started), f.allReport(target)
}

// allReport reports whether every live agent currently reports the target size.
func (f *Fleet) allReport(target int) bool {
	for _, a := range f.Agents() {
		if a.ReportedSize() != target {
			return false
		}
	}
	return true
}

// WaitForSizeExcluding is WaitForSize over the agents not in the excluded set
// (used after crashing or partitioning some members).
func (f *Fleet) WaitForSizeExcluding(target int, excluded map[node.Addr]bool, timeout time.Duration) (time.Duration, bool) {
	begin := time.Now()
	deadline := begin.Add(timeout)
	check := func() bool {
		for _, a := range f.Agents() {
			if excluded[a.Addr()] {
				continue
			}
			if a.ReportedSize() != target {
				return false
			}
		}
		return true
	}
	for time.Now().Before(deadline) {
		if check() {
			return time.Since(begin), true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return time.Since(begin), check()
}

// UniqueReportedSizes returns the number of distinct cluster sizes observed
// across all agents (Table 1's metric), optionally excluding some agents.
func (f *Fleet) UniqueReportedSizes(excluded map[node.Addr]bool) int {
	seen := make(map[float64]struct{})
	f.mu.Lock()
	defer f.mu.Unlock()
	for addr, s := range f.series {
		if excluded[addr] {
			continue
		}
		for _, sample := range s.Samples() {
			seen[sample.Value] = struct{}{}
		}
	}
	return len(seen)
}

// PerAgentConvergence returns, for each agent, the duration from fleet launch
// until the agent first reported the target size (Figure 6's ECDF input).
// Agents that never reported the target are omitted.
func (f *Fleet) PerAgentConvergence(target int) []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []time.Duration
	for _, s := range f.series {
		for _, sample := range s.Samples() {
			if int(sample.Value) == target {
				out = append(out, sample.At.Sub(f.started))
				break
			}
		}
	}
	return out
}

// Crash abruptly fails the agents at the given addresses.
func (f *Fleet) Crash(addrs ...node.Addr) {
	for _, a := range addrs {
		f.Net.Crash(a)
	}
}

// --- fault controls ----------------------------------------------------------
//
// Thin veneers over simnet's composable fault kinds, so experiments inject
// gray failures through the fleet they are measuring. All of them are
// reverted by ClearFaults.

// SlowNodes makes the given members slow-but-alive: every message they send
// or receive pays an extra one-way delay d. A non-positive d restores them.
func (f *Fleet) SlowNodes(d time.Duration, addrs ...node.Addr) {
	for _, a := range addrs {
		f.Net.SetNodeDelay(a, d)
	}
}

// Flap installs the same schedule-toggled loss rule on every given member
// (the Figure 9 flip-flop when Loss is 1 and Ingress is set).
func (f *Fleet) Flap(spec simnet.FlapSpec, addrs ...node.Addr) {
	for _, a := range addrs {
		f.Net.SetFlap(a, spec)
	}
}

// PartitionDeaf installs an asymmetric partition: the given members stop
// hearing the rest of the cluster while their own traffic still flows.
func (f *Fleet) PartitionDeaf(addrs ...node.Addr) {
	f.Net.SetAsymmetricPartition(addrs...)
}

// BlockOneWay fails the one-way links src -> dst for every given dst; traffic
// in the opposite direction is untouched.
func (f *Fleet) BlockOneWay(src node.Addr, dsts ...node.Addr) {
	for _, d := range dsts {
		f.Net.BlockDirectional(src, d)
	}
}

// WAN overlays zone-based per-link latency classes on the whole network:
// members hash into `zones` zones, intra-zone links cost intra one-way,
// cross-zone links cost inter.
func (f *Fleet) WAN(zones int, intra, inter time.Duration) {
	f.Net.SetLatencyModel(simnet.ZoneLatency(zones, intra, inter))
}

// Chaos installs best-effort duplication/reordering on the whole network.
func (f *Fleet) Chaos(spec simnet.ChaosSpec) {
	f.Net.SetChaos(spec)
}

// ClearFaults removes every installed fault rule of every kind.
func (f *Fleet) ClearFaults() {
	f.Net.ClearFaults()
}

// ReportedSizeRange returns the smallest and largest cluster size currently
// reported by the non-excluded agents (0, 0 when none qualify).
func (f *Fleet) ReportedSizeRange(excluded map[node.Addr]bool) (int, int) {
	lo, hi, seen := 0, 0, false
	for _, a := range f.Agents() {
		if excluded[a.Addr()] {
			continue
		}
		s := a.ReportedSize()
		if !seen || s < lo {
			lo = s
		}
		if !seen || s > hi {
			hi = s
		}
		seen = true
	}
	return lo, hi
}

// WaitForAgreement blocks until every non-excluded agent reports one
// identical, stable cluster size — whatever that size is — or the timeout
// elapses. It is the conformance check run after a fault clears: the live
// members must converge back to a single agreed membership. The agreed size,
// the time that took, and whether agreement was reached are returned.
func (f *Fleet) WaitForAgreement(excluded map[node.Addr]bool, timeout time.Duration) (int, time.Duration, bool) {
	begin := time.Now()
	deadline := begin.Add(timeout)
	stable, lastSize := 0, -1
	for time.Now().Before(deadline) {
		lo, hi := f.ReportedSizeRange(excluded)
		if lo == hi && lo > 0 {
			if lo == lastSize {
				stable++
			} else {
				stable, lastSize = 1, lo
			}
			// Three consecutive identical polls: agreement, not a transient
			// coincidence mid-view-change.
			if stable >= 3 {
				return lo, time.Since(begin), true
			}
		} else {
			stable, lastSize = 0, -1
		}
		time.Sleep(5 * time.Millisecond)
	}
	lo, hi := f.ReportedSizeRange(excluded)
	return lo, time.Since(begin), lo == hi && lo > 0
}

// Stop shuts down sampling, all agents, the infrastructure, and the simulated
// network's delivery workers.
func (f *Fleet) Stop() {
	close(f.samplerStop)
	f.samplerDone.Wait()
	var wg sync.WaitGroup
	for _, a := range f.Agents() {
		wg.Add(1)
		go func(a Agent) {
			defer wg.Done()
			a.Stop()
		}(a)
	}
	wg.Wait()
	for _, stop := range f.infra {
		stop()
	}
	f.Net.Close()
}

// scaled divides a duration by the time-compression factor.
func scaled(d time.Duration, factor float64) time.Duration {
	if factor <= 0 {
		return d
	}
	s := time.Duration(float64(d) / factor)
	if s < time.Millisecond {
		s = time.Millisecond
	}
	return s
}

// Scale exposes the duration scaling used by the harness to experiments.
func Scale(d time.Duration, factor float64) time.Duration { return scaled(d, factor) }
