package harness

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/node"
)

// TestChurnConcurrentJoinsAndCorrelatedFailures is the engine's stress
// scenario: a large fleet absorbs simultaneous joins and a correlated block
// of crashes ("a rack dies while the cluster is scaling out"), and every
// survivor — old and newly joined — must agree on the final configuration.
// The full scenario runs 100 simnet nodes; -short trims the fleet so the
// race-detector CI job stays fast.
func TestChurnConcurrentJoinsAndCorrelatedFailures(t *testing.T) {
	n, failures, joins := 100, 8, 6
	if testing.Short() {
		n, failures, joins = 30, 4, 3
	}
	const timeScale = 25.0

	f, err := Launch(Options{
		System:          SystemRapid,
		N:               n,
		TimeScale:       timeScale,
		Seed:            42,
		JoinConcurrency: 16,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer f.Stop()
	if _, ok := f.WaitForSize(n, 120*time.Second); !ok {
		t.Fatal("fleet did not converge before churn")
	}

	// Pick a correlated failure group: a contiguous block of members,
	// excluding the seed so the concurrent joiners keep a live contact.
	var crashAddrs []node.Addr
	excluded := make(map[node.Addr]bool)
	for _, a := range f.Agents() {
		if a.Addr() == seedAddr {
			continue
		}
		if len(crashAddrs) == failures {
			break
		}
		crashAddrs = append(crashAddrs, a.Addr())
		excluded[a.Addr()] = true
	}

	// Kick off the concurrent joins, then crash the block while they are in
	// flight.
	settings := core.ScaledSettings(timeScale)
	type joined struct {
		c   *core.Cluster
		err error
	}
	results := make(chan joined, joins)
	for i := 0; i < joins; i++ {
		i := i
		go func() {
			c, err := core.JoinCluster(MemberAddr(n+i), []node.Addr{seedAddr}, settings, f.Net)
			results <- joined{c: c, err: err}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	f.Crash(crashAddrs...)

	var joiners []*core.Cluster
	for i := 0; i < joins; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent join during churn failed: %v", r.err)
		}
		joiners = append(joiners, r.c)
	}
	defer func() {
		var wg sync.WaitGroup
		for _, c := range joiners {
			wg.Add(1)
			go func(c *core.Cluster) { defer wg.Done(); c.Stop() }(c)
		}
		wg.Wait()
	}()

	// Every survivor of the original fleet plus every joiner must converge on
	// the same membership: size first, then configuration identity.
	target := n - failures + joins
	survivorClusters := func() []*core.Cluster {
		var out []*core.Cluster
		for _, a := range f.Agents() {
			if excluded[a.Addr()] {
				continue
			}
			if ra, ok := a.(rapidAgent); ok {
				out = append(out, ra.c)
			}
		}
		return append(out, joiners...)
	}()

	deadline := time.Now().Add(120 * time.Second)
	agreed := func() (uint64, bool) {
		var configID uint64
		for i, c := range survivorClusters {
			if c.Size() != target {
				return 0, false
			}
			id := c.ConfigurationID()
			if i == 0 {
				configID = id
			} else if id != configID {
				return 0, false
			}
		}
		return configID, true
	}
	for time.Now().Before(deadline) {
		if _, ok := agreed(); ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	configID, ok := agreed()
	if !ok {
		sizes := make([]int, 0, len(survivorClusters))
		for _, c := range survivorClusters {
			sizes = append(sizes, c.Size())
		}
		t.Fatalf("survivors did not agree on the final configuration (want size %d): sizes=%v", target, sizes)
	}
	if configID == 0 {
		t.Fatal("agreed configuration ID is zero")
	}
	// No crashed member may linger in any survivor's view, and every joiner
	// must be present everywhere.
	for _, c := range survivorClusters {
		members := make(map[node.Addr]bool, target)
		for _, m := range c.Members() {
			members[m.Addr] = true
		}
		for _, crashed := range crashAddrs {
			if members[crashed] {
				t.Fatalf("crashed member %s still in %s's view", crashed, c.Addr())
			}
		}
		for _, j := range joiners {
			if !members[j.Addr()] {
				t.Fatalf("joiner %s missing from %s's view", j.Addr(), c.Addr())
			}
		}
	}
}
