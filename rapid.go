package rapid

import (
	"time"

	"repro/internal/centralized"
	"repro/internal/core"
	"repro/internal/edgefd"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
	"repro/internal/transport"
)

// Re-exported identity types.
type (
	// Addr is a process address in "host:port" form.
	Addr = node.Addr
	// ID is a 128-bit logical process identifier.
	ID = node.ID
	// Endpoint is a cluster member: address, logical ID and metadata.
	Endpoint = node.Endpoint
)

// Re-exported membership service types (decentralized mode, §4).
type (
	// Cluster is a process' handle on the membership service.
	Cluster = core.Cluster
	// Settings are the service tunables ({K, H, L}, probe intervals, ...).
	Settings = core.Settings
	// ViewChange is delivered to subscribers on every configuration change.
	ViewChange = core.ViewChange
	// StatusChange is one endpoint's join/removal inside a view change.
	StatusChange = core.StatusChange
	// Subscriber receives view-change notifications.
	Subscriber = core.Subscriber
	// BroadcastMode selects how batched alerts and votes are disseminated.
	BroadcastMode = core.BroadcastMode
	// EngineStats is a point-in-time summary of the protocol engine's
	// instrumentation (queue depth, events processed, batch sizes).
	EngineStats = core.EngineStats
)

// The available broadcast modes.
const (
	// BroadcastUnicastToAll sends every batch directly to every member.
	BroadcastUnicastToAll = core.BroadcastUnicastToAll
	// BroadcastGossip floods batches through random-fanout re-broadcast.
	BroadcastGossip = core.BroadcastGossip
)

// Re-exported logically centralized mode types (Rapid-C, §5).
type (
	// EnsembleNode is one member of the auxiliary membership ensemble.
	EnsembleNode = centralized.EnsembleNode
	// EnsembleSettings tune the ensemble.
	EnsembleSettings = centralized.EnsembleSettings
	// EnsembleMember is a managed-cluster process in Rapid-C mode.
	EnsembleMember = centralized.Member
	// MemberSettings tune a Rapid-C member agent.
	MemberSettings = centralized.MemberSettings
)

// Network is the transport abstraction clusters run on.
type Network = transport.Network

// DefaultSettings returns the paper's production parameters
// ({K, H, L} = {10, 9, 3}, 1-second probes, 100 ms alert batching).
func DefaultSettings() Settings { return core.DefaultSettings() }

// ScaledSettings returns DefaultSettings with every duration divided by
// factor, for compressed-time tests and experiments.
func ScaledSettings(factor float64) Settings { return core.ScaledSettings(factor) }

// StartCluster bootstraps a new single-member cluster listening on addr.
func StartCluster(addr Addr, settings Settings, net Network) (*Cluster, error) {
	return core.StartCluster(addr, settings, net)
}

// JoinCluster joins an existing cluster through the given seeds.
func JoinCluster(addr Addr, seeds []Addr, settings Settings, net Network) (*Cluster, error) {
	return core.JoinCluster(addr, seeds, settings, net)
}

// StartEnsemble boots the Rapid-C auxiliary ensemble (typically 3 nodes).
func StartEnsemble(addrs []Addr, settings EnsembleSettings, net Network) ([]*EnsembleNode, error) {
	return centralized.StartEnsemble(addrs, settings, net)
}

// DefaultEnsembleSettings returns the Rapid-C ensemble defaults.
func DefaultEnsembleSettings() EnsembleSettings { return centralized.DefaultEnsembleSettings() }

// DefaultMemberSettings returns the Rapid-C member defaults (5-second polls).
func DefaultMemberSettings() MemberSettings { return centralized.DefaultMemberSettings() }

// JoinViaEnsemble joins the managed cluster of a Rapid-C ensemble.
func JoinViaEnsemble(addr Addr, ensemble []Addr, settings MemberSettings, net Network) (*EnsembleMember, error) {
	return centralized.JoinViaEnsemble(addr, ensemble, settings, net)
}

// SimulatedNetworkOptions configure the in-process network.
type SimulatedNetworkOptions struct {
	// Seed makes packet-loss decisions reproducible.
	Seed int64
	// Latency, if non-zero, is added to every request/response exchange.
	Latency time.Duration
	// AccountBandwidth enables per-node byte accounting.
	AccountBandwidth bool
}

// SimulatedNetwork is the in-process transport with fault injection used by
// tests, examples and the experiment harness.
type SimulatedNetwork = simnet.Network

// NewSimulatedNetwork creates an in-process network.
func NewSimulatedNetwork(opts SimulatedNetworkOptions) *SimulatedNetwork {
	return simnet.New(simnet.Options{
		Seed:             opts.Seed,
		Latency:          opts.Latency,
		AccountBandwidth: opts.AccountBandwidth,
	})
}

// TCPNetworkOptions configure the real TCP transport. See tcpnet.Options for
// the full set of knobs; the zero value is production-ready.
type TCPNetworkOptions = tcpnet.Options

// TCPNetwork is the TCP transport used by standalone agents. Connections are
// pooled per destination and pipelined; Stats() reports dial/request/drop
// counters and Close() releases every listener, pooled connection and worker.
type TCPNetwork = tcpnet.Network

// TCPNetworkStats is a snapshot of the TCP transport's counters.
type TCPNetworkStats = tcpnet.Stats

// NewTCPNetwork creates a TCP transport. It fails on invalid options
// (negative timeouts or bounds), mirroring Settings validation.
func NewTCPNetwork(opts TCPNetworkOptions) (*TCPNetwork, error) {
	return tcpnet.New(opts)
}

// PingPongFailureDetector returns the paper's default edge failure detector
// factory (an edge is faulty when 40% of the last 10 probes failed).
func PingPongFailureDetector() edgefd.Factory {
	return edgefd.NewPingPongFactory(edgefd.DefaultPingPongOptions())
}

// CountingFailureDetector returns an edge failure detector that fails an edge
// after the given number of consecutive probe failures.
func CountingFailureDetector(consecutiveFailures int) edgefd.Factory {
	return edgefd.NewCountingFactory(consecutiveFailures)
}

// PhiAccrualFailureDetector returns an adaptive φ-accrual edge detector.
func PhiAccrualFailureDetector() edgefd.Factory {
	return edgefd.NewPhiAccrualFactory(edgefd.DefaultPhiAccrualOptions())
}
