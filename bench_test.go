// Benchmarks regenerating the paper's tables and figures (§2.1, §7, §8) at
// laptop scale, plus micro-benchmarks of the protocol's hot paths. Each
// "Figure"/"Table" benchmark runs one full scaled-down experiment per
// iteration; EXPERIMENTS.md records a captured run next to the paper's
// numbers. Run with:
//
//	go test -bench=. -benchmem
package rapid_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/node"
	"repro/internal/remoting"
	"repro/internal/simnet"
	"repro/internal/view"
)

// benchConfig compresses time aggressively so each experiment iteration stays
// in the single-digit seconds.
func benchConfig() experiments.Config {
	return experiments.Config{TimeScale: 100, Seed: 7}
}

// BenchmarkFigure5To7Table1_Bootstrap measures bootstrap convergence for each
// system (Figure 5), per-node latency distributions (Figure 6), the shape of
// the size timeseries (Figure 7) and the number of unique sizes (Table 1).
func BenchmarkFigure5To7Table1_Bootstrap(b *testing.B) {
	systems := []harness.System{
		harness.SystemZooKeeper, harness.SystemMemberlist, harness.SystemRapidC, harness.SystemRapid,
	}
	const n = 24
	for _, system := range systems {
		b.Run(string(system), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunBootstrap(benchConfig(), system, n)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Converged {
					b.Fatalf("%s bootstrap did not converge", system)
				}
				b.ReportMetric(benchConfig().TimeScale*r.ConvergenceTime.Seconds(), "paper-s/bootstrap")
				b.ReportMetric(float64(r.UniqueSizes), "unique-sizes")
			}
		})
	}
}

// BenchmarkFigure8_ConcurrentCrashes measures how long each system takes to
// remove 10% of the membership after a simultaneous crash.
func BenchmarkFigure8_ConcurrentCrashes(b *testing.B) {
	systems := []harness.System{harness.SystemMemberlist, harness.SystemRapid}
	const n, failures = 20, 2
	for _, system := range systems {
		b.Run(string(system), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunCrash(benchConfig(), system, n, failures)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(benchConfig().TimeScale*r.RecoveryTime.Seconds(), "paper-s/removal")
				b.ReportMetric(float64(r.UniqueSizes), "unique-sizes")
			}
		})
	}
}

// BenchmarkFigure1_9_10_AsymmetricFaults measures stability under the paper's
// asymmetric network failures: Figure 9's one-way flip-flopping partition and
// Figure 10's (and Figure 1's) sustained 80% packet loss. The flip-flop case
// runs at N=60: the paper's stability guarantee needs n >> K, and at N=20 a
// partitioned victim's own noise alerts occasionally evicted a healthy
// subject (see the FaultIngressFlipFlop doc comment for the mechanism).
func BenchmarkFigure1_9_10_AsymmetricFaults(b *testing.B) {
	cases := []struct {
		name  string
		fault experiments.FaultKind
		n     int
	}{
		{"Figure9_IngressFlipFlop", experiments.FaultIngressFlipFlop, 60},
		{"Figure1_10_EgressLoss80", experiments.FaultEgressLoss80, 20},
	}
	for _, c := range cases {
		b.Run(c.name+"/rapid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunFault(benchConfig(), harness.SystemRapid, c.fault, c.n)
				if err != nil {
					b.Fatal(err)
				}
				if !r.FaultyRemoved {
					b.Fatalf("rapid did not remove the faulty member under %s", c.fault)
				}
				b.ReportMetric(benchConfig().TimeScale*r.RemovalTime.Seconds(), "paper-s/removal")
			}
		})
	}
}

// BenchmarkTable2_Bandwidth measures per-process network bandwidth during the
// crash-fault experiment, the quantity Table 2 reports.
func BenchmarkTable2_Bandwidth(b *testing.B) {
	systems := []harness.System{harness.SystemMemberlist, harness.SystemRapid}
	for _, system := range systems {
		b.Run(string(system), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunBandwidth(benchConfig(), system, 16, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Received.MeanKBps, "KBps-recv-mean")
				b.ReportMetric(r.Received.MaxKBps, "KBps-recv-max")
				b.ReportMetric(r.Sent.MeanKBps, "KBps-sent-mean")
			}
		})
	}
}

// BenchmarkFigure11_CutDetectionConflictRate measures the almost-everywhere
// agreement conflict rate across the paper's (H, L, F) grid with K=10.
func BenchmarkFigure11_CutDetectionConflictRate(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points := experiments.RunCutDetectionSensitivity(cfg, 10,
			[]int{6, 7, 8, 9}, []int{1, 2, 3, 4}, []int{2, 4, 8, 16}, 20, 3)
		var worst float64
		for _, p := range points {
			if p.ConflictRate > worst {
				worst = p.ConflictRate
			}
		}
		b.ReportMetric(worst, "worst-conflict-%")
	}
}

// BenchmarkFigure12_TransactionalPlatform measures transaction latency and
// failovers for the gossip-FD baseline vs Rapid under a packet blackhole.
func BenchmarkFigure12_TransactionalPlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunTransactionWorkload(benchConfig(), 10, 1200*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(float64(r.Failovers), "failovers-"+r.Provider)
			b.ReportMetric(float64(r.Transactions), "txns-"+r.Provider)
		}
	}
}

// BenchmarkFigure13_ServiceDiscovery measures load-balancer reloads and tail
// latency when a group of backends fails, for Memberlist vs Rapid.
func BenchmarkFigure13_ServiceDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunServiceDiscovery(benchConfig(), 12, 3, 1200*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(float64(r.Reloads), "reloads-"+r.Provider)
			b.ReportMetric(float64(r.P99Latency.Milliseconds()), "p99ms-"+r.Provider)
		}
	}
}

// BenchmarkSection8_Expansion measures the normalized second eigenvalue of
// the K-ring monitoring topology (the paper reports λ/d < 0.45 for K=10).
func BenchmarkSection8_Expansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunExpansion(benchConfig(), 10, []int{250}, 3)
		if len(res) == 1 {
			b.ReportMetric(res[0].NormalizedL2, "lambda/d")
			b.ReportMetric(res[0].DetectableBetaL, "detectable-beta")
		}
	}
}

// --- micro-benchmarks of protocol hot paths ----------------------------------

func buildBenchView(k, n int) *view.View {
	eps := make([]node.Endpoint, n)
	for i := range eps {
		eps[i] = node.Endpoint{
			Addr: node.Addr(fmt.Sprintf("10.%d.%d.%d:1", i/65536, (i/256)%256, i%256)),
			ID:   node.ID{High: uint64(i + 1), Low: uint64(i + 13)},
		}
	}
	return view.NewWithMembers(k, eps)
}

// BenchmarkViewConstruction measures building the K-ring topology for a
// 1000-member configuration, which happens once per view change per process.
func BenchmarkViewConstruction(b *testing.B) {
	eps := make([]node.Endpoint, 1000)
	for i := range eps {
		eps[i] = node.Endpoint{
			Addr: node.Addr(fmt.Sprintf("10.%d.%d.%d:1", i/65536, (i/256)%256, i%256)),
			ID:   node.ID{High: uint64(i + 1), Low: uint64(i + 13)},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := view.NewWithMembers(10, eps)
		if v.Size() != 1000 {
			b.Fatal("bad view")
		}
	}
}

// BenchmarkObserversLookup measures the per-alert topology lookup.
func BenchmarkObserversLookup(b *testing.B) {
	v := buildBenchView(10, 1000)
	addrs := v.MemberAddrs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.ObserversOf(addrs[i%len(addrs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewChurn measures one add + remove on a 1000-member view, the
// incremental cost of a single-member view change.
func BenchmarkViewChurn(b *testing.B) {
	v := buildBenchView(10, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := node.Endpoint{Addr: "churn:1", ID: node.ID{High: 1 << 40, Low: uint64(i + 1)}}
		if err := v.AddMember(ep); err != nil {
			b.Fatal(err)
		}
		if err := v.RemoveMember(ep.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConfigurationID measures the configuration identifier hash.
func BenchmarkConfigurationID(b *testing.B) {
	v := buildBenchView(10, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.ConfigurationID()
	}
}

// BenchmarkAlertEncoding measures the wire codec for a typical alert batch.
func BenchmarkAlertEncoding(b *testing.B) {
	batch := &remoting.Request{Alerts: &remoting.BatchedAlertMessage{Sender: "a:1"}}
	for i := 0; i < 8; i++ {
		batch.Alerts.Alerts = append(batch.Alerts.Alerts, remoting.AlertMessage{
			EdgeSrc: "a:1", EdgeDst: node.Addr(fmt.Sprintf("b%d:1", i)),
			Status: remoting.EdgeDown, ConfigurationID: 42, RingNumbers: []int{1, 5},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := remoting.EncodeRequest(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := remoting.DecodeRequest(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpanderEigenvalue measures the §8 spectral analysis itself.
func BenchmarkExpanderEigenvalue(b *testing.B) {
	v := buildBenchView(10, 500)
	g, _, err := graph.FromView(v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SecondEigenvalue(100, 1)
	}
}

// BenchmarkViewChangeUnderChurn measures the end-to-end message cost of one
// unit of churn — a join followed by a graceful leave — on a 16-member
// cluster, reporting messages sent per view change. This is the engine's
// N² hot path: batched alerts and consensus votes share one outbound wire
// message per batching window, so the metric tracks dissemination cost
// regressions directly.
func BenchmarkViewChangeUnderChurn(b *testing.B) {
	net := simnet.New(simnet.Options{Seed: 99})
	settings := core.ScaledSettings(100)
	node.SeedIDGenerator(99)
	const n = 16
	seedAddr := node.Addr("bench-seed:9000")
	seed, err := core.StartCluster(seedAddr, settings, net)
	if err != nil {
		b.Fatal(err)
	}
	clusters := []*core.Cluster{seed}
	defer func() {
		for _, c := range clusters {
			c.Stop()
		}
	}()
	for i := 1; i < n; i++ {
		c, err := core.JoinCluster(node.Addr(fmt.Sprintf("bench-m%02d:9000", i)), []node.Addr{seedAddr}, settings, net)
		if err != nil {
			b.Fatalf("join %d: %v", i, err)
		}
		clusters = append(clusters, c)
	}
	waitSizes := func(want int) {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			ok := true
			for _, c := range clusters {
				if c.Size() != want {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		b.Fatalf("cluster did not settle at size %d", want)
	}
	waitSizes(n)

	b.ResetTimer()
	startMsgs := net.TotalMessages()
	startVC := seed.ViewChangeCount()
	for i := 0; i < b.N; i++ {
		addr := node.Addr(fmt.Sprintf("bench-churn%04d:9000", i))
		c, err := core.JoinCluster(addr, []node.Addr{seedAddr}, settings, net)
		if err != nil {
			b.Fatalf("churn join: %v", err)
		}
		clusters = append(clusters, c)
		waitSizes(n + 1)
		c.Leave()
		waitSizes(n)
		c.Stop()
		clusters = clusters[:len(clusters)-1]
	}
	b.StopTimer()
	deltaVC := seed.ViewChangeCount() - startVC
	if deltaVC > 0 {
		b.ReportMetric(float64(net.TotalMessages()-startMsgs)/float64(deltaVC), "msgs/viewchange")
	}
	b.ReportMetric(float64(deltaVC)/float64(b.N), "viewchanges/op")
}
