// Package rapid is a Go implementation of Rapid, the stable and consistent
// membership service described in "Stable and Consistent Membership at Scale
// with Rapid" (Suresh et al., USENIX ATC 2018).
//
// Rapid organises cluster members into a K-ring expander monitoring topology,
// aggregates observer alerts with a multi-process cut detector that waits for
// the churn to stabilise (almost-everywhere agreement), and converts the
// detected cut into a strongly consistent view change with a leaderless
// Fast Paxos round (falling back to classical Paxos under conflicts). The
// result is a membership service that removes groups of faulty processes in a
// single coordinated step, stays stable under asymmetric network failures and
// heavy packet loss, and gives every member the same sequence of views.
//
// # Quick start
//
//	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{})
//	seed, _ := rapid.StartCluster("127.0.0.1:5001", rapid.DefaultSettings(), net)
//	peer, _ := rapid.JoinCluster("127.0.0.1:5002", []rapid.Addr{"127.0.0.1:5001"}, rapid.DefaultSettings(), net)
//	peer.Subscribe(func(vc rapid.ViewChange) { fmt.Println("view:", vc.Members) })
//
// Real deployments use the TCP transport (NewTCPNetwork) and cmd/rapid-node;
// tests, benchmarks and the paper's experiments run whole clusters in-process
// on the simulated network with fault injection.
//
// The repository also contains the systems Rapid is evaluated against
// (a SWIM/Memberlist-style gossip baseline, a ZooKeeper-style registry, and
// an all-to-all gossip failure detector), the end-to-end workloads of §7, and
// a benchmark harness regenerating every table and figure of the paper; see
// DESIGN.md and EXPERIMENTS.md.
package rapid
