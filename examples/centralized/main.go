// Command centralized demonstrates Rapid-C (§5): a three-node auxiliary
// ensemble is the ground truth for the membership of a managed cluster, the
// way applications commonly use ZooKeeper — but with Rapid's k-ring
// monitoring and multi-process cut detection feeding it.
package main

import (
	"fmt"
	"log"
	"time"

	rapid "repro"
)

func main() {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 3})

	ensembleAddrs := []rapid.Addr{"ensemble-a:7000", "ensemble-b:7000", "ensemble-c:7000"}
	ensembleSettings := rapid.DefaultEnsembleSettings()
	ensembleSettings.ConsensusFallbackBase = 200 * time.Millisecond
	ensemble, err := rapid.StartEnsemble(ensembleAddrs, ensembleSettings, net)
	if err != nil {
		log.Fatalf("start ensemble: %v", err)
	}
	fmt.Printf("started a %d-node membership ensemble\n", len(ensemble))

	memberSettings := rapid.DefaultMemberSettings()
	memberSettings.PollInterval = 50 * time.Millisecond
	memberSettings.ProbeInterval = 25 * time.Millisecond
	memberSettings.ProbeTimeout = 15 * time.Millisecond

	var members []*rapid.EnsembleMember
	for i := 1; i <= 6; i++ {
		addr := rapid.Addr(fmt.Sprintf("worker-%d:7100", i))
		m, err := rapid.JoinViaEnsemble(addr, ensembleAddrs, memberSettings, net)
		if err != nil {
			log.Fatalf("join %s: %v", addr, err)
		}
		members = append(members, m)
		fmt.Printf("%s joined via the ensemble\n", addr)
	}

	waitFor(func() bool { return ensemble[0].ClusterSize() == len(members) })
	fmt.Printf("\nensemble records %d managed members (configuration %x)\n",
		ensemble[0].ClusterSize(), ensemble[0].ConfigurationID())

	fmt.Println("crashing worker-3; its k-ring observers report the failure to the ensemble...")
	net.Crash("worker-3:7100")
	waitFor(func() bool { return ensemble[0].ClusterSize() == len(members)-1 })
	waitFor(func() bool { return members[0].Size() == len(members)-1 })
	fmt.Printf("ensemble removed the crashed worker; members learned the new view by polling\n")
	fmt.Printf("worker-1 now sees %d members\n", members[0].Size())

	for i, m := range members {
		if i != 2 {
			m.Stop()
		}
	}
	for _, e := range ensemble {
		e.Stop()
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
