// Command quickstart boots a five-node Rapid cluster in-process, prints every
// view change, crashes two members simultaneously, and shows that the
// survivors converge to the same configuration through a single multi-node
// view change.
package main

import (
	"fmt"
	"log"
	"time"

	rapid "repro"
)

func main() {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 1})
	settings := rapid.ScaledSettings(20) // compress protocol timers for the demo

	seedAddr := rapid.Addr("10.0.0.1:5000")
	seed, err := rapid.StartCluster(seedAddr, settings, net)
	if err != nil {
		log.Fatalf("start seed: %v", err)
	}
	seed.Subscribe(func(vc rapid.ViewChange) {
		fmt.Printf("[seed] view change -> configuration %x with %d members\n", vc.ConfigurationID, len(vc.Members))
		for _, change := range vc.Changes {
			verb := "joined"
			if !change.Joined {
				verb = "removed"
			}
			fmt.Printf("        %-9s %s\n", verb, change.Endpoint.Addr)
		}
	})

	clusters := []*rapid.Cluster{seed}
	for i := 2; i <= 5; i++ {
		addr := rapid.Addr(fmt.Sprintf("10.0.0.%d:5000", i))
		member, err := rapid.JoinCluster(addr, []rapid.Addr{seedAddr}, settings, net)
		if err != nil {
			log.Fatalf("join %s: %v", addr, err)
		}
		clusters = append(clusters, member)
		fmt.Printf("%s joined; it sees %d members\n", addr, member.Size())
	}

	waitForSize(clusters, 5)
	fmt.Printf("\ncluster formed: every node reports %d members, configuration %x\n\n",
		seed.Size(), seed.ConfigurationID())

	fmt.Println("crashing 10.0.0.4:5000 and 10.0.0.5:5000 simultaneously...")
	net.Crash("10.0.0.4:5000")
	net.Crash("10.0.0.5:5000")

	survivors := clusters[:3]
	waitForSize(survivors, 3)
	fmt.Println("\nafter the crash:")
	for _, c := range survivors {
		fmt.Printf("  %s -> %d members, configuration %x\n", c.Addr(), c.Size(), c.ConfigurationID())
	}
	fmt.Println("all survivors installed the same configuration (strong consistency),")
	fmt.Println("and both failures were removed in a single multi-node view change (stability).")

	for _, c := range clusters[:3] {
		c.Stop()
	}
}

func waitForSize(clusters []*rapid.Cluster, want int) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, c := range clusters {
			if c.Size() != want {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
