// Command transactions reproduces the §7 distributed transactional data
// platform use case on the public API: a fleet of data servers with a single
// transaction serialization server whose failover is driven by the membership
// layer. A packet blackhole is injected between the serialization server and
// one data server; with Rapid as the membership layer the platform keeps
// serving transactions without a single failover.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	rapid "repro"
	"repro/internal/apps/txn"
)

const serverCount = 12

func main() {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 11})
	settings := rapid.ScaledSettings(25)

	addrs := make([]rapid.Addr, serverCount)
	for i := range addrs {
		addrs[i] = rapid.Addr(fmt.Sprintf("data-%02d:7200", i))
	}
	seed, err := rapid.StartCluster(addrs[0], settings, net)
	if err != nil {
		log.Fatalf("start seed: %v", err)
	}
	clusters := []*rapid.Cluster{seed}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range addrs[1:] {
		addr := addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rapid.JoinCluster(addr, []rapid.Addr{addrs[0]}, settings, net)
			if err != nil {
				log.Fatalf("join %s: %v", addr, err)
			}
			mu.Lock()
			clusters = append(clusters, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	waitFor(func() bool { return seed.Size() == serverCount })
	fmt.Printf("data platform formed: %d servers, serialization server is %s\n",
		seed.Size(), addrs[0])

	// The platform follows Rapid's view-change stream (through a server that
	// is not the serialization server) instead of polling the member list:
	// every installed view is pushed into the platform as it happens.
	coordinator := clusters[1]
	platform := txn.NewPlatform(addrs, nil, txn.DefaultOptions().Scaled(10))
	defer platform.Stop()
	coordinator.Subscribe(func(vc rapid.ViewChange) {
		platform.ApplyEndpoints(vc.Members)
	})
	// Seed with the current view: a change installed before the subscription
	// existed would otherwise never reach the platform. SeedEndpoints yields
	// to any concurrently pushed (newer) view.
	platform.SeedEndpoints(coordinator.Members())

	fmt.Println("running an update-heavy workload...")
	steady := platform.RunWorkload(4, 400*time.Millisecond)
	fmt.Printf("steady state: %d transactions committed\n", len(steady))

	fmt.Printf("\ninjecting a packet blackhole between %s and %s...\n", addrs[0], addrs[6])
	net.BlockPair(addrs[0], addrs[6])
	faulted := platform.RunWorkload(4, 600*time.Millisecond)
	fmt.Printf("under the blackhole: %d transactions committed, %d failovers\n",
		len(faulted), platform.Failovers())
	if platform.Failovers() == 0 {
		fmt.Println("\nRapid never removed the serialization server (only 1 of its K observers")
		fmt.Println("complained, which is below the L watermark), so the workload was uninterrupted —")
		fmt.Println("the behaviour the paper contrasts against the flapping gossip failure detector.")
	}

	for _, c := range clusters {
		c.Stop()
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
