// Command servicediscovery reproduces the §7 service-discovery use case on
// the public API: a load balancer discovers a fleet of backend web servers
// through Rapid and rewrites its backend list on every view change. When a
// group of backends fails simultaneously, Rapid delivers one batched view
// change, so the load balancer reconfigures exactly once.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	rapid "repro"
	"repro/internal/apps/discovery"
)

const backendCount = 20

func main() {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 7})
	settings := rapid.ScaledSettings(25)
	settings.Metadata = map[string]string{"role": "backend"}

	seedAddr := rapid.Addr("web-00:8080")
	seed, err := rapid.StartCluster(seedAddr, settings, net)
	if err != nil {
		log.Fatalf("start seed backend: %v", err)
	}
	clusters := []*rapid.Cluster{seed}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i < backendCount; i++ {
		addr := rapid.Addr(fmt.Sprintf("web-%02d:8080", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rapid.JoinCluster(addr, []rapid.Addr{seedAddr}, settings, net)
			if err != nil {
				log.Fatalf("join %s: %v", addr, err)
			}
			mu.Lock()
			clusters = append(clusters, c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	waitFor(func() bool { return seed.Size() == backendCount })
	fmt.Printf("backend fleet formed: %d web servers\n", seed.Size())

	// The load balancer tracks the membership through a view-change callback,
	// exactly like the nginx + Serf/Rapid agent setup in the paper.
	lb := discovery.NewLoadBalancer(addrsOf(seed), discovery.DefaultOptions().Scaled(10))
	seed.Subscribe(func(vc rapid.ViewChange) {
		lb.UpdateFromEndpoints(vc.Members)
		fmt.Printf("load balancer reconfigured: %d backends (%d reloads so far)\n",
			len(vc.Members), lb.Reloads())
	})
	// Seed with the current view so a change installed before the
	// subscription existed is not missed; SeedFromEndpoints yields to any
	// concurrently pushed (newer) view.
	lb.SeedFromEndpoints(seed.Members())

	fmt.Println("serving requests...")
	before := lb.RunWorkload(500, 300*time.Millisecond)
	fmt.Printf("steady state: %d requests, p99 %v\n", len(before), p99(before))

	fmt.Println("\nfailing 5 backends simultaneously...")
	for i := backendCount - 5; i < backendCount; i++ {
		addr := rapid.Addr(fmt.Sprintf("web-%02d:8080", i))
		lb.MarkActuallyDead(addr)
		net.Crash(addr)
	}
	during := lb.RunWorkload(500, 600*time.Millisecond)
	fmt.Printf("during the incident: %d requests, p99 %v, reloads %d\n",
		len(during), p99(during), lb.Reloads())
	waitFor(func() bool { return seed.Size() == backendCount-5 })
	fmt.Printf("\nRapid removed all 5 failed backends in a coordinated change; "+
		"the load balancer reloaded %d time(s)\n", lb.Reloads())

	for _, c := range clusters {
		if c.Size() > 0 && c.IsMember() {
			c.Stop()
		}
	}
}

func addrsOf(c *rapid.Cluster) []rapid.Addr {
	var out []rapid.Addr
	for _, m := range c.Members() {
		out = append(out, m.Addr)
	}
	return out
}

func p99(results []discovery.RequestResult) time.Duration {
	if len(results) == 0 {
		return 0
	}
	sorted := append([]discovery.RequestResult(nil), results...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Latency < sorted[j-1].Latency; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)*99/100].Latency
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
