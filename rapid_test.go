package rapid_test

import (
	"testing"
	"time"

	rapid "repro"
)

// TestPublicAPIQuickstart exercises the facade exactly the way README's
// quickstart does: bootstrap, join, subscribe, crash, converge.
func TestPublicAPIQuickstart(t *testing.T) {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 21})
	settings := rapid.ScaledSettings(50)

	seed, err := rapid.StartCluster("api-0:4000", settings, net)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer seed.Stop()

	viewChanges := make(chan rapid.ViewChange, 16)
	seed.Subscribe(func(vc rapid.ViewChange) { viewChanges <- vc })

	var members []*rapid.Cluster
	for _, addr := range []rapid.Addr{"api-1:4000", "api-2:4000", "api-3:4000"} {
		m, err := rapid.JoinCluster(addr, []rapid.Addr{"api-0:4000"}, settings, net)
		if err != nil {
			t.Fatalf("JoinCluster(%s): %v", addr, err)
		}
		members = append(members, m)
	}
	defer func() {
		for _, m := range members {
			m.Stop()
		}
	}()

	waitFor(t, func() bool { return seed.Size() == 4 })
	select {
	case vc := <-viewChanges:
		if len(vc.Members) == 0 {
			t.Fatal("view change carried no members")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no view change delivered to the subscriber")
	}

	// All handles agree on the configuration.
	cfg := seed.ConfigurationID()
	for _, m := range members {
		waitFor(t, func() bool { return m.ConfigurationID() == cfg })
	}

	// Crash one member; the rest converge to 3.
	net.Crash(members[2].Addr())
	waitFor(t, func() bool {
		return seed.Size() == 3 && members[0].Size() == 3 && members[1].Size() == 3
	})
}

// TestPublicAPIFailureDetectorPlugins verifies the exported detector
// factories can be plugged into Settings.
func TestPublicAPIFailureDetectorPlugins(t *testing.T) {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 22})
	settings := rapid.ScaledSettings(50)
	settings.FailureDetector = rapid.CountingFailureDetector(3)

	seed, err := rapid.StartCluster("fd-0:4000", settings, net)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	peer1, err := rapid.JoinCluster("fd-1:4000", []rapid.Addr{"fd-0:4000"}, settings, net)
	if err != nil {
		t.Fatal(err)
	}
	defer peer1.Stop()
	peer2, err := rapid.JoinCluster("fd-2:4000", []rapid.Addr{"fd-0:4000"}, settings, net)
	if err != nil {
		t.Fatal(err)
	}
	defer peer2.Stop()
	waitFor(t, func() bool { return seed.Size() == 3 })

	// Crash one member. With one of three members gone the fast path cannot
	// form its ¾ quorum, so this also exercises the classical Paxos fallback.
	net.Crash(peer2.Addr())
	waitFor(t, func() bool { return seed.Size() == 2 && peer1.Size() == 2 })
	if settings.FailureDetector == nil {
		t.Fatal("factory should be set")
	}
	_ = rapid.PingPongFailureDetector()
	_ = rapid.PhiAccrualFailureDetector()
}

// TestPublicAPICentralizedMode exercises Rapid-C through the facade.
func TestPublicAPICentralizedMode(t *testing.T) {
	net := rapid.NewSimulatedNetwork(rapid.SimulatedNetworkOptions{Seed: 23})
	ens := rapid.DefaultEnsembleSettings()
	ens.ConsensusFallbackBase = 200 * time.Millisecond
	ensemble, err := rapid.StartEnsemble([]rapid.Addr{"e-a:1", "e-b:1", "e-c:1"}, ens, net)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range ensemble {
			e.Stop()
		}
	}()
	ms := rapid.DefaultMemberSettings()
	ms.PollInterval = 30 * time.Millisecond
	ms.ProbeInterval = 20 * time.Millisecond
	ms.ProbeTimeout = 10 * time.Millisecond
	m1, err := rapid.JoinViaEnsemble("w-1:1", []rapid.Addr{"e-a:1", "e-b:1", "e-c:1"}, ms, net)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Stop()
	m2, err := rapid.JoinViaEnsemble("w-2:1", []rapid.Addr{"e-a:1", "e-b:1", "e-c:1"}, ms, net)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	waitFor(t, func() bool { return ensemble[0].ClusterSize() == 2 && m1.Size() == 2 })
}

// TestPublicAPIOverTCP runs a two-node cluster over the real TCP transport.
func TestPublicAPIOverTCP(t *testing.T) {
	net, err := rapid.NewTCPNetwork(rapid.TCPNetworkOptions{})
	if err != nil {
		t.Fatalf("NewTCPNetwork: %v", err)
	}
	defer net.Close()
	settings := rapid.ScaledSettings(20)

	seed, err := rapid.StartCluster("127.0.0.1:39801", settings, net)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer seed.Stop()
	peer, err := rapid.JoinCluster("127.0.0.1:39802", []rapid.Addr{"127.0.0.1:39801"}, settings, net)
	if err != nil {
		t.Fatalf("TCP join failed: %v", err)
	}
	defer peer.Stop()
	waitFor(t, func() bool { return seed.Size() == 2 && peer.Size() == 2 })
	if seed.ConfigurationID() != peer.ConfigurationID() {
		t.Fatal("TCP cluster members disagree on the configuration")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition never became true")
	}
}
