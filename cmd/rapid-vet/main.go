// Command rapid-vet is the repo's custom vet tool: it enforces the engine's
// concurrency and determinism invariants (simclock discipline, single-writer
// ownership, pooled-buffer discipline, snapshot immutability) as
// build-breaking lints. See docs/ARCHITECTURE.md, "Enforced invariants".
//
// It speaks cmd/go's vettool protocol — the same contract
// golang.org/x/tools/go/analysis/unitchecker implements, rebuilt here on the
// standard library because the repo carries no external dependencies:
//
//	go build -o bin/rapid-vet ./cmd/rapid-vet
//	go vet -vettool=$PWD/bin/rapid-vet ./...
//
// Per package, cmd/go invokes the tool with a JSON config file describing
// the compilation unit (file list, import map, export-data locations). The
// tool typechecks the unit against the gc export data cmd/go already built,
// runs the analyzer suite, prints file:line:col diagnostics to stderr, and
// writes the (empty — the suite is factless) .vetx facts file cmd/go
// expects. Identification queries:
//
//	rapid-vet -V=full   print a content-hashed version (cmd/go's cache key)
//	rapid-vet -flags    print supported analyzer flags as JSON (none)
//	rapid-vet help      describe the analyzers
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg. Field names
// are the protocol; unknown fields are ignored.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	ImportMap  map[string]string
	// PackageFile maps canonical package paths to their export-data files.
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func main() {
	versionFlag := flag.String("V", "", "print version (cmd/go tool identification)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (cmd/go flag discovery)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		// The suite takes no flags; cmd/go just needs a valid JSON list.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		usage()
		return
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage()
		os.Exit(1)
	}

	diags, err := runUnit(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapid-vet: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		if *jsonFlag {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "\t")
			_ = enc.Encode(diags)
		} else {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			}
		}
		// Exit 2 distinguishes "diagnostics reported" from operational errors,
		// matching unitchecker.
		os.Exit(2)
	}
}

func runUnit(cfgPath string) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The facts file must exist for cmd/go to cache the action, even though
	// this suite is factless. Dependencies analyzed for facts only (VetxOnly)
	// need nothing else, which keeps the dependency sweep essentially free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tcfg := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect via the returned error only
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := analysis.NewTypesInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	unit := analysis.NewUnit(fset, files, pkg, info)
	return unit.Run(suite.All())
}

// printVersion emits the tool identification line cmd/go hashes into its
// action cache key. Hashing the binary's own contents means rebuilding the
// tool with changed analyzers invalidates cached vet results, so a stale
// rapid-vet can never report a stale "ok".
func printVersion() {
	name := "rapid-vet"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}

func usage() {
	fmt.Fprintf(os.Stderr, "rapid-vet enforces this repo's concurrency & determinism invariants.\n\n")
	fmt.Fprintf(os.Stderr, "usage:\n  go vet -vettool=$(pwd)/bin/rapid-vet ./...\n\nanalyzers:\n")
	for _, a := range suite.All() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress one finding with `//lint:allow <analyzer> <reason>` on the same\nline or alone on the line above; the reason is mandatory.\n")
}
