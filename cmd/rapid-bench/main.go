// Command rapid-bench regenerates the paper's evaluation tables and figures
// (§2.1, §7, §8) using the in-process experiment harness. Each experiment
// prints the same rows or series the paper reports, scaled down to sizes that
// run on a single machine.
//
// Usage:
//
//	rapid-bench -exp all
//	rapid-bench -exp fig5 -sizes 30,60,100
//	rapid-bench -exp fig11
//	rapid-bench -exp fig12 -scale 100
//	rapid-bench -exp bootstrap -sizes 100,500,1000 -scale 10
//
// Experiments: fig1, fig5 (also covers fig6/fig7/table1), fig8, fig9, fig10,
// table2, fig11, fig12, fig13, broadcast, eigen, all, and bootstrap — the
// paper-scale (1000+ node) Figure 5 rerun, which must be selected explicitly
// because it runs minutes, not seconds, and is therefore not part of "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment to run (fig1,fig5,fig8,fig9,fig10,table2,fig11,fig12,fig13,broadcast,eigen,all,bootstrap)")
		scale    = flag.Float64("scale", 50, "time compression factor (50 = 1 paper-second -> 20ms)")
		n        = flag.Int("n", 60, "cluster size for failure experiments")
		sizes    = flag.String("sizes", "30,60,100", "comma-separated cluster sizes for bootstrap experiments (bootstrap default: 100,500,1000,2000)")
		seed     = flag.Int64("seed", 1, "random seed")
		shards   = flag.Int("shards", 0, "bootstrap experiment only: simnet delivery shards (0 = default); raise with available cores for 1000+ node runs")
		joinconc = flag.Int("joinconc", 0, "bootstrap experiment only: max concurrent joins (0 = all at once)")
	)
	flag.Parse()

	cfg := experiments.Config{TimeScale: *scale, Seed: *seed, Out: os.Stdout}
	bootstrapSizes, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -sizes: %v\n", err)
		os.Exit(2)
	}

	allSystems := []harness.System{
		harness.SystemZooKeeper, harness.SystemMemberlist, harness.SystemRapidC, harness.SystemRapid,
	}
	comparisonSystems := []harness.System{
		harness.SystemZooKeeper, harness.SystemMemberlist, harness.SystemRapid,
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("\n--- %s ---\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}

	selected := strings.ToLower(*expName)
	want := func(name string) bool { return selected == "all" || selected == name }

	if want("fig1") {
		run("Figure 1: instability under 80% packet loss at 1% of nodes", func() error {
			_, err := experiments.FaultSweep(cfg, comparisonSystems, experiments.FaultEgressLoss80, *n)
			return err
		})
	}
	if want("fig5") || want("fig6") || want("fig7") || want("table1") {
		run("Figures 5-7 and Table 1: bootstrap", func() error {
			_, err := experiments.BootstrapSweep(cfg, allSystems, bootstrapSizes)
			return err
		})
	}
	if want("fig8") {
		run("Figure 8: concurrent crash failures", func() error {
			failures := *n / 100
			if failures < 2 {
				failures = *n / 10
			}
			if failures < 1 {
				failures = 1
			}
			_, err := experiments.CrashSweep(cfg, comparisonSystems, *n, failures)
			return err
		})
	}
	if want("fig9") {
		run("Figure 9: flip-flopping one-way (ingress) partitions", func() error {
			_, err := experiments.FaultSweep(cfg, comparisonSystems, experiments.FaultIngressFlipFlop, *n)
			return err
		})
	}
	if want("fig10") {
		run("Figure 10: 80% egress packet loss", func() error {
			_, err := experiments.FaultSweep(cfg, comparisonSystems, experiments.FaultEgressLoss80, *n)
			return err
		})
	}
	if want("table2") {
		run("Table 2: per-process bandwidth", func() error {
			failures := *n / 10
			if failures < 1 {
				failures = 1
			}
			_, err := experiments.BandwidthSweep(cfg, comparisonSystems, *n, failures)
			return err
		})
	}
	if want("fig11") {
		run("Figure 11: K, H, L sensitivity", func() error {
			experiments.SensitivitySweep(cfg, 10, 100, 20)
			return nil
		})
	}
	if want("fig12") {
		run("Figure 12: transactional platform", func() error {
			_, err := experiments.RunTransactionWorkload(cfg, 12, 3*time.Second)
			return err
		})
	}
	if want("fig13") {
		run("Figure 13: service discovery", func() error {
			_, err := experiments.RunServiceDiscovery(cfg, 20, 5, 3*time.Second)
			return err
		})
	}
	if want("broadcast") {
		run("Broadcast strategy: unicast-to-all vs gossip message cost", func() error {
			failures := *n / 10
			if failures < 1 {
				failures = 1
			}
			_, err := experiments.RunBroadcastComparison(cfg, *n, failures, 8)
			return err
		})
	}
	// The paper-scale bootstrap sweep is opt-in only: at the default sizes it
	// reruns Figure 5 at N up to 2000 and takes minutes.
	if selected == "bootstrap" {
		run("Figure 5 at paper scale: Rapid bootstrap convergence", func() error {
			// An explicitly passed -sizes wins (even if it equals the
			// laptop-scale default string); otherwise sweep the paper's sizes.
			sizesSet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "sizes" {
					sizesSet = true
				}
			})
			sweep := bootstrapSizes
			if !sizesSet {
				sweep = []int{100, 500, 1000, 2000}
			}
			_, err := experiments.RunBootstrapConvergence(cfg, sweep, experiments.ConvergenceOptions{
				JoinConcurrency: *joinconc,
				Shards:          *shards,
			})
			return err
		})
	}
	if want("eigen") {
		run("Section 8: expander analysis", func() error {
			experiments.RunExpansion(cfg, 10, []int{100, 250, 500, 1000}, 3)
			return nil
		})
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 2 {
			return nil, fmt.Errorf("cluster size %d too small", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
