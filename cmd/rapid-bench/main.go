// Command rapid-bench regenerates the paper's evaluation tables and figures
// (§2.1, §7, §8) using the in-process experiment harness. Each experiment
// prints the same rows or series the paper reports, scaled down to sizes that
// run on a single machine.
//
// Usage:
//
//	rapid-bench -exp all
//	rapid-bench -exp fig5 -sizes 30,60,100
//	rapid-bench -exp fig11
//	rapid-bench -exp fig12 -scale 100
//	rapid-bench -exp bootstrap -sizes 100,500,1000 -scale 10
//	rapid-bench -exp scenarios -sizes 1000 -bench-json BENCH_scenarios.json
//	rapid-bench -exp scenarios -sizes 60 -faults slow,flap -systems rapid
//
// Experiments: fig1, fig5 (also covers fig6/fig7/table1), fig8, fig9, fig10,
// table2, fig11, fig12, fig13, broadcast, eigen, all, plus two that must be
// selected explicitly because they run minutes, not seconds, and are
// therefore not part of "all": bootstrap — the paper-scale (1000+ node)
// Figure 5 rerun — and scenarios — the adversarial scenario matrix (fault
// kind x system x N extended Table 2, with gray failures: slow-but-alive
// nodes, one-way links, flapping, asymmetric partitions, WAN latency
// classes, duplicate/reorder delivery).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment to run (fig1,fig5,fig8,fig9,fig10,table2,fig11,fig12,fig13,broadcast,eigen,all,bootstrap,scenarios)")
		scale     = flag.Float64("scale", 50, "time compression factor (50 = 1 paper-second -> 20ms)")
		n         = flag.Int("n", 60, "cluster size for failure experiments")
		sizes     = flag.String("sizes", "30,60,100", "comma-separated cluster sizes for bootstrap experiments (bootstrap default: 100,500,1000,2000)")
		seed      = flag.Int64("seed", 1, "random seed")
		shards    = flag.Int("shards", 0, "bootstrap/scenarios experiments only: simnet delivery shards (0 = default); raise with available cores for 1000+ node runs")
		joinconc  = flag.Int("joinconc", 0, "bootstrap experiment only: max concurrent joins (0 = all at once)")
		batchMin  = flag.Duration("batch-min", 0, "bootstrap experiment only: adaptive batching window floor (0 = scaled default)")
		batchMax  = flag.Duration("batch-max", 0, "bootstrap experiment only: adaptive batching window ceiling (0 = scaled default)")
		benchJSON = flag.String("bench-json", "", "bootstrap/scenarios experiments only: write the results as JSON to this path")
		faults    = flag.String("faults", "all", "scenarios experiment only: comma-separated fault kinds (crash,slow,oneway-links,flap,asym-partition,wan-zones,dup-reorder,egress-loss-80) or all")
		systems   = flag.String("systems", "rapid,memberlist,rapid-c", "scenarios experiment only: comma-separated systems (rapid,memberlist,rapid-c,zookeeper)")
	)
	flag.Parse()

	cfg := experiments.Config{TimeScale: *scale, Seed: *seed, Out: os.Stdout}
	bootstrapSizes, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -sizes: %v\n", err)
		os.Exit(2)
	}

	allSystems := []harness.System{
		harness.SystemZooKeeper, harness.SystemMemberlist, harness.SystemRapidC, harness.SystemRapid,
	}
	comparisonSystems := []harness.System{
		harness.SystemZooKeeper, harness.SystemMemberlist, harness.SystemRapid,
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("\n--- %s ---\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n", name, time.Since(start).Round(time.Millisecond))
	}

	selected := strings.ToLower(*expName)
	want := func(name string) bool { return selected == "all" || selected == name }

	if want("fig1") {
		run("Figure 1: instability under 80% packet loss at 1% of nodes", func() error {
			_, err := experiments.FaultSweep(cfg, comparisonSystems, experiments.FaultEgressLoss80, *n)
			return err
		})
	}
	if want("fig5") || want("fig6") || want("fig7") || want("table1") {
		run("Figures 5-7 and Table 1: bootstrap", func() error {
			_, err := experiments.BootstrapSweep(cfg, allSystems, bootstrapSizes)
			return err
		})
	}
	if want("fig8") {
		run("Figure 8: concurrent crash failures", func() error {
			failures := *n / 100
			if failures < 2 {
				failures = *n / 10
			}
			if failures < 1 {
				failures = 1
			}
			_, err := experiments.CrashSweep(cfg, comparisonSystems, *n, failures)
			return err
		})
	}
	if want("fig9") {
		run("Figure 9: flip-flopping one-way (ingress) partitions", func() error {
			_, err := experiments.FaultSweep(cfg, comparisonSystems, experiments.FaultIngressFlipFlop, *n)
			return err
		})
	}
	if want("fig10") {
		run("Figure 10: 80% egress packet loss", func() error {
			_, err := experiments.FaultSweep(cfg, comparisonSystems, experiments.FaultEgressLoss80, *n)
			return err
		})
	}
	if want("table2") {
		run("Table 2: per-process bandwidth", func() error {
			failures := *n / 10
			if failures < 1 {
				failures = 1
			}
			_, err := experiments.BandwidthSweep(cfg, comparisonSystems, *n, failures)
			return err
		})
	}
	if want("fig11") {
		run("Figure 11: K, H, L sensitivity", func() error {
			experiments.SensitivitySweep(cfg, 10, 100, 20)
			return nil
		})
	}
	if want("fig12") {
		run("Figure 12: transactional platform", func() error {
			_, err := experiments.RunTransactionWorkload(cfg, 12, 3*time.Second)
			return err
		})
	}
	if want("fig13") {
		run("Figure 13: service discovery", func() error {
			_, err := experiments.RunServiceDiscovery(cfg, 20, 5, 3*time.Second)
			return err
		})
	}
	if want("broadcast") {
		run("Broadcast strategy: unicast-to-all vs gossip message cost", func() error {
			failures := *n / 10
			if failures < 1 {
				failures = 1
			}
			_, err := experiments.RunBroadcastComparison(cfg, *n, failures, 8)
			return err
		})
	}
	// The paper-scale bootstrap sweep is opt-in only: at the default sizes it
	// reruns Figure 5 at N up to 2000 and takes minutes.
	if selected == "bootstrap" {
		run("Figure 5 at paper scale: Rapid bootstrap convergence", func() error {
			// An explicitly passed -sizes wins (even if it equals the
			// laptop-scale default string); otherwise sweep the paper's sizes.
			sizesSet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "sizes" {
					sizesSet = true
				}
			})
			sweep := bootstrapSizes
			if !sizesSet {
				sweep = []int{100, 500, 1000, 2000}
			}
			points, err := experiments.RunBootstrapConvergence(cfg, sweep, experiments.ConvergenceOptions{
				JoinConcurrency:   *joinconc,
				Shards:            *shards,
				BatchingWindowMin: *batchMin,
				BatchingWindowMax: *batchMax,
			})
			if err != nil {
				return err
			}
			if *benchJSON != "" {
				if err := writeBenchJSON(*benchJSON, cfg, points); err != nil {
					return fmt.Errorf("write -bench-json: %w", err)
				}
				fmt.Printf("wrote %s\n", *benchJSON)
			}
			return nil
		})
	}
	// The adversarial scenario matrix is opt-in only: at the default size it
	// runs fault kind x system cells at N=1000 and takes minutes.
	if selected == "scenarios" {
		run("Adversarial scenario matrix: extended Table 2", func() error {
			kinds, err := parseFaults(*faults)
			if err != nil {
				return err
			}
			sys, err := parseSystems(*systems)
			if err != nil {
				return err
			}
			// An explicitly passed -sizes wins; otherwise run at paper scale.
			sizesSet := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "sizes" {
					sizesSet = true
				}
			})
			sweep := bootstrapSizes
			if !sizesSet {
				sweep = []int{1000}
			}
			cells, err := experiments.RunScenarioMatrix(cfg, experiments.ScenarioOptions{
				Systems: sys,
				Kinds:   kinds,
				Sizes:   sweep,
				Shards:  *shards,
			})
			if err != nil {
				return err
			}
			if *benchJSON != "" {
				if err := writeScenarioJSON(*benchJSON, cfg, cells); err != nil {
					return fmt.Errorf("write -bench-json: %w", err)
				}
				fmt.Printf("wrote %s\n", *benchJSON)
			}
			return nil
		})
	}
	if want("eigen") {
		run("Section 8: expander analysis", func() error {
			experiments.RunExpansion(cfg, 10, []int{100, 250, 500, 1000}, 3)
			return nil
		})
	}
}

// parseFaults resolves the -faults flag into scenario kinds.
func parseFaults(s string) ([]experiments.ScenarioKind, error) {
	if strings.TrimSpace(strings.ToLower(s)) == "all" || strings.TrimSpace(s) == "" {
		return experiments.AllScenarioKinds(), nil
	}
	known := make(map[experiments.ScenarioKind]bool)
	for _, k := range experiments.AllScenarioKinds() {
		known[k] = true
	}
	var out []experiments.ScenarioKind
	for _, part := range strings.Split(s, ",") {
		k := experiments.ScenarioKind(strings.TrimSpace(strings.ToLower(part)))
		if k == "" {
			continue
		}
		if !known[k] {
			return nil, fmt.Errorf("unknown fault kind %q", k)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fault kinds given")
	}
	return out, nil
}

// parseSystems resolves the -systems flag.
func parseSystems(s string) ([]harness.System, error) {
	known := map[harness.System]bool{
		harness.SystemRapid: true, harness.SystemRapidC: true,
		harness.SystemMemberlist: true, harness.SystemZooKeeper: true,
	}
	var out []harness.System
	for _, part := range strings.Split(s, ",") {
		sys := harness.System(strings.TrimSpace(strings.ToLower(part)))
		if sys == "" {
			continue
		}
		if !known[sys] {
			return nil, fmt.Errorf("unknown system %q", sys)
		}
		out = append(out, sys)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no systems given")
	}
	return out, nil
}

// benchPoint is the machine-readable form of one bootstrap sweep row.
// Latencies are reported in paper-seconds (wall time times the run's time
// scale) so files from runs at different -scale values stay comparable;
// wall_seconds carries the uncompressed duration.
type benchPoint struct {
	N                int     `json:"n"`
	Converged        bool    `json:"converged"`
	ConvergePaperS   float64 `json:"converge_paper_s"`
	JoinP50PaperS    float64 `json:"join_p50_paper_s"`
	JoinP90PaperS    float64 `json:"join_p90_paper_s"`
	JoinP99PaperS    float64 `json:"join_p99_paper_s"`
	WallSeconds      float64 `json:"wall_seconds"`
	Messages         int64   `json:"messages"`
	MsgsPerNode      float64 `json:"msgs_per_node"`
	ShedBatches      int64   `json:"shed_batches"`
	QueueFullSeconds float64 `json:"queue_full_seconds"`
	MinBatchWindowMs float64 `json:"min_batch_window_ms"`
	MaxBatchWindowMs float64 `json:"max_batch_window_ms"`
}

// benchFile is the envelope written by -bench-json.
type benchFile struct {
	Experiment string       `json:"experiment"`
	TimeScale  float64      `json:"time_scale"`
	Seed       int64        `json:"seed"`
	Points     []benchPoint `json:"points"`
}

// writeBenchJSON records the bootstrap sweep so future changes have a
// machine-readable performance trajectory to diff against.
func writeBenchJSON(path string, cfg experiments.Config, points []experiments.BootstrapConvergencePoint) error {
	out := benchFile{Experiment: "bootstrap", TimeScale: cfg.TimeScale, Seed: cfg.Seed}
	for _, p := range points {
		out.Points = append(out.Points, benchPoint{
			N:                p.N,
			Converged:        p.Converged,
			ConvergePaperS:   p.ConvergenceTime.Seconds() * cfg.TimeScale,
			JoinP50PaperS:    p.JoinP50.Seconds() * cfg.TimeScale,
			JoinP90PaperS:    p.JoinP90.Seconds() * cfg.TimeScale,
			JoinP99PaperS:    p.JoinP99.Seconds() * cfg.TimeScale,
			WallSeconds:      p.ConvergenceTime.Seconds(),
			Messages:         p.Messages,
			MsgsPerNode:      float64(p.Messages) / float64(p.N),
			ShedBatches:      p.ShedBatches,
			QueueFullSeconds: p.QueueFullTime.Seconds(),
			MinBatchWindowMs: float64(p.MinBatchWindow) / float64(time.Millisecond),
			MaxBatchWindowMs: float64(p.MaxBatchWindow) / float64(time.Millisecond),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// scenarioPoint is the machine-readable form of one scenario-matrix cell.
// Times are paper-seconds so files from different -scale runs stay
// comparable.
type scenarioPoint struct {
	Fault                string  `json:"fault"`
	System               string  `json:"system"`
	N                    int     `json:"n"`
	Victims              int     `json:"victims"`
	FormationOK          bool    `json:"formation_ok"`
	RemovalExpected      bool    `json:"removal_expected"`
	Detected             bool    `json:"detected"`
	DetectPaperS         float64 `json:"detect_paper_s"`
	Agreed               bool    `json:"agreed"`
	AgreedSize           int     `json:"agreed_size"`
	AgreePaperS          float64 `json:"agree_paper_s"`
	MinReported          int     `json:"min_reported"`
	MaxReported          int     `json:"max_reported"`
	UnnecessaryEvictions int     `json:"unnecessary_evictions"`
	UniqueSizes          int     `json:"unique_sizes"`
	Messages             int64   `json:"messages"`
	MsgsPerNode          float64 `json:"msgs_per_node"`
	Duplicates           int64   `json:"duplicates"`
}

// scenarioFile is the envelope written by -exp scenarios -bench-json.
type scenarioFile struct {
	Experiment string          `json:"experiment"`
	TimeScale  float64         `json:"time_scale"`
	Seed       int64           `json:"seed"`
	Cells      []scenarioPoint `json:"cells"`
}

// writeScenarioJSON records the matrix so the extended Table 2 has a
// machine-readable form to diff across changes.
func writeScenarioJSON(path string, cfg experiments.Config, cells []experiments.ScenarioCell) error {
	out := scenarioFile{Experiment: "scenarios", TimeScale: cfg.TimeScale, Seed: cfg.Seed}
	for _, c := range cells {
		out.Cells = append(out.Cells, scenarioPoint{
			Fault:                string(c.Kind),
			System:               string(c.System),
			N:                    c.N,
			Victims:              c.Victims,
			FormationOK:          c.FormationOK,
			RemovalExpected:      c.RemovalExpected,
			Detected:             c.Detected,
			DetectPaperS:         c.DetectTime.Seconds() * cfg.TimeScale,
			Agreed:               c.Agreed,
			AgreedSize:           c.AgreedSize,
			AgreePaperS:          c.AgreeTime.Seconds() * cfg.TimeScale,
			MinReported:          c.MinReported,
			MaxReported:          c.MaxReported,
			UnnecessaryEvictions: c.UnnecessaryEvictions,
			UniqueSizes:          c.UniqueSizes,
			Messages:             c.Messages,
			MsgsPerNode:          c.MsgsPerNode,
			Duplicates:           c.Duplicates,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 2 {
			return nil, fmt.Errorf("cluster size %d too small", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
