// Command rapid-node runs a standalone Rapid membership agent over TCP. The
// first node of a cluster is started without --join; every other node joins
// through one or more seed addresses. View changes are logged as they are
// installed, and SIGINT/SIGTERM triggers a graceful leave.
//
// With --status-addr the agent also serves a JSON status document over HTTP
// (GET /status): its configuration ID, reported size, and the TCP
// transport's dial/request/drop counters. cmd/rapid-fleet polls this
// endpoint to drive and verify real-process loopback fleets.
//
// Example:
//
//	rapid-node --listen 10.0.0.1:5000
//	rapid-node --listen 10.0.0.2:5000 --join 10.0.0.1:5000 --metadata role=backend
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	rapid "repro"
	"repro/internal/node"
)

// status is the JSON document served on /status.
type status struct {
	Addr            string                `json:"addr"`
	State           string                `json:"state"` // starting | running | left
	ConfigurationID string                `json:"configuration_id,omitempty"`
	Size            int                   `json:"size"`
	Transport       rapid.TCPNetworkStats `json:"transport"`
}

// statusServer publishes the agent's state for fleet runners; the cluster
// handle is attached once the join completes.
type statusServer struct {
	addr string
	net  *rapid.TCPNetwork

	mu      sync.Mutex
	cluster *rapid.Cluster
	state   string
}

func (s *statusServer) setCluster(c *rapid.Cluster) {
	s.mu.Lock()
	s.cluster = c
	s.state = "running"
	s.mu.Unlock()
}

func (s *statusServer) setState(state string) {
	s.mu.Lock()
	s.state = state
	s.mu.Unlock()
}

func (s *statusServer) serve(listen string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		st := status{Addr: s.addr, State: s.state, Transport: s.net.Stats()}
		if s.cluster != nil {
			st.ConfigurationID = fmt.Sprintf("%x", s.cluster.ConfigurationID())
			st.Size = s.cluster.Size()
		}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	if err := http.ListenAndServe(listen, mux); err != nil {
		log.Printf("status server: %v", err)
	}
}

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:5000", "host:port this agent listens on")
		join       = flag.String("join", "", "comma-separated seed addresses (empty = bootstrap a new cluster)")
		metadata   = flag.String("metadata", "", "comma-separated key=value pairs attached to this process")
		interval   = flag.Duration("probe-interval", time.Second, "edge failure detector probe interval")
		statusAddr = flag.String("status-addr", "", "host:port for the HTTP /status endpoint (empty = disabled)")
		idle       = flag.Duration("idle-timeout", 0, "close pooled/inbound TCP connections idle this long (0 = default 60s)")
		joinWait   = flag.Duration("join-deadline", 2*time.Minute, "keep retrying the cluster join until this deadline")
	)
	flag.Parse()

	// The library seeds its ID generator deterministically so simulations are
	// reproducible; a real process must draw identifiers no other process will.
	if err := node.SeedIDGeneratorFromEntropy(); err != nil {
		log.Fatalf("seeding ID generator: %v", err)
	}

	settings := rapid.DefaultSettings()
	settings.ProbeInterval = *interval
	settings.ProbeTimeout = *interval / 2
	if md := parseMetadata(*metadata); len(md) > 0 {
		settings.Metadata = md
	}

	net, err := rapid.NewTCPNetwork(rapid.TCPNetworkOptions{IdleTimeout: *idle})
	if err != nil {
		log.Fatalf("transport options: %v", err)
	}
	defer net.Close()
	addr := rapid.Addr(*listen)

	var srv *statusServer
	if *statusAddr != "" {
		srv = &statusServer{addr: *listen, net: net, state: "starting"}
		go srv.serve(*statusAddr)
	}

	var cluster *rapid.Cluster
	if *join == "" {
		log.Printf("bootstrapping a new cluster on %s", addr)
		cluster, err = rapid.StartCluster(addr, settings, net)
	} else {
		seeds := parseSeeds(*join)
		log.Printf("joining via seeds %v", seeds)
		// Join storms make individual join sequences fail legitimately (the
		// configuration changes while this joiner's proposal is in flight), so
		// keep retrying with jittered backoff until the deadline.
		deadline := time.Now().Add(*joinWait)
		backoff := 250 * time.Millisecond
		for {
			cluster, err = rapid.JoinCluster(addr, seeds, settings, net)
			if err == nil || time.Now().After(deadline) {
				break
			}
			wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			log.Printf("join attempt failed: %v; retrying in %v", err, wait.Round(time.Millisecond))
			time.Sleep(wait)
			if backoff < 4*time.Second {
				backoff *= 2
			}
		}
	}
	if err != nil {
		log.Fatalf("failed to start: %v", err)
	}
	log.Printf("member of configuration %x with %d nodes", cluster.ConfigurationID(), cluster.Size())
	if srv != nil {
		srv.setCluster(cluster)
	}

	cluster.Subscribe(func(vc rapid.ViewChange) {
		var joined, removed []string
		for _, ch := range vc.Changes {
			if ch.Joined {
				joined = append(joined, string(ch.Endpoint.Addr))
			} else {
				removed = append(removed, string(ch.Endpoint.Addr))
			}
		}
		log.Printf("view change: configuration %x, %d members (joined: %v, removed: %v)",
			vc.ConfigurationID, len(vc.Members), joined, removed)
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("leaving the cluster...")
	if srv != nil {
		srv.setState("left")
	}
	cluster.Leave()
	time.Sleep(2 * settings.BatchingWindow)
	cluster.Stop()
	fmt.Println("stopped")
}

func parseSeeds(s string) []rapid.Addr {
	var out []rapid.Addr
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, rapid.Addr(part))
		}
	}
	return out
}

func parseMetadata(s string) map[string]string {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) == 2 {
			out[kv[0]] = kv[1]
		}
	}
	return out
}
