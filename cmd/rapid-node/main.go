// Command rapid-node runs a standalone Rapid membership agent over TCP. The
// first node of a cluster is started without --join; every other node joins
// through one or more seed addresses. View changes are logged as they are
// installed, and SIGINT/SIGTERM triggers a graceful leave.
//
// Example:
//
//	rapid-node --listen 10.0.0.1:5000
//	rapid-node --listen 10.0.0.2:5000 --join 10.0.0.1:5000 --metadata role=backend
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rapid "repro"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:5000", "host:port this agent listens on")
		join     = flag.String("join", "", "comma-separated seed addresses (empty = bootstrap a new cluster)")
		metadata = flag.String("metadata", "", "comma-separated key=value pairs attached to this process")
		interval = flag.Duration("probe-interval", time.Second, "edge failure detector probe interval")
	)
	flag.Parse()

	settings := rapid.DefaultSettings()
	settings.ProbeInterval = *interval
	settings.ProbeTimeout = *interval / 2
	if md := parseMetadata(*metadata); len(md) > 0 {
		settings.Metadata = md
	}

	net := rapid.NewTCPNetwork(rapid.TCPNetworkOptions{})
	addr := rapid.Addr(*listen)

	var cluster *rapid.Cluster
	var err error
	if *join == "" {
		log.Printf("bootstrapping a new cluster on %s", addr)
		cluster, err = rapid.StartCluster(addr, settings, net)
	} else {
		seeds := parseSeeds(*join)
		log.Printf("joining via seeds %v", seeds)
		cluster, err = rapid.JoinCluster(addr, seeds, settings, net)
	}
	if err != nil {
		log.Fatalf("failed to start: %v", err)
	}
	log.Printf("member of configuration %x with %d nodes", cluster.ConfigurationID(), cluster.Size())

	cluster.Subscribe(func(vc rapid.ViewChange) {
		var joined, removed []string
		for _, ch := range vc.Changes {
			if ch.Joined {
				joined = append(joined, string(ch.Endpoint.Addr))
			} else {
				removed = append(removed, string(ch.Endpoint.Addr))
			}
		}
		log.Printf("view change: configuration %x, %d members (joined: %v, removed: %v)",
			vc.ConfigurationID, len(vc.Members), joined, removed)
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("leaving the cluster...")
	cluster.Leave()
	time.Sleep(2 * settings.BatchingWindow)
	cluster.Stop()
	fmt.Println("stopped")
}

func parseSeeds(s string) []rapid.Addr {
	var out []rapid.Addr
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, rapid.Addr(part))
		}
	}
	return out
}

func parseMetadata(s string) map[string]string {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) == 2 {
			out[kv[0]] = kv[1]
		}
	}
	return out
}
