// Command rapid-sim runs an ad-hoc failure scenario against one membership
// system on the simulated network and prints the per-node view-size series,
// which is the raw data behind the paper's timeseries figures (1, 8, 9, 10).
//
// Example:
//
//	rapid-sim -system rapid -n 40 -fault crash -victims 4
//	rapid-sim -system memberlist -n 40 -fault egress-loss -victims 1
//	rapid-sim -system rapid -n 60 -fault slow -victims 1
//	rapid-sim -system rapid -n 60 -fault flap -victims 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/node"
	"repro/internal/simnet"
)

func main() {
	var (
		system   = flag.String("system", "rapid", "membership system: rapid, rapid-c, memberlist, zookeeper")
		n        = flag.Int("n", 40, "cluster size")
		fault    = flag.String("fault", "crash", "fault to inject: none, crash, egress-loss, ingress-block, slow, oneway, flap, deaf, wan, chaos")
		victims  = flag.Int("victims", 2, "number of faulty nodes")
		scale    = flag.Float64("scale", 50, "time compression factor")
		duration = flag.Duration("duration", 20*time.Second, "wall-clock time to observe after the fault")
		seed     = flag.Int64("seed", 1, "random seed")
		shards   = flag.Int("shards", 0, "simnet delivery shards (0 = default); raise with available cores for 1000+ node runs")
		joinconc = flag.Int("joinconc", 0, "max concurrent joins during launch (0 = all at once)")
	)
	flag.Parse()

	fleet, err := harness.Launch(harness.Options{
		System:          harness.System(*system),
		N:               *n,
		TimeScale:       *scale,
		Seed:            *seed,
		SampleInterval:  50 * time.Millisecond,
		SimnetShards:    *shards,
		JoinConcurrency: *joinconc,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "launch: %v\n", err)
		os.Exit(1)
	}
	defer fleet.Stop()

	if _, ok := fleet.WaitForSize(*n, 120*time.Second); !ok {
		fmt.Fprintf(os.Stderr, "cluster did not converge to %d members\n", *n)
		os.Exit(1)
	}
	fmt.Printf("cluster of %d %s members formed; injecting fault %q on %d node(s)\n",
		*n, *system, *fault, *victims)

	agents := fleet.Agents()
	var victimAddrs []node.Addr
	for i := 0; i < *victims && i < len(agents); i++ {
		victimAddrs = append(victimAddrs, agents[len(agents)-1-i].Addr())
	}
	switch *fault {
	case "none":
	case "crash":
		fleet.Crash(victimAddrs...)
	case "egress-loss":
		for _, v := range victimAddrs {
			fleet.Net.SetEgressLoss(v, 0.8)
		}
	case "ingress-block":
		for _, v := range victimAddrs {
			fleet.Net.SetIngressLoss(v, 1.0)
		}
	case "slow":
		// Slow-but-alive: one-way delay past the probe timeout.
		fleet.SlowNodes(harness.Scale(800*time.Millisecond, *scale), victimAddrs...)
	case "oneway":
		// One-way link failures from each victim to every even-indexed member.
		for _, v := range victimAddrs {
			var dsts []node.Addr
			for i := 0; i < *n; i += 2 {
				if a := harness.MemberAddr(i); a != v {
					dsts = append(dsts, a)
				}
			}
			fleet.BlockOneWay(v, dsts...)
		}
	case "flap":
		w := harness.Scale(20*time.Second, *scale)
		fleet.Flap(simnet.FlapSpec{Loss: 1.0, Ingress: true, On: w, Off: w}, victimAddrs...)
	case "deaf":
		fleet.PartitionDeaf(victimAddrs...)
	case "wan":
		fleet.WAN(3, harness.Scale(50*time.Millisecond, *scale), harness.Scale(150*time.Millisecond, *scale))
	case "chaos":
		fleet.Chaos(simnet.ChaosSpec{Duplicate: 0.1, Reorder: 0.3, MaxJitter: harness.Scale(100*time.Millisecond, *scale)})
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *fault)
		os.Exit(2)
	}

	time.Sleep(*duration)

	excluded := make(map[node.Addr]bool)
	for _, v := range victimAddrs {
		excluded[v] = true
	}
	fmt.Printf("\n%-14s %-10s\n", "time(s)", "sizes reported (min..max across nodes)")
	printSeries(fleet, excluded, *scale)
	fmt.Printf("\ndistinct sizes observed: %d\n", fleet.UniqueReportedSizes(excluded))
}

// printSeries prints, for each sampling instant, the range of sizes reported
// across all healthy nodes (a textual rendering of the paper's dot plots).
func printSeries(fleet *harness.Fleet, excluded map[node.Addr]bool, scale float64) {
	type bucket struct{ min, max float64 }
	buckets := make(map[int64]*bucket)
	var order []int64
	for _, a := range fleet.Agents() {
		if excluded[a.Addr()] {
			continue
		}
		s := fleet.Series(a.Addr())
		if s == nil {
			continue
		}
		for _, sample := range s.Samples() {
			key := sample.At.Sub(fleet.Started()).Milliseconds() / 250
			b, ok := buckets[key]
			if !ok {
				b = &bucket{min: sample.Value, max: sample.Value}
				buckets[key] = b
				order = append(order, key)
			}
			if sample.Value < b.min {
				b.min = sample.Value
			}
			if sample.Value > b.max {
				b.max = sample.Value
			}
		}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, key := range order {
		b := buckets[key]
		paperSeconds := float64(key) * 0.25 * scale
		fmt.Printf("%-14.1f %.0f..%.0f\n", paperSeconds, b.min, b.max)
	}
}
