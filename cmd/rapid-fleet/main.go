// Command rapid-fleet runs a real-process Rapid fleet on 127.0.0.1: it
// builds (or is given) a rapid-node binary, spawns N OS processes over the
// pooled TCP transport, waits for them to agree on one configuration, kills
// members and joins replacements, and reports the transport's dial/request
// counters — the proof that connection pooling works is dials sitting far
// below requests (the run fails if requests < 10x dials).
//
// Example (50 processes, one kill-and-rejoin round):
//
//	rapid-fleet -n 50
//	rapid-fleet -n 100 -kill 3 -probe-interval 500ms -keep-logs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/procfleet"
)

type config struct {
	n        int
	bin      string
	kills    int
	probe    time.Duration
	timeout  time.Duration
	settle   time.Duration
	logDir   string
	keepLogs bool
	minReuse float64
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 50, "number of rapid-node processes")
	flag.StringVar(&cfg.bin, "bin", "", "path to a rapid-node binary (empty = go build ./cmd/rapid-node)")
	flag.IntVar(&cfg.kills, "kill", 1, "kill-and-rejoin rounds to run after bootstrap")
	flag.DurationVar(&cfg.probe, "probe-interval", time.Second, "per-node edge failure detector probe interval")
	flag.DurationVar(&cfg.timeout, "converge-timeout", 3*time.Minute, "per-phase agreement timeout")
	flag.DurationVar(&cfg.settle, "settle", 30*time.Second, "steady-state traffic window before reading final stats")
	flag.StringVar(&cfg.logDir, "log-dir", "", "directory for per-node logs (empty = temp dir)")
	flag.BoolVar(&cfg.keepLogs, "keep-logs", false, "keep per-node logs after a successful run")
	flag.Float64Var(&cfg.minReuse, "min-reuse", 10, "fail unless requests >= this multiple of dials")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	// All failures funnel through run so that the fleet is always stopped:
	// log.Fatalf here would leak N orphaned rapid-node processes.
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

func run(cfg config) error {
	// Declared before the fleet exists so it runs after fleet.Stop() below.
	var cleanupDir string
	defer func() {
		if cleanupDir != "" {
			os.RemoveAll(cleanupDir)
		}
	}()

	binPath := cfg.bin
	if binPath == "" {
		dir, err := os.MkdirTemp("", "rapid-fleet-bin-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		log.Printf("building rapid-node...")
		binPath, err = procfleet.BuildNodeBinary(dir)
		if err != nil {
			return err
		}
	}

	fleet, err := procfleet.Launch(procfleet.Options{
		N:             cfg.n,
		Bin:           binPath,
		LogDir:        cfg.logDir,
		ProbeInterval: cfg.probe,
		Logf:          log.Printf,
	})
	if err != nil {
		return fmt.Errorf("launch: %w", err)
	}
	defer fleet.Stop()
	log.Printf("logs in %s", fleet.LogDir())

	configID, took, err := fleet.WaitForAgreement(cfg.n, cfg.timeout)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	log.Printf("bootstrap: %d processes agreed on configuration %s in %v", cfg.n, configID, took)
	if st, err := fleet.AggregateStats(); err == nil {
		report("after bootstrap", st)
	}

	for round := 1; round <= cfg.kills; round++ {
		procs := fleet.Alive()
		victim := procs[len(procs)-1]
		if err := fleet.Kill(victim); err != nil {
			return fmt.Errorf("round %d kill: %w", round, err)
		}
		if _, took, err = fleet.WaitForAgreement(cfg.n-1, cfg.timeout); err != nil {
			return fmt.Errorf("round %d: survivors never agreed: %w", round, err)
		}
		log.Printf("round %d: crash of %s detected and removed in %v", round, victim.Addr, took)
		if _, err := fleet.AddNode(); err != nil {
			return fmt.Errorf("round %d rejoin: %w", round, err)
		}
		if _, took, err = fleet.WaitForAgreement(cfg.n, cfg.timeout); err != nil {
			return fmt.Errorf("round %d: fleet never recovered to %d: %w", round, cfg.n, err)
		}
		log.Printf("round %d: rejoined to %d processes in %v", round, cfg.n, took)
	}

	log.Printf("letting steady-state traffic run for %v...", cfg.settle)
	time.Sleep(cfg.settle)
	stats, err := fleet.AggregateStats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	report("final", stats)

	if ratio := stats.DialRatio(); ratio < cfg.minReuse {
		return fmt.Errorf("FAIL: connection reuse ratio %.1fx below %.1fx (dials %d, requests %d)",
			ratio, cfg.minReuse, stats.Transport.Dials, stats.Transport.Requests)
	}
	if !cfg.keepLogs && cfg.logDir == "" {
		cleanupDir = fleet.LogDir()
	}
	fmt.Printf("PASS: %d processes, %d requests over %d dials (%.1fx reuse)\n",
		cfg.n, stats.Transport.Requests, stats.Transport.Dials, stats.DialRatio())
	return nil
}

func report(when string, st procfleet.FleetStats) {
	t := st.Transport
	log.Printf("%s: %d nodes, dials=%d dialErrors=%d requests=%d (%.1fx reuse) openConns=%d staleRetries=%d bestEffort queued=%d dropped=%d acceptErrors=%d",
		when, st.Nodes, t.Dials, t.DialErrors, t.Requests, st.DialRatio(), t.OpenConns,
		t.StaleRetries, t.BestEffortQueued, t.BestEffortDropped, t.AcceptErrors)
}
